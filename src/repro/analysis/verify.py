"""Static kernel verifier: data races, out-of-bounds accesses, barrier
divergence, vectorizer eligibility (structured diagnostics).

Four passes over the :class:`~repro.analysis.accessmodel.AccessModel`:

``races``
    For every pair of accesses to one buffer (at least one a non-atomic
    store), decide whether two *distinct* work-items can touch the same
    element.  Address forms are resolved to integer-coefficient linear
    terms over work-item ids (``gid`` expanded to ``lid + L*grp + off``),
    worklist-claim counters and per-access loop counters; equality of the
    two addresses is a single linear Diophantine equation solved exactly
    by :mod:`repro.analysis.linsolve` under box constraints, with
    distinctness imposed by case analysis: (a) some group-id delta is
    non-zero, (b) all group deltas are zero and some local-id delta is
    non-zero (worklist claims from the same worklist must then differ
    too: within one group, atomic claims are handed out uniquely), or
    (c) for addresses independent of the executing item, two different
    claims from a shared worklist (an adversarial scheduler may hand them
    to two different items).  SAT verdicts are only reported after the
    witness passes every guard of both accesses *concretely* (including
    non-affine participation guards such as ``lid % mod < alloc``);
    otherwise the pair is demoted to "unknown".

``oob``
    Per-access interval analysis of the resolved address against the
    buffer extent, boxes tightened by single-variable affine guards.  A
    violation is reported only when a guard-satisfying corner witness
    exists.

``barriers``
    ``barrier()`` under work-item- or data-dependent control flow.

``vectorize``
    Converts the vector backend's silent ``VectorizeFallback`` reason
    into a located INFO diagnostic.

Soundness envelope: indirect (``A[B[i]]``), non-affine (``%``, ``/`` by
variables), unknown-base (data-dependent loop starts), multi-dimensional
index chains, ``while`` bodies and budget-exhausted solves all demote to
"unknown" — never to "clean", never to a diagnostic.

The ``DOPIA_VERIFY`` policy flag (``off`` | ``warn`` | ``raise``) gates
what the build/launch wiring does with a report; ``off`` (default) keeps
the hot path untouched.
"""

from __future__ import annotations

import os
import sys
import threading
from dataclasses import dataclass
from typing import Any, Mapping, Optional
import weakref

from ..frontend.semantics import KernelInfo
from ..obs import tracer
from .accessclass import (
    AffineForm,
    Coeff,
    DivModDef,
    IndexVar,
    group_id_var,
    local_id_var,
)
from .accessmodel import (
    CLAIM_RANK,
    Access,
    AccessModel,
    Guard,
    LoopInfo,
    _c_div,
    _c_mod,
    build_access_model,
)
from .diagnostics import Diagnostic, VerifyReport
from .linsolve import (
    UNKNOWN as SOLVE_UNKNOWN,
    Constraint,
    Verdict,
    solve_system,
    solve_with_nonzero,
)

POLICY_ENV = "DOPIA_VERIFY"
POLICIES = ("off", "warn", "raise")

#: Cap on reported race diagnostics per kernel (the rest are identical in
#: kind; the payload notes the truncation).
MAX_RACE_DIAGNOSTICS = 16


class VerifyError(RuntimeError):
    """Raised by the ``raise`` policy when a launch has ERROR diagnostics."""

    def __init__(self, report: VerifyReport):
        self.report = report
        first = report.errors[0] if report.errors else None
        detail = first.render() if first else "verification failed"
        super().__init__(
            f"{report.kernel}: {len(report.errors)} verification error(s); "
            f"first: {detail}"
        )


def current_policy() -> str:
    value = os.environ.get(POLICY_ENV, "off").strip().lower()
    return value if value in POLICIES else "off"


def apply_policy(
    report: VerifyReport,
    policy: Optional[str] = None,
    stream=None,
) -> None:
    """Enforce the verification policy on a launch report."""
    policy = policy if policy is not None else current_policy()
    if policy == "off":
        return
    if report.actionable:
        print(report.render(), file=stream if stream is not None else sys.stderr)
    if policy == "raise" and report.errors:
        raise VerifyError(report)


# ---------------------------------------------------------------------------
# Launch specification
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LaunchSpec:
    """Concrete launch context: geometry + integer scalars + buffer extents
    (in elements)."""

    ndrange: Any
    scalars: tuple[tuple[str, Any], ...]
    extents: tuple[tuple[str, int], ...]

    @staticmethod
    def build(ndrange: Any, scalars: Mapping[str, Any],
              extents: Mapping[str, int]) -> "LaunchSpec":
        return LaunchSpec(
            ndrange=ndrange,
            scalars=tuple(sorted(scalars.items())),
            extents=tuple(sorted((k, int(v)) for k, v in extents.items())),
        )

    @staticmethod
    def from_args(ndrange: Any, args: Mapping[str, Any]) -> "LaunchSpec":
        """Split bound kernel arguments into scalars and buffer extents."""
        scalars: dict[str, Any] = {}
        extents: dict[str, int] = {}
        for name, value in args.items():
            size = getattr(value, "size", None)
            if size is not None and getattr(value, "ndim", 1) >= 1:
                extents[name] = int(size)
            elif isinstance(value, (int, float)):
                scalars[name] = value
        return LaunchSpec.build(ndrange, scalars, extents)

    def cache_key(self) -> tuple:
        nd = self.ndrange
        return (
            tuple(nd.global_size), tuple(nd.local_size), tuple(nd.offset),
            self.scalars, self.extents,
        )


def _dim(seq, d: int, default: int) -> int:
    try:
        return int(seq[d])
    except (IndexError, TypeError):
        return default


def _ceildiv(p: int, q: int) -> int:
    return -((-p) // q)


# ---------------------------------------------------------------------------
# Specialization: resolve affine forms to integer terms + boxes
# ---------------------------------------------------------------------------


@dataclass
class _ResGuard:
    """An affine guard resolved to ``const + sum(terms) OP 0``."""

    terms: dict[IndexVar, int]
    const: int
    op: str

    def holds(self, values: Mapping[IndexVar, int]) -> Optional[bool]:
        total = self.const
        for var, coeff in self.terms.items():
            if var not in values:
                return None
            total += coeff * values[var]
        return {
            "<": total < 0, "<=": total <= 0, ">": total > 0,
            ">=": total >= 0, "==": total == 0, "!=": total != 0,
        }[self.op]


@dataclass
class _SpecDivMod:
    """One derived q/r pair resolved for a launch: the defining equation
    ``base_terms + base_const == k*quot + rem`` with ``0 <= rem < k``."""

    quot: IndexVar
    rem: IndexVar
    base_terms: dict[IndexVar, int]
    base_const: int
    k: int


@dataclass
class _SpecAccess:
    """One access specialised for a launch: integer terms, boxes, guards."""

    access: Access
    terms: dict[IndexVar, int]
    const: int
    boxes: dict[IndexVar, tuple[int, int]]
    res_guards: list[_ResGuard]
    raw_guards: list[Guard]
    dead: bool
    space: str  # var space used: "gid" or "split"
    #: defining equations for every derived quotient/remainder variable
    #: the address or guards mention (resolved in ``space``)
    divmods: list[_SpecDivMod] = None

    def box(self, var: IndexVar) -> Optional[tuple[int, int]]:
        return self.boxes.get(var)


class _Specializer:
    def __init__(self, model: AccessModel, launch: LaunchSpec):
        self.model = model
        self.launch = launch
        nd = launch.ndrange
        self.work_dim = int(nd.work_dim)
        self.gsize = tuple(_dim(nd.global_size, d, 1) for d in range(3))
        self.lsize = tuple(_dim(nd.local_size, d, 1) for d in range(3))
        self.offset = tuple(_dim(nd.offset, d, 0) for d in range(3))
        self.ngroups = tuple(
            max(self.gsize[d] // max(self.lsize[d], 1), 1) for d in range(3)
        )
        self.extents = dict(launch.extents)
        env: dict[str, int] = {}
        for name, value in launch.scalars:
            if isinstance(value, bool):
                env[name] = int(value)
            elif isinstance(value, int):
                env[name] = value
            elif isinstance(value, float) and float(value).is_integer():
                env[name] = int(value)
        for d in range(3):
            env[f"<get_global_size:{d}>"] = self.gsize[d]
            env[f"<get_local_size:{d}>"] = self.lsize[d]
            env[f"<get_num_groups:{d}>"] = self.ngroups[d]
            env[f"<get_global_offset:{d}>"] = self.offset[d]
        env["<get_work_dim:0>"] = self.work_dim
        self.env = env
        #: solver-effort accounting, exported as ``verify.*`` counters
        self.solver_nodes = 0
        self.budget_exhausted = 0

    def note_solve(self, verdict: Verdict) -> None:
        self.solver_nodes += verdict.nodes
        if verdict.status == SOLVE_UNKNOWN:
            self.budget_exhausted += 1

    # -- integer resolution ----------------------------------------------------

    def coeff_int(self, coeff: Coeff) -> Optional[int]:
        total = 0
        for monomial, weight in coeff.terms:
            value = weight
            for symbol in monomial:
                if symbol not in self.env:
                    return None
                value *= self.env[symbol]
            total += value
        return total

    def resolve_form(
        self, form: AffineForm, space: str
    ) -> Optional[tuple[dict[IndexVar, int], int]]:
        if form.indirect or form.nonaffine or form.unknown_base:
            return None
        const = self.coeff_int(form.const)
        if const is None:
            return None
        terms: dict[IndexVar, int] = {}
        for var, coeff in form.vars.items():
            c = self.coeff_int(coeff)
            if c is None:
                return None
            if c == 0:
                continue
            if space == "split" and 200 <= var.rank < 300:
                d = var.rank - 200
                terms[local_id_var(d)] = terms.get(local_id_var(d), 0) + c
                terms[group_id_var(d)] = (
                    terms.get(group_id_var(d), 0) + c * self.lsize[d]
                )
                const += c * self.offset[d]
            else:
                terms[var] = terms.get(var, 0) + c
        return {v: c for v, c in terms.items() if c}, const

    # -- boxes -----------------------------------------------------------------

    def natural_box(
        self, var: IndexVar, loop_map: Mapping[IndexVar, LoopInfo]
    ) -> Optional[tuple[int, int]]:
        if var in loop_map:
            n = self.loop_iterations(loop_map[var])
            return None if n is None else (0, n - 1)
        rank = var.rank
        if 100 <= rank < 200:
            d = rank - 100
            return (0, self.lsize[d] - 1)
        if 200 <= rank < 300:
            d = rank - 200
            return (self.offset[d], self.offset[d] + self.gsize[d] - 1)
        if 300 <= rank < 400:
            d = rank - 300
            return (0, self.ngroups[d] - 1)
        definition = self.model.divmod.defs.get(var)
        if definition is not None:
            return self._divmod_box(var, definition, loop_map)
        return None

    def _divmod_box(
        self, var: IndexVar, definition: DivModDef,
        loop_map: Mapping[IndexVar, LoopInfo],
    ) -> Optional[tuple[int, int]]:
        """Box a derived quotient/remainder variable from its base's range.

        Sound only when the divisor resolves to a positive integer and the
        base is provably non-negative (C's truncating ``/``/``%`` and the
        floor-division encoding agree exactly there); anything else stays
        unboxed and the access demotes to "unknown" as before.
        """
        k = self.coeff_int(definition.divisor)
        if k is None or k <= 0:
            return None
        base_box = self.form_box(definition.base, loop_map)
        if base_box is None or base_box[0] < 0:
            return None
        if var == definition.quot:
            return (base_box[0] // k, base_box[1] // k)
        return (0, min(k - 1, base_box[1]))

    def form_box(
        self, form: AffineForm, loop_map: Mapping[IndexVar, LoopInfo]
    ) -> Optional[tuple[int, int]]:
        """The achievable interval of an affine form (space-independent:
        a gid's range equals its lid/grp expansion's range)."""
        resolved = self.resolve_form(form, "gid")
        if resolved is None:
            return None
        terms, const = resolved
        lo = hi = const
        for var, coeff in terms.items():
            box = self.natural_box(var, loop_map)
            if box is None:
                return None
            a, b = coeff * box[0], coeff * box[1]
            lo += min(a, b)
            hi += max(a, b)
        return lo, hi

    def _expand_divmod(
        self, needed: set[IndexVar], loop_map: Mapping[IndexVar, LoopInfo],
    ) -> list[DivModDef]:
        """Close ``needed`` over derived-variable definitions: every q/r
        variable pulls in its partner and its base's variables (chained
        decompositions recurse).  Returns the active definitions."""
        defs = self.model.divmod.defs
        active: dict[IndexVar, DivModDef] = {}
        frontier = list(needed)
        while frontier:
            var = frontier.pop()
            definition = defs.get(var)
            if definition is None or definition.quot in active:
                continue
            active[definition.quot] = definition
            more = [definition.quot, definition.rem]
            more.extend(v for v, c in definition.base.vars.items()
                        if not c.is_zero)
            for new in more:
                if new not in needed:
                    needed.add(new)
                    frontier.append(new)
        return [active[key] for key in sorted(active, key=lambda v: v.name)]

    def _form_const(self, form: Optional[AffineForm]) -> Optional[int]:
        if form is None or form.has_vars or form.indirect or form.nonaffine:
            return None
        return self.coeff_int(form.const)

    def loop_iterations(self, loop: LoopInfo) -> Optional[int]:
        if loop.irregular or loop.step in (None, 0) or loop.op is None:
            return None
        start = self._form_const(loop.start)
        bound = self._form_const(loop.bound)
        if start is None or bound is None:
            return None
        step, op = loop.step, loop.op
        if step > 0 and op in ("<", "<="):
            span = bound - start
            if op == "<":
                return max(_ceildiv(span, step), 0)
            return max(span // step + 1, 0)
        if step < 0 and op in (">", ">="):
            span = start - bound
            if op == ">":
                return max(_ceildiv(span, -step), 0)
            return max(span // -step + 1, 0)
        return None

    # -- per-access specialisation ----------------------------------------------

    def specialize(self, access: Access, space: str) -> Optional[_SpecAccess]:
        if access.unanalyzable:
            return None
        resolved = self.resolve_form(access.form, space)
        if resolved is None:
            return None
        terms, const = resolved
        loop_map = {loop.var: loop for loop in access.loops}

        res_guards: list[_ResGuard] = []
        raw_guards: list[Guard] = []
        guard_vars: set[IndexVar] = set()
        for guard in access.guards:
            rg = None
            if guard.form is not None and guard.op is not None:
                r = self.resolve_form(guard.form, space)
                if r is not None:
                    rg = _ResGuard(terms=r[0], const=r[1], op=guard.op)
            if rg is None:
                raw_guards.append(guard)
            else:
                res_guards.append(rg)
                guard_vars.update(rg.terms)

        needed = set(terms) | guard_vars
        for d in range(self.work_dim):
            needed.add(local_id_var(d))
            needed.add(group_id_var(d))
        active_defs = self._expand_divmod(needed, loop_map)
        boxes: dict[IndexVar, tuple[int, int]] = {}
        ok_guards: list[_ResGuard] = []
        for var in needed:
            box = self.natural_box(var, loop_map)
            if box is None:
                if var in terms:
                    return None  # address depends on an unbounded variable
                # guard-only unbounded variable: keep those guards concrete
                continue
            boxes[var] = box

        dead = False
        for rg in res_guards:
            live = [v for v in rg.terms if rg.terms[v]]
            if any(v not in boxes for v in live):
                continue  # cannot tighten; still checked on witnesses
            if not live:
                if rg.holds({}) is False:
                    dead = True
                ok_guards.append(rg)
                continue
            if len(live) == 1:
                var = live[0]
                new = _tighten(boxes[var], rg.terms[var], rg.const, rg.op)
                if new is None:
                    dead = True
                else:
                    boxes[var] = new
            ok_guards.append(rg)
        for box in boxes.values():
            if box[0] > box[1]:
                dead = True

        divmods: list[_SpecDivMod] = []
        for definition in active_defs:
            if definition.quot not in boxes:
                continue  # unboxable pair: handled as an unbounded variable
            k = self.coeff_int(definition.divisor)
            base = self.resolve_form(definition.base, space)
            if k is None or k <= 0 or base is None:
                continue
            divmods.append(_SpecDivMod(
                quot=definition.quot, rem=definition.rem,
                base_terms=base[0], base_const=base[1], k=k,
            ))

        return _SpecAccess(
            access=access, terms=terms, const=const, boxes=boxes,
            res_guards=ok_guards, raw_guards=raw_guards, dead=dead,
            space=space, divmods=divmods,
        )

    # -- concrete guard-tree evaluation -----------------------------------------

    def eval_tree(self, tree: tuple, values: Mapping[IndexVar, int],
                  space: str) -> Optional[int]:
        kind = tree[0]
        if kind == "leaf":
            r = self.resolve_form(tree[1], space)
            if r is None:
                return None
            terms, const = r
            total = const
            for var, coeff in terms.items():
                if var not in values:
                    return None
                total += coeff * values[var]
            return total
        if kind in ("mod", "div"):
            left = self.eval_tree(tree[1], values, space)
            right = self.eval_tree(tree[2], values, space)
            if left is None or right is None:
                return None
            return (_c_mod if kind == "mod" else _c_div)(left, right)
        if kind == "cmp":
            left = self.eval_tree(tree[2], values, space)
            right = self.eval_tree(tree[3], values, space)
            if left is None or right is None:
                return None
            return int({
                "<": left < right, "<=": left <= right, ">": left > right,
                ">=": left >= right, "==": left == right, "!=": left != right,
            }[tree[1]])
        if kind == "and":
            left = self.eval_tree(tree[1], values, space)
            right = self.eval_tree(tree[2], values, space)
            if left is None or right is None:
                return None
            return int(bool(left) and bool(right))
        if kind == "or":
            left = self.eval_tree(tree[1], values, space)
            right = self.eval_tree(tree[2], values, space)
            if left is None or right is None:
                return None
            return int(bool(left) or bool(right))
        if kind == "not":
            inner = self.eval_tree(tree[1], values, space)
            return None if inner is None else int(not inner)
        return None

    def guards_hold(self, spec: _SpecAccess,
                    values: Mapping[IndexVar, int]) -> Optional[bool]:
        for rg in spec.res_guards:
            result = rg.holds(values)
            if result is None:
                return None
            if result is False:
                return False
        for guard in spec.raw_guards:
            result = self.eval_tree(guard.tree, values, spec.space)
            if result is None:
                return None
            if bool(result) != guard.expect:
                return False
        return True


def _tighten(box: tuple[int, int], a: int, c: int,
             op: str) -> Optional[tuple[int, int]]:
    """Intersect ``box`` with ``a*v + c OP 0``; None means empty."""
    lo, hi = box

    def le(bound: int) -> None:  # a*v <= bound
        nonlocal lo, hi
        if a > 0:
            hi = min(hi, bound // a)
        else:
            lo = max(lo, _ceildiv(bound, a))

    def ge(bound: int) -> None:  # a*v >= bound
        nonlocal lo, hi
        if a > 0:
            lo = max(lo, _ceildiv(bound, a))
        else:
            hi = min(hi, bound // a)

    if op == "<":
        le(-c - 1)
    elif op == "<=":
        le(-c)
    elif op == ">":
        ge(-c + 1)
    elif op == ">=":
        ge(-c)
    elif op == "==":
        if (-c) % a:
            return None
        le(-c)
        ge(-c)
    elif op == "!=" and (-c) % a == 0:
        # An excluded value only shrinks the box when it sits on an edge
        # (interior holes are not representable as an interval).
        v = (-c) // a
        if lo == hi == v:
            return None
        if v == lo:
            lo += 1
        elif v == hi:
            hi -= 1
    return None if lo > hi else (lo, hi)


# ---------------------------------------------------------------------------
# Race pass
# ---------------------------------------------------------------------------


def _is_sync_var(var: IndexVar) -> bool:
    return var.rank >= CLAIM_RANK


@dataclass
class _PairEquation:
    terms: dict[str, int]
    constant: int
    bounds: dict[str, tuple[int, int]]
    sync_vars: list[IndexVar]
    #: side constraints solved alongside the address equation: each side's
    #: q/r defining equations and its resolved affine guards
    constraints: list[Constraint]


def _assemble_pair(spec_a: _SpecAccess, spec_b: _SpecAccess,
                   work_dim: int) -> Optional[_PairEquation]:
    """Build ``addr_A - addr_B == 0`` in shared/delta/per-side variables."""
    sync: set[IndexVar] = set()
    for spec in (spec_a, spec_b):
        sync.update(v for v in spec.terms if _is_sync_var(v))
        for rg in spec.res_guards:
            sync.update(v for v in rg.terms if _is_sync_var(v))
        for dm in spec.divmods:
            sync.update(v for v in dm.base_terms if _is_sync_var(v))
    for d in range(work_dim):
        sync.add(local_id_var(d))
        sync.add(group_id_var(d))

    terms: dict[str, int] = {}
    bounds: dict[str, tuple[int, int]] = {}
    constant = spec_a.const - spec_b.const

    for var in sync:
        box_a = spec_a.box(var) or spec_b.box(var)
        box_b = spec_b.box(var) or spec_a.box(var)
        if box_a is None or box_b is None:
            return None
        ca = spec_a.terms.get(var, 0)
        cb = spec_b.terms.get(var, 0)
        s_name, d_name = f"s:{var.name}", f"d:{var.name}"
        if ca - cb:
            terms[s_name] = ca - cb
        if cb:
            terms[d_name] = terms.get(d_name, 0) - cb
        bounds[s_name] = box_a
        bounds[d_name] = (box_b[0] - box_a[1], box_b[1] - box_a[0])

    def translate(side: str, spec: _SpecAccess,
                  src: Mapping[IndexVar, int]) -> Optional[dict[str, int]]:
        """Rename one side's IndexVar terms into the shared/delta/per-side
        solver namespace (side B sees shared + delta for sync vars)."""
        out: dict[str, int] = {}
        for var, coeff in src.items():
            if not coeff:
                continue
            if var in sync:
                out[f"s:{var.name}"] = out.get(f"s:{var.name}", 0) + coeff
                if side == "B":
                    out[f"d:{var.name}"] = (
                        out.get(f"d:{var.name}", 0) + coeff)
            else:
                name = f"{side}:{var.name}"
                box = spec.box(var)
                if box is None:
                    return None
                out[name] = out.get(name, 0) + coeff
                bounds.setdefault(name, box)
        return out

    constraints: list[Constraint] = []
    for side, spec in (("A", spec_a), ("B", spec_b)):
        sign = 1 if side == "A" else -1
        for var, coeff in spec.terms.items():
            if _is_sync_var(var):
                continue
            box = spec.box(var)
            if box is None:
                return None
            name = f"{side}:{var.name}"
            terms[name] = terms.get(name, 0) + sign * coeff
            bounds[name] = box
        for dm in spec.divmods:
            base = translate(side, spec, dm.base_terms)
            if base is None:
                return None
            for var, delta in ((dm.quot, -dm.k), (dm.rem, -1)):
                box = spec.box(var)
                if box is None:
                    return None
                name = f"{side}:{var.name}"
                base[name] = base.get(name, 0) + delta
                bounds.setdefault(name, box)
            constraints.append(Constraint(base, dm.base_const, "=="))
        for rg in spec.res_guards:
            translated = translate(side, spec, rg.terms)
            if translated is None:
                continue  # unboxed guard var: checked concretely on witnesses
            constraints.append(Constraint(translated, rg.const, rg.op))

    return _PairEquation(terms=terms, constant=constant, bounds=bounds,
                         sync_vars=sorted(sync, key=lambda v: v.name),
                         constraints=constraints)


def _shared_claims(spec_a: _SpecAccess, spec_b: _SpecAccess):
    claims_a = {loop.claim.var: loop.claim for loop in spec_a.access.loops
                if loop.claim is not None}
    out = []
    for loop in spec_b.access.loops:
        if loop.claim is not None and loop.claim.var in claims_a:
            out.append(loop.claim)
    return out


def _race_subproblems(eq: _PairEquation, spec_a: _SpecAccess,
                      spec_b: _SpecAccess, work_dim: int,
                      cross_group_only: bool, space: str):
    """Yield (label, nonzero, extra_nonzero, pins, claim_based)."""
    grp_deltas = [f"d:{group_id_var(d).name}" for d in range(work_dim)]
    lid_deltas = [f"d:{local_id_var(d).name}" for d in range(work_dim)]
    shared = _shared_claims(spec_a, spec_b)
    global_claims = [f"d:{c.var.name}" for c in shared if c.space == "global"]
    local_claims = [f"d:{c.var.name}" for c in shared if c.space == "local"]

    if space != "local":
        # __local arrays are per-group: items of distinct groups touch
        # distinct instances, so the cross-group case only exists for
        # __global buffers.
        yield ("distinct-groups", grp_deltas, global_claims, {}, False)
    if cross_group_only:
        return
    same_group_pins = {name: (0, 0) for name in grp_deltas}
    yield ("same-group-distinct-items", lid_deltas,
           global_claims + local_claims, same_group_pins, False)

    # Claim-reassignment case: only valid when the address does not depend
    # on which item executes (no local-id coefficient on either side).
    lid_vars = {local_id_var(d) for d in range(work_dim)}
    if any(spec.terms.get(v) for spec in (spec_a, spec_b) for v in lid_vars):
        return
    claim_pins = dict(same_group_pins)
    claim_pins.update({name: (0, 0) for name in lid_deltas})
    for claim in shared:
        name = f"d:{claim.var.name}"
        others = [f"d:{c.var.name}" for c in shared if c.var != claim.var]
        yield (f"distinct-claims:{claim.worklist}", [name], others,
               claim_pins, True)


def _side_values(eq: _PairEquation, witness: Mapping[str, int],
                 spec: _SpecAccess, side: str) -> dict[IndexVar, int]:
    values: dict[IndexVar, int] = {}
    for var in eq.sync_vars:
        base = witness.get(f"s:{var.name}")
        if base is None:
            continue
        if side == "A":
            values[var] = base
        else:
            values[var] = base + witness.get(f"d:{var.name}", 0)
    for loop in spec.access.loops:
        name = f"{side}:{loop.var.name}"
        if name in witness:
            values[loop.var] = witness[name]
    for key, value in witness.items():
        if key.startswith(f"{side}:"):
            # guard-only loop variables
            for var in list(spec.boxes):
                if key == f"{side}:{var.name}":
                    values.setdefault(var, value)
    return values


def _gid_of(values: Mapping[IndexVar, int], spec_ctx: _Specializer) -> tuple:
    out = []
    for d in range(spec_ctx.work_dim):
        lid = values.get(local_id_var(d), 0)
        grp = values.get(group_id_var(d), 0)
        out.append(spec_ctx.offset[d] + grp * spec_ctx.lsize[d] + lid)
    return tuple(out)


def _validate_witness(
    ctx: _Specializer,
    eq: _PairEquation,
    witness: Mapping[str, int],
    spec_a: _SpecAccess,
    spec_b: _SpecAccess,
    claim_based: bool,
) -> Optional[tuple[dict, dict]]:
    """Check a SAT witness concretely; returns per-side values or None."""
    if any(loop.has_break for spec in (spec_a, spec_b)
           for loop in spec.access.loops):
        return None
    # The equation leaves zero-coefficient shared variables at their box
    # floor; re-choose each so both sides land inside their per-side boxes
    # (the delta stays as witnessed, so the solution is unchanged).
    witness = dict(witness)
    for var in eq.sync_vars:
        s_name = f"s:{var.name}"
        if eq.terms.get(s_name, 0) or any(
                c.terms.get(s_name, 0) for c in eq.constraints):
            continue
        box_a = spec_a.box(var)
        box_b = spec_b.box(var)
        if box_a is None or box_b is None:
            continue
        delta = witness.get(f"d:{var.name}", 0)
        lo = max(box_a[0], box_b[0] - delta)
        hi = min(box_a[1], box_b[1] - delta)
        if lo > hi:
            return None
        witness[s_name] = min(max(witness.get(s_name, lo), lo), hi)
    values_a = _side_values(eq, witness, spec_a, "A")
    values_b = _side_values(eq, witness, spec_b, "B")
    # Per-side boxes for shared variables (the delta-box relaxation).
    for values, spec in ((values_a, spec_a), (values_b, spec_b)):
        for var, value in values.items():
            box = spec.box(var)
            if box is not None and not (box[0] <= value <= box[1]):
                return None
    # Derived q/r values must agree with their defining div/mod concretely
    # (a safety net over the solver's encoding; also rejects witnesses
    # where a base would be negative and C truncation diverges from it).
    for values, spec in ((values_a, spec_a), (values_b, spec_b)):
        for dm in spec.divmods:
            base = dm.base_const
            for var, coeff in dm.base_terms.items():
                if var not in values:
                    return None
                base += coeff * values[var]
            quot, rem = values.get(dm.quot), values.get(dm.rem)
            if quot is None or rem is None or base < 0 \
                    or quot != base // dm.k or rem != base % dm.k:
                return None
    if ctx.guards_hold(spec_a, values_a) is not True:
        return None
    if ctx.guards_hold(spec_b, values_b) is not True:
        return None
    if claim_based and not _claim_split_feasible(ctx, spec_a, spec_b,
                                                 values_a, values_b):
        return None
    return dict(values_a), dict(values_b)


def _claim_split_feasible(ctx: _Specializer, spec_a: _SpecAccess,
                          spec_b: _SpecAccess, values_a, values_b) -> bool:
    """Can the two witnessed claims land on two *different* work-items?"""
    shared = _shared_claims(spec_a, spec_b)
    if any(c.space == "global" for c in shared):
        total = 1
        for d in range(ctx.work_dim):
            total *= ctx.gsize[d]
        return total >= 2
    # local worklist: count local ids that can participate in the drain
    lid_vars = [local_id_var(d) for d in range(ctx.work_dim)]
    boxes = []
    total = 1
    for var in lid_vars:
        box = spec_a.box(var) or (0, 0)
        boxes.append(box)
        total *= box[1] - box[0] + 1
    if total > 4096:
        return False  # enumeration too large: caller demotes to unknown
    candidates: list[set] = [set(), set()]
    for index, (spec, values) in enumerate(
            ((spec_a, values_a), (spec_b, values_b))):
        def enumerate_dim(d: int, current: dict) -> None:
            if d == len(lid_vars):
                probe = dict(values)
                probe.update(current)
                if ctx.guards_hold(spec, probe) is True:
                    candidates[index].add(
                        tuple(current[v] for v in lid_vars))
                return
            lo, hi = boxes[d]
            for value in range(lo, hi + 1):
                current[lid_vars[d]] = value
                enumerate_dim(d + 1, current)
        enumerate_dim(0, {})
    if not candidates[0] or not candidates[1]:
        return False
    return len(candidates[0] | candidates[1]) >= 2


def _run_race_pass(
    model: AccessModel, ctx: _Specializer
) -> tuple[list[Diagnostic], str]:
    diagnostics: list[Diagnostic] = []
    unknown = False
    truncated = False

    groups: dict[tuple[str, str], list[Access]] = {}
    for access in model.accesses:
        if access.space in ("global", "local"):
            groups.setdefault((access.space, access.buffer), []).append(access)

    spec_cache: dict[int, Optional[_SpecAccess]] = {}

    def spec_of(access: Access) -> Optional[_SpecAccess]:
        key = id(access)
        if key not in spec_cache:
            spec_cache[key] = ctx.specialize(access, "split")
        return spec_cache[key]

    seen_sites: set[tuple] = set()
    for (space, buffer), accesses in sorted(groups.items()):
        stores = [a for a in accesses if a.is_store and not a.atomic]
        if not stores:
            continue
        plain = [a for a in accesses if not a.atomic]
        if any(spec_of(a) is None for a in plain):
            unknown = True
        for i, a in enumerate(plain):
            for b in plain[i:]:
                if not (a.is_store or b.is_store):
                    continue
                spec_a, spec_b = spec_of(a), spec_of(b)
                if spec_a is None or spec_b is None:
                    continue
                if spec_a.dead or spec_b.dead:
                    continue
                cross_group_only = False
                if model.phases_valid and a.phase != b.phase:
                    if space == "local":
                        continue  # separated by a barrier within the group
                    cross_group_only = True
                result = _race_pair(ctx, model, space, buffer, a, b,
                                    spec_a, spec_b, cross_group_only)
                if result == "unknown":
                    unknown = True
                elif isinstance(result, Diagnostic):
                    site = (result.code, buffer, result.line,
                            result.payload.get("other_line"))
                    if site not in seen_sites:
                        seen_sites.add(site)
                        if len(diagnostics) >= MAX_RACE_DIAGNOSTICS:
                            truncated = True
                        else:
                            diagnostics.append(result)
    if truncated and diagnostics:
        last = diagnostics[-1]
        payload = dict(last.payload)
        payload["truncated"] = True
        diagnostics[-1] = Diagnostic(
            code=last.code, severity=last.severity, kernel=last.kernel,
            message=last.message, line=last.line, column=last.column,
            payload=payload,
        )
    if diagnostics:
        return diagnostics, "diagnosed"
    return diagnostics, "unknown" if unknown else "clean"


def _idempotent_pair(ctx: _Specializer, a: Access, b: Access) -> bool:
    """Both sides are plain stores of one provably identical, work-item-
    invariant value (e.g. the transform preamble's ``worklist[0] = 0``):
    every interleaving leaves the same memory state, so the overlap is
    benign and not reported."""
    if not (a.is_store and b.is_store):
        return False
    if a.value is None or b.value is None:
        return False
    ra = ctx.resolve_form(a.value, "split")
    rb = ctx.resolve_form(b.value, "split")
    if ra is None or rb is None:
        return False
    return not ra[0] and not rb[0] and ra[1] == rb[1]


def _race_pair(ctx, model, space, buffer, a, b, spec_a, spec_b,
               cross_group_only):
    if _idempotent_pair(ctx, a, b):
        return "unsat"
    eq = _assemble_pair(spec_a, spec_b, ctx.work_dim)
    if eq is None:
        return "unknown"
    saw_unknown = False
    for label, nonzero, extra, pins, claim_based in _race_subproblems(
            eq, spec_a, spec_b, ctx.work_dim, cross_group_only, space):
        bounds = dict(eq.bounds)
        ok = True
        for name, box in pins.items():
            if name in bounds:
                lo = max(bounds[name][0], box[0])
                hi = min(bounds[name][1], box[1])
                if lo > hi:
                    ok = False
                    break
                bounds[name] = (lo, hi)
            else:
                bounds[name] = box
        if not ok:
            continue
        nonzero = [n for n in nonzero if n in bounds]
        extra = [n for n in extra if n in bounds]
        if not nonzero:
            continue
        verdict: Verdict = solve_with_nonzero(
            eq.terms, eq.constant, bounds, nonzero, extra,
            extra=eq.constraints)
        ctx.note_solve(verdict)
        if verdict.is_unsat:
            continue
        if verdict.status != "sat":
            saw_unknown = True
            continue
        validated = _validate_witness(ctx, eq, verdict.witness, spec_a,
                                      spec_b, claim_based)
        if validated is None:
            saw_unknown = True
            continue
        values_a, values_b = validated
        addr = spec_a.const + sum(
            c * values_a.get(v, 0) for v, c in spec_a.terms.items())
        gid_a, gid_b = _gid_of(values_a, ctx), _gid_of(values_b, ctx)
        kind = ("write/write" if a.is_store and b.is_store else "write/read")
        code = "RACE002" if space == "local" else "RACE001"
        store = a if a.is_store else b
        other = b if store is a else a
        message = (
            f"{kind} race on {'__local ' if space == 'local' else ''}"
            f"{buffer}[{addr}]: work-item gid={list(gid_a)} "
            f"(line {_line(a)}) and work-item gid={list(gid_b)} "
            f"(line {_line(b)}) are unordered"
        )
        return Diagnostic.at(
            code, model.kernel, message, location=store.location,
            buffer=buffer, element=addr, kind=kind, case=label,
            witness_a={"gid": list(gid_a)}, witness_b={"gid": list(gid_b)},
            other_line=_line(other),
        )
    return "unknown" if saw_unknown else "unsat"


def _line(access: Access) -> int:
    location = access.location
    return getattr(location, "line", 0) if location is not None else 0


# ---------------------------------------------------------------------------
# OOB pass
# ---------------------------------------------------------------------------


def _run_oob_pass(
    model: AccessModel, ctx: _Specializer
) -> tuple[list[Diagnostic], str]:
    diagnostics: list[Diagnostic] = []
    unknown = False
    seen: set[tuple] = set()
    for access in model.accesses:
        extent = _extent_of(model, ctx, access)
        if extent is None:
            unknown = True
            continue
        result = _oob_access(ctx, model, access, extent)
        if result == "unknown":
            unknown = True
        elif isinstance(result, Diagnostic):
            site = (result.code, access.buffer, result.line, result.column)
            if site not in seen:
                seen.add(site)
                diagnostics.append(result)
    if diagnostics:
        return diagnostics, "diagnosed"
    return diagnostics, "unknown" if unknown else "clean"


def _extent_of(model, ctx, access) -> Optional[int]:
    if access.space == "global":
        return ctx.extents.get(access.buffer)
    if access.space == "local":
        return model.local_extents.get(access.buffer)
    return model.private_extents.get(access.buffer)


def _oob_access(ctx: _Specializer, model: AccessModel, access: Access,
                extent: int):
    mixed = _mixes_gid_and_split(access.form)
    space = "split" if mixed else "gid"
    spec = ctx.specialize(access, space)
    if spec is None:
        return "unknown"
    if spec.dead:
        return "in-bounds"
    result = _oob_interval(ctx, model, access, spec, extent)
    if result == "unknown":
        # The per-variable interval test is blind to correlations (derived
        # q/r pairs, multi-variable guards); decide exactly instead.
        return _oob_solver(ctx, model, access, spec, extent)
    return result


def _oob_interval(ctx: _Specializer, model: AccessModel, access: Access,
                  spec: _SpecAccess, extent: int):
    lo = hi = spec.const
    for var, coeff in spec.terms.items():
        box = spec.box(var)
        if box is None:
            return "unknown"
        a, b = coeff * box[0], coeff * box[1]
        lo += min(a, b)
        hi += max(a, b)
    if 0 <= lo and hi < extent:
        return "in-bounds"

    for overflow in (True, False):
        if overflow and hi < extent:
            continue
        if not overflow and lo >= 0:
            continue
        witness: dict[IndexVar, int] = {}
        for var, box in spec.boxes.items():
            coeff = spec.terms.get(var, 0)
            if (coeff > 0) == overflow and coeff != 0:
                witness[var] = box[1]
            else:
                witness[var] = box[0]
        index = spec.const + sum(
            c * witness[v] for v, c in spec.terms.items())
        if (overflow and index < extent) or (not overflow and index >= 0):
            return "unknown"
        if any(loop.has_break for loop in access.loops):
            return "unknown"
        if ctx.guards_hold(spec, witness) is not True:
            return "unknown"
        code = "OOB002" if access.space in ("local", "private") else "OOB001"
        gid = _gid_of_any(witness, ctx, spec.space)
        op = "store to" if access.is_store else "load from"
        message = (
            f"out-of-bounds {op} {access.buffer}[{index}] "
            f"({extent} elements) by work-item gid={list(gid)}"
        )
        return Diagnostic.at(
            code, model.kernel, message, location=access.location,
            buffer=access.buffer, index=index, extent=extent,
            witness={"gid": list(gid)}, is_store=access.is_store,
        )
    return "unknown"


def _oob_solver(ctx: _Specializer, model: AccessModel, access: Access,
                spec: _SpecAccess, extent: int):
    """Exact OOB decision via the constraint solver.

    The interval/corner analysis treats each variable independently, so it
    cannot see that a derived quotient and remainder are *correlated*
    through their defining equation, nor that a multi-variable guard caps
    the reachable addresses of a padded launch.  This path solves
    ``addr >= extent`` / ``addr <= -1`` under the full constraint system
    (defining equations plus resolved guards) instead.
    """
    bounds = {var.name: box for var, box in spec.boxes.items()}
    by_name = {var.name: var for var in spec.boxes}

    def translate(src: Mapping[IndexVar, int]) -> Optional[dict[str, int]]:
        out: dict[str, int] = {}
        for var, coeff in src.items():
            if not coeff:
                continue
            if var.name not in bounds:
                return None
            out[var.name] = out.get(var.name, 0) + coeff
        return out

    system: list[Constraint] = []
    for dm in spec.divmods:
        base = translate(dm.base_terms)
        if base is None or dm.quot.name not in bounds:
            return "unknown"
        base[dm.quot.name] = base.get(dm.quot.name, 0) - dm.k
        base[dm.rem.name] = base.get(dm.rem.name, 0) - 1
        system.append(Constraint(base, dm.base_const, "=="))
    for rg in spec.res_guards:
        translated = translate(rg.terms)
        if translated is not None:
            system.append(Constraint(translated, rg.const, rg.op))
    addr = translate(spec.terms)
    if addr is None:
        return "unknown"

    saw_unknown = False
    for label, probe in (
        ("overflow", Constraint(addr, spec.const - extent, ">=")),
        ("underflow", Constraint(addr, spec.const + 1, "<=")),
    ):
        verdict = solve_system([probe, *system], bounds)
        ctx.note_solve(verdict)
        if verdict.is_unsat:
            continue
        if not verdict.is_sat:
            saw_unknown = True
            continue
        values = {by_name[name]: value
                  for name, value in verdict.witness.items()
                  if name in by_name}
        index = spec.const + sum(
            c * values.get(v, 0) for v, c in spec.terms.items())
        if any(loop.has_break for loop in access.loops):
            saw_unknown = True
            continue
        if ctx.guards_hold(spec, values) is not True:
            saw_unknown = True
            continue
        code = "OOB002" if access.space in ("local", "private") else "OOB001"
        gid = _gid_of_any(values, ctx, spec.space)
        op = "store to" if access.is_store else "load from"
        message = (
            f"out-of-bounds {op} {access.buffer}[{index}] "
            f"({extent} elements) by work-item gid={list(gid)}"
        )
        return Diagnostic.at(
            code, model.kernel, message, location=access.location,
            buffer=access.buffer, index=index, extent=extent,
            witness={"gid": list(gid)}, is_store=access.is_store,
        )
    return "unknown" if saw_unknown else "in-bounds"


def _mixes_gid_and_split(form: AffineForm) -> bool:
    has_gid = any(200 <= v.rank < 300 and not c.is_zero
                  for v, c in form.vars.items())
    has_split = any((100 <= v.rank < 200 or v.rank >= 300
                     or v.rank == CLAIM_RANK) and not c.is_zero
                    for v, c in form.vars.items())
    return has_gid and has_split


def _gid_of_any(values: Mapping[IndexVar, int], ctx: _Specializer,
                space: str) -> tuple:
    if space == "split":
        return _gid_of(values, ctx)
    from .accessclass import global_id_var
    return tuple(
        values.get(global_id_var(d), ctx.offset[d])
        for d in range(ctx.work_dim)
    )


# ---------------------------------------------------------------------------
# Static passes (no launch required)
# ---------------------------------------------------------------------------


def _run_barrier_pass(model: AccessModel) -> tuple[list[Diagnostic], str]:
    diagnostics = []
    for site in model.barriers:
        if not site.divergent:
            continue
        reasons = ", ".join(site.reasons)
        diagnostics.append(Diagnostic.at(
            "BAR001", model.kernel,
            f"barrier() under divergent control flow ({reasons}): "
            f"work-items may not all reach it",
            location=site.location, reasons=list(site.reasons),
        ))
    return diagnostics, "diagnosed" if diagnostics else "clean"


def _plain_const(coeff: Coeff) -> bool:
    """True when a Coeff involves only literals and scalar parameters."""
    return all(
        not symbol.startswith("<")
        for monomial, _ in coeff.terms for symbol in monomial
    )


def _run_static_race_pass(model: AccessModel) -> list[Diagnostic]:
    """RACE010: stores whose address cannot depend on the work-item id."""
    diagnostics = []
    seen: set[int] = set()
    for access in model.accesses:
        if (not access.is_store or access.atomic or access.unanalyzable
                or access.space not in ("global", "local")):
            continue
        form = access.form
        if form.indirect or form.nonaffine or form.unknown_base:
            continue
        if any(v.rank >= CLAIM_RANK and not c.is_zero
               for v, c in form.vars.items()):
            continue
        if not _plain_const(form.const) or not all(
                _plain_const(c) for c in form.vars.values()):
            continue
        if any(g.id_dependent or g.data_dependent for g in access.guards):
            continue
        if any(loop.irregular or loop.claim is not None
               for loop in access.loops):
            continue
        if any(loop.bound is not None and (
                loop.bound.indirect or any(
                    v.rank >= CLAIM_RANK and not c.is_zero
                    for v, c in loop.bound.vars.items()))
               for loop in access.loops):
            continue
        line = _line(access)
        if line in seen:
            continue
        seen.add(line)
        diagnostics.append(Diagnostic.at(
            "RACE010", model.kernel,
            f"store to {access.buffer} does not depend on the work-item "
            f"id: every work-item writes the same address sequence",
            location=access.location, buffer=access.buffer,
        ))
    return diagnostics


def _run_vectorize_pass(info: KernelInfo) -> tuple[list[Diagnostic], str]:
    from ..interp.vectorize import check_vectorizable  # lazy: avoids cycle

    eligibility = check_vectorizable(info)
    if eligibility.eligible:
        return [], "eligible"
    location = getattr(eligibility, "location", None)
    reason = eligibility.reason or "unsupported construct"
    return [Diagnostic.at(
        "VEC001", info.kernel.name,
        f"ineligible for the vectorized backend: {reason}",
        location=location, reason=reason,
    )], "ineligible"


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------


def verify_kernel(info: KernelInfo) -> VerifyReport:
    """Build-time verification: barrier divergence, id-invariant stores,
    vectorizer eligibility.  No launch geometry needed."""
    model = build_access_model(info)
    report = VerifyReport(kernel=model.kernel)
    bar_diags, bar_verdict = _run_barrier_pass(model)
    report.extend(bar_diags)
    report.verdicts["barriers"] = bar_verdict
    static_races = _run_static_race_pass(model)
    report.extend(static_races)
    if static_races:
        report.verdicts["races"] = "diagnosed"
    vec_diags, vec_verdict = _run_vectorize_pass(info)
    report.extend(vec_diags)
    report.verdicts["vectorize"] = vec_verdict
    return report


def verify_launch(info: KernelInfo, launch: LaunchSpec) -> VerifyReport:
    """Launch-time verification: all static passes plus the specialized
    race and OOB analyses for this geometry / these arguments."""
    model = build_access_model(info)
    ctx = _Specializer(model, launch)
    report = VerifyReport(kernel=model.kernel)

    bar_diags, bar_verdict = _run_barrier_pass(model)
    report.extend(bar_diags)
    report.verdicts["barriers"] = bar_verdict

    race_diags, race_verdict = _run_race_pass(model, ctx)
    report.extend(race_diags)
    report.verdicts["races"] = race_verdict

    # RACE010 is subsumed by a definite specialized verdict at the same site.
    if race_verdict == "unknown":
        race_lines = {d.line for d in race_diags}
        report.extend(d for d in _run_static_race_pass(model)
                      if d.line not in race_lines)

    oob_diags, oob_verdict = _run_oob_pass(model, ctx)
    report.extend(oob_diags)
    report.verdicts["oob"] = oob_verdict

    vec_diags, vec_verdict = _run_vectorize_pass(info)
    report.extend(vec_diags)
    report.verdicts["vectorize"] = vec_verdict

    if tracer.enabled:
        # Solver-effort metrics: how hard the envelope is being pushed in
        # production ("dopia stats" aggregates these counters).
        tracer.counter("verify.solver_nodes", float(ctx.solver_nodes))
        if ctx.budget_exhausted:
            tracer.counter("verify.solver_budget_exhausted",
                           float(ctx.budget_exhausted))
        for name in ("races", "oob"):
            if report.verdicts.get(name) == "unknown":
                tracer.counter(f"verify.solver_unknown_total.{name}")
    return report


#: ``id(info) -> (weakref to info, {launch cache_key -> report})``.
#: Keyed by identity because :class:`KernelInfo` is unhashable; the weakref
#: both guards against id reuse and evicts the entry when the info dies.
_LAUNCH_CACHE: dict[int, tuple["weakref.ref", dict]] = {}
_CACHE_LOCK = threading.Lock()
_MAX_CACHED_LAUNCHES = 128


def verify_launch_cached(info: KernelInfo, launch: LaunchSpec) -> VerifyReport:
    """Memoised :func:`verify_launch` for hot launch paths (serve/runtime):
    repeated launches of one kernel with identical geometry and argument
    shapes verify once."""
    key = launch.cache_key()
    ident = id(info)
    with _CACHE_LOCK:
        entry = _LAUNCH_CACHE.get(ident)
        if entry is not None and entry[0]() is info and key in entry[1]:
            return entry[1][key]
    report = verify_launch(info, launch)
    with _CACHE_LOCK:
        entry = _LAUNCH_CACHE.get(ident)
        if entry is None or entry[0]() is not info:
            try:
                # no lock in the callback: dict.pop is atomic under the GIL,
                # and taking _CACHE_LOCK from a GC callback could deadlock
                ref = weakref.ref(
                    info, lambda _r, i=ident: _LAUNCH_CACHE.pop(i, None))
            except TypeError:  # pragma: no cover - non-weakrefable info
                return report
            entry = (ref, {})
            _LAUNCH_CACHE[ident] = entry
        per_info = entry[1]
        if len(per_info) >= _MAX_CACHED_LAUNCHES:
            per_info.clear()
        per_info[key] = report
    return report
