"""Table-1 feature extraction.

The ML model input is an 11-entry vector (paper Table 1):

====== ============ =====================================================
source type         feature
====== ============ =====================================================
code   mem op       #mem_constant, #mem_continuous, #mem_stride, #mem_random
code   arith op     #arith_int, #arith_float
input  program      work_dim
input  data         global_size, local_size
param  config       CPU_util, GPU_util (normalised active-core fractions)
====== ============ =====================================================

The six code features are static counts produced at "compile time"
(``clCreateProgramWithSource``); the three input features only exist at
enqueue time; the two config features enumerate candidate DoP settings
during prediction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..frontend.parser import parse_kernel
from ..frontend.semantics import KernelInfo, analyze_kernel
from .accessclass import AccessClass
from .scan import KernelScan, scan_kernel

#: Order of entries in the assembled feature vector.
FEATURE_NAMES = (
    "mem_constant",
    "mem_continuous",
    "mem_stride",
    "mem_random",
    "arith_int",
    "arith_float",
    "work_dim",
    "global_size",
    "local_size",
    "cpu_util",
    "gpu_util",
)

N_FEATURES = len(FEATURE_NAMES)


@dataclass(frozen=True)
class StaticFeatures:
    """The six compile-time code features of Table 1."""

    mem_constant: int
    mem_continuous: int
    mem_stride: int
    mem_random: int
    arith_int: int
    arith_float: int

    @staticmethod
    def from_scan(scan: KernelScan) -> "StaticFeatures":
        return StaticFeatures(
            mem_constant=scan.count_access(AccessClass.CONSTANT),
            mem_continuous=scan.count_access(AccessClass.CONTINUOUS),
            mem_stride=scan.count_access(AccessClass.STRIDE),
            mem_random=scan.count_access(AccessClass.RANDOM),
            arith_int=scan.n_arith_int,
            arith_float=scan.n_arith_float,
        )

    def as_tuple(self) -> tuple[int, ...]:
        return (
            self.mem_constant,
            self.mem_continuous,
            self.mem_stride,
            self.mem_random,
            self.arith_int,
            self.arith_float,
        )


def extract_static_features(info: KernelInfo) -> StaticFeatures:
    """Extract the six static code features from an analysed kernel."""
    return StaticFeatures.from_scan(scan_kernel(info))


def extract_static_features_from_source(
    source: str, kernel_name: str | None = None
) -> StaticFeatures:
    """Parse ``source`` and extract its static features in one step."""
    kernel = parse_kernel(source, kernel_name)
    return extract_static_features(analyze_kernel(kernel))


def assemble_feature_vector(
    static: StaticFeatures,
    work_dim: int,
    global_size: int,
    local_size: int,
    cpu_util: float,
    gpu_util: float,
) -> np.ndarray:
    """Build the full 11-entry model input vector (Table 1 order).

    ``global_size`` and ``local_size`` are total work-item counts (the
    product over dimensions); ``cpu_util`` / ``gpu_util`` are normalised
    active-core fractions in [0, 1].
    """
    return np.array(
        [
            static.mem_constant,
            static.mem_continuous,
            static.mem_stride,
            static.mem_random,
            static.arith_int,
            static.arith_float,
            work_dim,
            global_size,
            local_size,
            cpu_util,
            gpu_util,
        ],
        dtype=np.float64,
    )


def feature_matrix(
    static: StaticFeatures,
    work_dim: int,
    global_size: int,
    local_size: int,
    configs: "np.ndarray",
) -> np.ndarray:
    """Vectorised assembly: one feature row per (cpu_util, gpu_util) config.

    ``configs`` is an (n, 2) array of utilisation pairs.  Used by the
    predictor, which evaluates the model over all 44 DoP configurations in
    a single call instead of 44 scalar evaluations.
    """
    configs = np.asarray(configs, dtype=np.float64)
    n = configs.shape[0]
    out = np.empty((n, N_FEATURES), dtype=np.float64)
    out[:, :9] = assemble_feature_vector(
        static, work_dim, global_size, local_size, 0.0, 0.0
    )[:9]
    out[:, 9:] = configs
    return out
