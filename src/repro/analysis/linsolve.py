"""Bounded integer linear-equation solver for the race/OOB verifier.

The race detector reduces "can two distinct work-items touch the same
address?" to satisfiability of one linear Diophantine equation

    ``sum_i a_i * x_i + c == 0``

over box-constrained integer variables (id deltas, per-access loop
counters).  This module decides such systems *exactly* within a node
budget, returning

* ``SAT`` with a concrete witness assignment,
* ``UNSAT`` (a proof: no assignment exists inside the boxes), or
* ``UNKNOWN`` when the search exceeds its budget (never wrong, only
  incomplete — callers must treat it as "outside the envelope").

The search assigns the largest-|coefficient| variable first and prunes
with two exact tests per node: the interval test (the remaining terms'
achievable range must cover the residual) and the gcd congruence test
(the residual must be divisible by the gcd of the remaining
coefficients).  For the affine forms real kernels produce — a handful of
variables whose coefficients are 1, the row length, or the local size —
the first variable's candidate interval typically collapses to a few
values and the search finishes in microseconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, floor, gcd
from typing import Optional

SAT = "sat"
UNSAT = "unsat"
UNKNOWN = "unknown"

#: Search nodes before giving up (an exact budget, not a timeout).
DEFAULT_NODE_BUDGET = 50_000


@dataclass(frozen=True)
class Verdict:
    """Solver outcome; ``witness`` maps variable name -> value when SAT."""

    status: str
    witness: Optional[dict[str, int]] = None

    @property
    def is_sat(self) -> bool:
        return self.status == SAT

    @property
    def is_unsat(self) -> bool:
        return self.status == UNSAT


def _term_interval(coeff: int, lo: int, hi: int) -> tuple[int, int]:
    a, b = coeff * lo, coeff * hi
    return (a, b) if a <= b else (b, a)


def solve_linear(
    terms: dict[str, int],
    constant: int,
    bounds: dict[str, tuple[int, int]],
    node_budget: int = DEFAULT_NODE_BUDGET,
) -> Verdict:
    """Decide ``sum(terms[v] * v) + constant == 0`` over inclusive boxes.

    ``bounds`` must cover every variable in ``terms``; variables bound in
    ``bounds`` but absent from ``terms`` (zero coefficient) only need a
    non-empty box and take their lower bound in the witness.
    """
    for name, (lo, hi) in bounds.items():
        if lo > hi:
            return Verdict(UNSAT)

    live: list[tuple[str, int, int, int]] = []
    for name, coeff in terms.items():
        if coeff == 0:
            continue
        if name not in bounds:
            raise ValueError(f"unbounded variable {name!r}")
        lo, hi = bounds[name]
        live.append((name, coeff, lo, hi))
    # Largest |coefficient| first: its candidate interval is narrowest.
    live.sort(key=lambda item: -abs(item[1]))

    # Suffix interval sums: rest_lo[i], rest_hi[i] = achievable range of
    # terms i..end; rest_gcd[i] = gcd of coefficients i..end.
    n = len(live)
    rest_lo = [0] * (n + 1)
    rest_hi = [0] * (n + 1)
    rest_gcd = [0] * (n + 1)
    for i in range(n - 1, -1, -1):
        _, coeff, lo, hi = live[i]
        t_lo, t_hi = _term_interval(coeff, lo, hi)
        rest_lo[i] = rest_lo[i + 1] + t_lo
        rest_hi[i] = rest_hi[i + 1] + t_hi
        rest_gcd[i] = gcd(abs(coeff), rest_gcd[i + 1])

    budget = [node_budget]
    assignment: dict[str, int] = {}

    def search(i: int, residual: int) -> Optional[str]:
        """Solve terms i.. == -residual; returns SAT/None, raises on budget."""
        if budget[0] <= 0:
            return UNKNOWN
        budget[0] -= 1
        if i == n:
            return SAT if residual == 0 else None
        if not (rest_lo[i] <= -residual <= rest_hi[i]):
            return None
        g = rest_gcd[i]
        if g and residual % g != 0:
            return None
        name, coeff, lo, hi = live[i]
        # coeff * v must land in [-residual - rest_hi[i+1], -residual - rest_lo[i+1]]
        lo_t = -residual - rest_hi[i + 1]
        hi_t = -residual - rest_lo[i + 1]
        if coeff > 0:
            v_lo = max(lo, ceil(lo_t / coeff))
            v_hi = min(hi, floor(hi_t / coeff))
        else:
            v_lo = max(lo, ceil(hi_t / coeff))
            v_hi = min(hi, floor(lo_t / coeff))
        for v in range(v_lo, v_hi + 1):
            assignment[name] = v
            result = search(i + 1, residual + coeff * v)
            if result is not None:
                return result
            del assignment[name]
        return None

    result = search(0, constant)
    if result == UNKNOWN:
        return Verdict(UNKNOWN)
    if result == SAT:
        witness = dict(assignment)
        for name, (lo, hi) in bounds.items():
            witness.setdefault(name, lo)
        return Verdict(SAT, witness)
    return Verdict(UNSAT)


def solve_with_nonzero(
    terms: dict[str, int],
    constant: int,
    bounds: dict[str, tuple[int, int]],
    nonzero: list[str],
    extra_nonzero: list[str] = (),
    node_budget: int = DEFAULT_NODE_BUDGET,
) -> Verdict:
    """Decide the equation subject to a disjunctive distinctness constraint.

    Finds a solution where *at least one* variable in ``nonzero`` is
    non-zero and *every* variable in ``extra_nonzero`` is non-zero — the
    shape of "the two accesses belong to distinct work-items" (some id
    delta differs) combined with "distinct work-items never share a
    worklist claim" (the claim delta must differ too).

    Decided by case-splitting: for each ``v`` in ``nonzero`` and each sign,
    restrict ``v``'s box away from zero and solve; ``extra_nonzero``
    variables are themselves sign-split.  All subproblems UNSAT => UNSAT;
    any SAT => SAT with that witness; otherwise UNKNOWN.
    """
    if not nonzero:
        return Verdict(UNSAT)

    def sign_boxes(name: str) -> list[tuple[int, int]]:
        lo, hi = bounds[name]
        out = []
        if hi >= 1:
            out.append((max(lo, 1), hi))
        if lo <= -1:
            out.append((lo, min(hi, -1)))
        return out

    def subproblems(pending: list[str], base: dict[str, tuple[int, int]]):
        if not pending:
            yield base
            return
        name, rest = pending[0], pending[1:]
        if name in base and base[name][0] >= 1 or name in base and base[name][1] <= -1:
            yield from subproblems(rest, base)
            return
        for box in sign_boxes(name):
            branched = dict(base)
            branched[name] = box
            yield from subproblems(rest, branched)

    saw_unknown = False
    for primary in nonzero:
        for primary_box in sign_boxes(primary):
            base = dict(bounds)
            base[primary] = primary_box
            extras = [v for v in extra_nonzero if v != primary]
            for boxed in subproblems(extras, base):
                verdict = solve_linear(terms, constant, boxed, node_budget)
                if verdict.is_sat:
                    return verdict
                if verdict.status == UNKNOWN:
                    saw_unknown = True
    return Verdict(UNKNOWN) if saw_unknown else Verdict(UNSAT)
