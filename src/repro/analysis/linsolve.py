"""Bounded integer linear-constraint solver for the race/OOB verifier.

The race detector reduces "can two distinct work-items touch the same
address?" to satisfiability of a system of linear constraints

    ``sum_i a_i * x_i + c  OP  0``        with OP in {==, !=, <, <=, >, >=}

over box-constrained integer variables (id deltas, per-access loop
counters, and the quotient/remainder variables that model the ``/``/``%``
id decompositions generated schedulers emit: ``q = id / K, r = id % K``
becomes the exact system ``id - K*q - r == 0, 0 <= r <= K-1``).  This
module decides such systems *exactly* within a node budget, returning

* ``SAT`` with a concrete witness assignment,
* ``UNSAT`` (a proof: no assignment exists inside the boxes), or
* ``UNKNOWN`` when the search exceeds its budget (never wrong, only
  incomplete — callers must treat it as "outside the envelope").

The search assigns the variable with the largest |coefficient| across
the system first and prunes every constraint at every node: equalities
with the interval test (the remaining terms' achievable range must cover
the residual) and the gcd congruence test, inequalities with the
corresponding one-sided interval test.  For the affine forms real
kernels produce — a handful of variables whose coefficients are 1, the
row length, or the local size — the first variable's candidate interval
typically collapses to a few values and the search finishes in
microseconds.  The gcd test is what makes the div/mod encodings cheap:
``id == K*q + r`` with ``|r| < K`` forces the remainder delta to zero by
congruence before any enumeration happens.

``Verdict.nodes`` reports how many search nodes a decision consumed, so
callers can export solver effort (and budget exhaustion) as metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import ceil, floor, gcd
from typing import Optional, Sequence

SAT = "sat"
UNSAT = "unsat"
UNKNOWN = "unknown"

#: Search nodes before giving up (an exact budget, not a timeout).
DEFAULT_NODE_BUDGET = 50_000

#: Comparison operators a constraint may carry (all against zero).
OPS = ("==", "!=", "<", "<=", ">", ">=")


@dataclass(frozen=True)
class Constraint:
    """``sum(terms[v] * v) + const  op  0`` over the shared boxes."""

    terms: dict[str, int]
    const: int
    op: str = "=="

    def __post_init__(self):
        if self.op not in OPS:
            raise ValueError(f"unknown constraint operator {self.op!r}")

    def holds(self, total: int) -> bool:
        if self.op == "==":
            return total == 0
        if self.op == "!=":
            return total != 0
        if self.op == "<":
            return total < 0
        if self.op == "<=":
            return total <= 0
        if self.op == ">":
            return total > 0
        return total >= 0


@dataclass(frozen=True)
class Verdict:
    """Solver outcome; ``witness`` maps variable name -> value when SAT.

    ``nodes`` counts search nodes consumed (cumulative across case
    splits for the disjunctive wrappers).
    """

    status: str
    witness: Optional[dict[str, int]] = None
    nodes: int = 0

    @property
    def is_sat(self) -> bool:
        return self.status == SAT

    @property
    def is_unsat(self) -> bool:
        return self.status == UNSAT


def _term_interval(coeff: int, lo: int, hi: int) -> tuple[int, int]:
    a, b = coeff * lo, coeff * hi
    return (a, b) if a <= b else (b, a)


class _CState:
    """Per-constraint search state against the global variable order."""

    __slots__ = ("op", "coeffs", "rest_lo", "rest_hi", "rest_gcd")

    def __init__(self, constraint: Constraint,
                 order: dict[str, int], n: int):
        self.op = constraint.op
        # coeffs[i] = coefficient of the i-th order variable (0 if absent)
        self.coeffs = [0] * n
        for name, coeff in constraint.terms.items():
            if coeff:
                self.coeffs[order[name]] = coeff

    def finish(self, boxes: list[tuple[int, int]], n: int) -> None:
        self.rest_lo = [0] * (n + 1)
        self.rest_hi = [0] * (n + 1)
        self.rest_gcd = [0] * (n + 1)
        for i in range(n - 1, -1, -1):
            coeff = self.coeffs[i]
            t_lo = t_hi = 0
            if coeff:
                t_lo, t_hi = _term_interval(coeff, *boxes[i])
            self.rest_lo[i] = self.rest_lo[i + 1] + t_lo
            self.rest_hi[i] = self.rest_hi[i + 1] + t_hi
            self.rest_gcd[i] = gcd(abs(coeff), self.rest_gcd[i + 1])

    def feasible(self, i: int, residual: int) -> bool:
        """May constraint still hold given terms ``i..`` are unassigned?"""
        lo = residual + self.rest_lo[i]
        hi = residual + self.rest_hi[i]
        if self.op == "==":
            if not (lo <= 0 <= hi):
                return False
            g = self.rest_gcd[i]
            return not (g and residual % g != 0)
        if self.op == "!=":
            return not (lo == hi == 0)
        if self.op == "<":
            return lo < 0
        if self.op == "<=":
            return lo <= 0
        if self.op == ">":
            return hi > 0
        return hi >= 0

    def narrow(self, i: int, residual: int,
               v_lo: int, v_hi: int) -> tuple[int, int]:
        """Tighten the branch variable's candidate interval at node ``i``."""
        coeff = self.coeffs[i]
        if not coeff or self.op == "!=":
            return v_lo, v_hi
        # coeff*v must satisfy the constraint once the best/worst case of
        # the remaining terms i+1.. is accounted for.
        if self.op == "==":
            lo_t = -residual - self.rest_hi[i + 1]
            hi_t = -residual - self.rest_lo[i + 1]
        elif self.op in ("<", "<="):
            lo_t = None
            hi_t = -residual - self.rest_lo[i + 1]
            if self.op == "<":
                hi_t -= 1
        else:  # ">", ">="
            lo_t = -residual - self.rest_hi[i + 1]
            if self.op == ">":
                lo_t += 1
            hi_t = None
        if coeff > 0:
            if lo_t is not None:
                v_lo = max(v_lo, ceil(lo_t / coeff))
            if hi_t is not None:
                v_hi = min(v_hi, floor(hi_t / coeff))
        else:
            if hi_t is not None:
                v_lo = max(v_lo, ceil(hi_t / coeff))
            if lo_t is not None:
                v_hi = min(v_hi, floor(lo_t / coeff))
        return v_lo, v_hi


def solve_system(
    constraints: Sequence[Constraint],
    bounds: dict[str, tuple[int, int]],
    node_budget: int = DEFAULT_NODE_BUDGET,
) -> Verdict:
    """Decide a conjunction of linear constraints over inclusive boxes.

    ``bounds`` must cover every variable appearing in any constraint;
    variables bound in ``bounds`` but absent from every constraint take
    their lower bound in the witness.
    """
    for name, (lo, hi) in bounds.items():
        if lo > hi:
            return Verdict(UNSAT)

    # Global variable order: first appearance across constraints, then a
    # stable sort by largest |coefficient| anywhere in the system (its
    # candidate interval is narrowest).
    first_seen: dict[str, int] = {}
    max_coeff: dict[str, int] = {}
    live_constraints: list[Constraint] = []
    for constraint in constraints:
        has_terms = False
        for name, coeff in constraint.terms.items():
            if coeff == 0:
                continue
            has_terms = True
            if name not in bounds:
                raise ValueError(f"unbounded variable {name!r}")
            first_seen.setdefault(name, len(first_seen))
            max_coeff[name] = max(max_coeff.get(name, 0), abs(coeff))
        if has_terms:
            live_constraints.append(constraint)
        elif not constraint.holds(constraint.const):
            return Verdict(UNSAT)

    names = sorted(first_seen, key=lambda v: first_seen[v])
    names.sort(key=lambda v: -max_coeff[v])
    order = {name: i for i, name in enumerate(names)}
    n = len(names)
    boxes = [bounds[name] for name in names]

    states = [_CState(c, order, n) for c in live_constraints]
    for state in states:
        state.finish(boxes, n)
    residual0 = [c.const for c in live_constraints]

    budget = [node_budget]
    assignment: dict[str, int] = {}

    def search(i: int, residuals: list[int]) -> Optional[str]:
        if budget[0] <= 0:
            return UNKNOWN
        budget[0] -= 1
        for state, residual in zip(states, residuals):
            if not state.feasible(i, residual):
                return None
        if i == n:
            return SAT
        name = names[i]
        v_lo, v_hi = boxes[i]
        for state, residual in zip(states, residuals):
            v_lo, v_hi = state.narrow(i, residual, v_lo, v_hi)
            if v_lo > v_hi:
                return None
        for v in range(v_lo, v_hi + 1):
            assignment[name] = v
            nxt = [residual + state.coeffs[i] * v
                   for state, residual in zip(states, residuals)]
            result = search(i + 1, nxt)
            if result is not None:
                return result
            del assignment[name]
        return None

    result = search(0, residual0)
    nodes = node_budget - budget[0]
    if result == UNKNOWN:
        return Verdict(UNKNOWN, nodes=nodes)
    if result == SAT:
        witness = dict(assignment)
        for name, (lo, hi) in bounds.items():
            witness.setdefault(name, lo)
        return Verdict(SAT, witness, nodes=nodes)
    return Verdict(UNSAT, nodes=nodes)


def solve_linear(
    terms: dict[str, int],
    constant: int,
    bounds: dict[str, tuple[int, int]],
    node_budget: int = DEFAULT_NODE_BUDGET,
    extra: Sequence[Constraint] = (),
) -> Verdict:
    """Decide ``sum(terms[v] * v) + constant == 0`` over inclusive boxes.

    ``extra`` appends side constraints (div/mod defining equations, guard
    inequalities) to the system; the main equation is branched first, so
    the historical single-equation search order — and its witnesses — are
    preserved when ``extra`` is empty.
    """
    system = [Constraint(terms, constant, "==")]
    system.extend(extra)
    return solve_system(system, bounds, node_budget)


def solve_with_nonzero(
    terms: dict[str, int],
    constant: int,
    bounds: dict[str, tuple[int, int]],
    nonzero: list[str],
    extra_nonzero: list[str] = (),
    node_budget: int = DEFAULT_NODE_BUDGET,
    extra: Sequence[Constraint] = (),
) -> Verdict:
    """Decide the system subject to a disjunctive distinctness constraint.

    Finds a solution where *at least one* variable in ``nonzero`` is
    non-zero and *every* variable in ``extra_nonzero`` is non-zero — the
    shape of "the two accesses belong to distinct work-items" (some id
    delta differs) combined with "distinct work-items never share a
    worklist claim" (the claim delta must differ too).

    Decided by case-splitting: for each ``v`` in ``nonzero`` and each sign,
    restrict ``v``'s box away from zero and solve; ``extra_nonzero``
    variables are themselves sign-split.  All subproblems UNSAT => UNSAT;
    any SAT => SAT with that witness; otherwise UNKNOWN.
    """
    if not nonzero:
        return Verdict(UNSAT)

    def sign_boxes(name: str) -> list[tuple[int, int]]:
        lo, hi = bounds[name]
        out = []
        if hi >= 1:
            out.append((max(lo, 1), hi))
        if lo <= -1:
            out.append((lo, min(hi, -1)))
        return out

    def subproblems(pending: list[str], base: dict[str, tuple[int, int]]):
        if not pending:
            yield base
            return
        name, rest = pending[0], pending[1:]
        if name in base and base[name][0] >= 1 or name in base and base[name][1] <= -1:
            yield from subproblems(rest, base)
            return
        for box in sign_boxes(name):
            branched = dict(base)
            branched[name] = box
            yield from subproblems(rest, branched)

    saw_unknown = False
    nodes = 0
    for primary in nonzero:
        for primary_box in sign_boxes(primary):
            base = dict(bounds)
            base[primary] = primary_box
            extras = [v for v in extra_nonzero if v != primary]
            for boxed in subproblems(extras, base):
                verdict = solve_linear(terms, constant, boxed, node_budget,
                                       extra=extra)
                nodes += verdict.nodes
                if verdict.is_sat:
                    return Verdict(SAT, verdict.witness, nodes=nodes)
                if verdict.status == UNKNOWN:
                    saw_unknown = True
    status = UNKNOWN if saw_unknown else UNSAT
    return Verdict(status, nodes=nodes)
