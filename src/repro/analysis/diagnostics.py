"""Structured diagnostics for the static kernel verifier (``repro.analysis.verify``).

Every finding the verifier emits is a :class:`Diagnostic`: a stable code, a
severity, the kernel it concerns, a source span, a human-readable message,
and a machine-readable payload.  The model is deliberately boring — frozen
dataclasses with a total ordering and a stable JSON form — because the
diagnostics are consumed by four different surfaces (the ``cl.program``
build log, the launch-path policy gate, ``dopia lint``, and the CI baseline
diff) and all four need byte-stable output.

JSON stability contract
-----------------------
``report_to_json`` sorts diagnostics by ``sort_key`` (code, kernel, line,
column, message), sorts every payload dict by key, and stamps the document
with ``SCHEMA_VERSION`` so the committed ``LINT_BASELINE.json`` can be
diffed textually across runs and versions.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

from ..frontend.errors import SourceLocation

#: Bump when the JSON document layout (not the set of diagnostics) changes.
SCHEMA_VERSION = 1


class Severity(enum.Enum):
    """Diagnostic severities, ordered from most to least severe."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def order(self) -> int:
        return {"error": 0, "warning": 1, "info": 2}[self.value]


#: Stable diagnostic codes.  Codes are append-only: never renumber.
CODES: dict[str, str] = {
    "RACE001": "data race on a __global buffer (distinct work-items, "
               "confirmed write/write or write/read overlap)",
    "RACE002": "data race on a __local array (distinct work-items of one "
               "group, confirmed overlap)",
    "RACE010": "every work-item stores to the same address sequence "
               "(id-invariant store; racy for any launch with >1 work-item)",
    "OOB001": "out-of-bounds access on a __global buffer for the "
              "specialized launch",
    "OOB002": "out-of-bounds access on a __local array",
    "BAR001": "barrier() under work-item-divergent control flow",
    "VEC001": "kernel is ineligible for the vectorized backend",
}

#: Default severity per code (specialization can upgrade/downgrade).
DEFAULT_SEVERITY: dict[str, Severity] = {
    "RACE001": Severity.ERROR,
    "RACE002": Severity.ERROR,
    "RACE010": Severity.WARNING,
    "OOB001": Severity.ERROR,
    "OOB002": Severity.ERROR,
    "BAR001": Severity.WARNING,
    "VEC001": Severity.INFO,
}


def _jsonable(value: Any) -> Any:
    """Coerce payload values into JSON-stable primitives (sorted dicts)."""
    if isinstance(value, dict):
        return {str(k): _jsonable(value[k]) for k in sorted(value, key=str)}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


@dataclass(frozen=True)
class Diagnostic:
    """One verifier finding.

    ``payload`` carries the machine-readable evidence (witness work-item
    ids, the offending index, the buffer extent, the fallback reason, ...)
    and must contain only JSON-able values.
    """

    code: str
    severity: Severity
    kernel: str
    message: str
    line: int = 0
    column: int = 0
    payload: dict[str, Any] = field(default_factory=dict)

    @staticmethod
    def at(
        code: str,
        kernel: str,
        message: str,
        location: Optional[SourceLocation] = None,
        severity: Optional[Severity] = None,
        **payload: Any,
    ) -> "Diagnostic":
        return Diagnostic(
            code=code,
            severity=severity or DEFAULT_SEVERITY.get(code, Severity.WARNING),
            kernel=kernel,
            message=message,
            line=location.line if location is not None else 0,
            column=location.column if location is not None else 0,
            payload=payload,
        )

    @property
    def sort_key(self) -> tuple:
        return (self.severity.order, self.code, self.kernel, self.line,
                self.column, self.message)

    def render(self) -> str:
        """One-line compiler-log style rendering."""
        span = f"{self.line}:{self.column}: " if self.line else ""
        return (f"{span}{self.severity.value}: [{self.code}] "
                f"{self.kernel}: {self.message}")

    def as_dict(self) -> dict[str, Any]:
        return {
            "code": self.code,
            "severity": self.severity.value,
            "kernel": self.kernel,
            "line": self.line,
            "column": self.column,
            "message": self.message,
            "payload": _jsonable(self.payload),
        }


@dataclass
class VerifyReport:
    """All diagnostics for one verification run (one kernel or one launch).

    ``verdicts`` records the per-pass outcome — ``"clean"`` (proved safe),
    ``"diagnosed"`` (definite findings emitted), or ``"unknown"`` (outside
    the soundness envelope; nothing reported) — so downstream consumers can
    distinguish *proved race-free* from *nothing found*.
    """

    kernel: str
    diagnostics: list[Diagnostic] = field(default_factory=list)
    verdicts: dict[str, str] = field(default_factory=dict)

    def extend(self, items: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(items)

    def sorted(self) -> list[Diagnostic]:
        return sorted(self.diagnostics, key=lambda d: d.sort_key)

    def by_severity(self, severity: Severity) -> list[Diagnostic]:
        return [d for d in self.sorted() if d.severity is severity]

    @property
    def errors(self) -> list[Diagnostic]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> list[Diagnostic]:
        return self.by_severity(Severity.WARNING)

    @property
    def infos(self) -> list[Diagnostic]:
        return self.by_severity(Severity.INFO)

    @property
    def actionable(self) -> list[Diagnostic]:
        """Errors + warnings (what 'zero diagnostics' means for a kernel)."""
        return [d for d in self.sorted() if d.severity is not Severity.INFO]

    def render(self, min_severity: Severity = Severity.WARNING) -> str:
        keep = [d for d in self.sorted()
                if d.severity.order <= min_severity.order]
        if not keep:
            return f"{self.kernel}: clean ({self._verdict_text()})"
        lines = [d.render() for d in keep]
        lines.append(
            f"{self.kernel}: {len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s), {len(self.infos)} info(s)"
        )
        return "\n".join(lines)

    def _verdict_text(self) -> str:
        return ", ".join(f"{k}={v}" for k, v in sorted(self.verdicts.items()))

    def as_dict(self) -> dict[str, Any]:
        return {
            "kernel": self.kernel,
            "verdicts": {k: self.verdicts[k] for k in sorted(self.verdicts)},
            "diagnostics": [d.as_dict() for d in self.sorted()],
        }


def report_to_json(reports: Iterable[VerifyReport]) -> str:
    """Serialise reports as the stable, schema-versioned JSON document."""
    ordered = sorted(reports, key=lambda r: r.kernel)
    document = {
        "schema_version": SCHEMA_VERSION,
        "reports": [r.as_dict() for r in ordered],
    }
    return json.dumps(document, indent=2, sort_keys=False) + "\n"
