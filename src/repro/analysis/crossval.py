"""Dynamic cross-validation of static verifier verdicts.

The static race/OOB passes are solver-based; this module checks their
verdicts against ground truth obtained by *running* the kernel in an
instrumented scalar interpreter that records every non-atomic load and
store as ``(buffer instance, element, work-item)``.

A data race is schedule-independent in this model: two distinct
work-items touch the same element of one buffer instance with at least
one write.  The interpreter's deterministic order therefore produces the
same access sets any real schedule would, so

* a ``RACE001``/``RACE002`` diagnostic is **confirmed** when the trace
  shows the reported buffer element (or any element of the buffer) with
  conflicting accessors;
* an ``OOB001``/``OOB002`` diagnostic is **confirmed** when the run
  raises the interpreter's out-of-bounds error;
* a *clean* race/OOB verdict is **refuted** if the trace shows a
  conflict anyway (this is the soundness check the property suite leans
  on).

Barrier-divergence warnings are advisory (`BAR001` fires on *potential*
divergence), so a run without a desync does not refute one — but an
observed desync must be matched by a diagnostic.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from ..frontend import ast
from ..frontend.semantics import KernelInfo
from ..interp.executor import (
    ArrayRef,
    KernelExecutor,
    KernelRuntimeError,
    WorkItemContext,
    _BarrierDesync,
)
from .diagnostics import Diagnostic, VerifyReport

#: Buffer-instance key: param name for __global, (name, group_id) for __local.
BufferKey = Any


class InstrumentedExecutor(KernelExecutor):
    """Scalar interpreter that records per-element access sets."""

    def __init__(self, info: KernelInfo, args: dict[str, Any], ndrange):
        super().__init__(info, args, ndrange)
        self._global_names = {
            id(value): name for name, value in self.args.items()
            if isinstance(value, np.ndarray)
        }
        # key -> element -> set of work-item global ids
        self.writes: dict[BufferKey, dict[int, set]] = defaultdict(
            lambda: defaultdict(set))
        self.reads: dict[BufferKey, dict[int, set]] = defaultdict(
            lambda: defaultdict(set))

    def _gid(self, item: WorkItemContext) -> tuple:
        return tuple(item.global_id(d) for d in range(self.ndrange.work_dim))

    def _buffer_key(self, array: np.ndarray,
                    item: WorkItemContext) -> Optional[BufferKey]:
        name = self._global_names.get(id(array))
        if name is not None:
            return name
        for local_name, local_array in item.group.local_arrays.items():
            if local_array is array:
                return (local_name, item.group.group_id)
        return None

    def _resolve_ref(self, expr: ast.Index, item: WorkItemContext) -> ArrayRef:
        ref = super()._resolve_ref(expr, item)
        key = self._buffer_key(ref.array, item)
        if key is not None:
            self.reads[key][ref.offset].add(self._gid(item))
        return ref

    def _store(self, target: ast.Expr, value: Any,
               item: WorkItemContext) -> None:
        if isinstance(target, ast.Index):
            ref = KernelExecutor._resolve_ref(self, target, item)
            key = self._buffer_key(ref.array, item)
            if key is not None:
                self.writes[key][ref.offset].add(self._gid(item))
            ref.array[ref.offset] = value
            return
        super()._store(target, value, item)


@dataclass
class Conflict:
    """Two distinct work-items on one element, at least one writing."""

    buffer: str
    element: int
    gid_a: tuple
    gid_b: tuple
    kind: str  # "write/write" | "write/read"


@dataclass
class DynamicReport:
    """Ground truth from one instrumented run."""

    conflicts: list[Conflict] = field(default_factory=list)
    oob_error: Optional[str] = None
    barrier_desync: bool = False
    runtime_error: Optional[str] = None

    @property
    def completed(self) -> bool:
        return (self.oob_error is None and not self.barrier_desync
                and self.runtime_error is None)

    def conflicts_on(self, buffer: str) -> list[Conflict]:
        return [c for c in self.conflicts if c.buffer == buffer]


def _buffer_name(key: BufferKey) -> str:
    return key if isinstance(key, str) else key[0]


def run_instrumented(info: KernelInfo, args: dict[str, Any],
                     ndrange) -> DynamicReport:
    """Execute the kernel in the instrumented interpreter and distil the
    trace into conflicts / OOB / desync facts."""
    report = DynamicReport()
    executor = InstrumentedExecutor(info, args, ndrange)
    try:
        executor.run()
    except _BarrierDesync:
        report.barrier_desync = True
    except KernelRuntimeError as error:
        message = str(error)
        if "out-of-bounds" in message:
            report.oob_error = message
        else:
            report.runtime_error = message

    for key in set(executor.writes) | set(executor.reads):
        writes = executor.writes.get(key, {})
        reads = executor.reads.get(key, {})
        for element, writers in writes.items():
            writer_list = sorted(writers)
            if len(writer_list) >= 2:
                report.conflicts.append(Conflict(
                    buffer=_buffer_name(key), element=element,
                    gid_a=writer_list[0], gid_b=writer_list[1],
                    kind="write/write"))
                continue
            other = [g for g in reads.get(element, ()) if g not in writers]
            if writer_list and other:
                report.conflicts.append(Conflict(
                    buffer=_buffer_name(key), element=element,
                    gid_a=writer_list[0], gid_b=sorted(other)[0],
                    kind="write/read"))
    return report


@dataclass
class CrossCheck:
    """Verdict comparison for one static report against one dynamic run."""

    confirmed: list[Diagnostic] = field(default_factory=list)
    unreproduced: list[Diagnostic] = field(default_factory=list)
    missed_conflicts: list[Conflict] = field(default_factory=list)
    missed_oob: Optional[str] = None
    missed_desync: bool = False

    @property
    def consistent(self) -> bool:
        """No static claim refuted and no dynamic fact missed."""
        return (not self.unreproduced and not self.missed_conflicts
                and self.missed_oob is None and not self.missed_desync)


def cross_validate(report: VerifyReport,
                   dynamic: DynamicReport) -> CrossCheck:
    """Compare a static :class:`VerifyReport` with dynamic ground truth."""
    check = CrossCheck()
    diagnosed_buffers: set[str] = set()
    any_oob_diag = False
    any_bar_diag = any(d.code == "BAR001" for d in report.diagnostics)

    for diag in report.diagnostics:
        if diag.code in ("RACE001", "RACE002", "RACE010"):
            buffer = diag.payload.get("buffer", "")
            diagnosed_buffers.add(buffer)
            element = diag.payload.get("element")
            hits = dynamic.conflicts_on(buffer)
            if any(c.element == element for c in hits) or (
                    element is None and hits):
                check.confirmed.append(diag)
            elif hits:
                # overlap on the buffer, different element (e.g. the solver
                # and the schedule picked different witnesses)
                check.confirmed.append(diag)
            elif not dynamic.completed:
                # the run aborted before the access could happen
                check.confirmed.append(diag)
            else:
                check.unreproduced.append(diag)
        elif diag.code in ("OOB001", "OOB002"):
            any_oob_diag = True
            if dynamic.oob_error is not None:
                check.confirmed.append(diag)
            elif not dynamic.completed:
                check.confirmed.append(diag)
            else:
                check.unreproduced.append(diag)

    race_verdict = report.verdicts.get("races")
    if race_verdict == "clean":
        check.missed_conflicts = [
            c for c in dynamic.conflicts
            if c.buffer not in diagnosed_buffers
        ]
    oob_verdict = report.verdicts.get("oob")
    if (dynamic.oob_error is not None and not any_oob_diag
            and oob_verdict == "clean"):
        check.missed_oob = dynamic.oob_error
    if dynamic.barrier_desync and not any_bar_diag:
        check.missed_desync = True
    return check


def cross_validate_launch(info: KernelInfo, args: dict[str, Any],
                          ndrange) -> tuple[VerifyReport, DynamicReport,
                                            CrossCheck]:
    """One-call harness: verify statically, run instrumented, compare."""
    from .verify import LaunchSpec, verify_launch

    report = verify_launch(info, LaunchSpec.from_args(ndrange, args))
    dynamic = run_instrumented(info, args, ndrange)
    return report, dynamic, cross_validate(report, dynamic)
