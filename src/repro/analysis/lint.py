"""``dopia lint``: batch static verification over workloads and files.

Produces one :class:`~repro.analysis.diagnostics.VerifyReport` per target —
a registry workload (verified against its real launch geometry), one of its
transformed variants (the Figure-5/6 malleable GPU kernel or the Figure-7
CPU kernel), or a bare ``.cl`` file (launch-independent passes only).

The JSON document (:func:`repro.analysis.diagnostics.report_to_json`) is
byte-stable, which is what makes the committed ``LINT_BASELINE.json``
diffable: :func:`diff_baseline` compares two documents structurally and
reports *new* diagnostics (CI fails on any) separately from *removed* ones
(informational — the baseline should be regenerated).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

import numpy as np

from ..frontend.semantics import KernelInfo
from .diagnostics import VerifyReport
from .verify import LaunchSpec, verify_kernel, verify_launch

#: Throttle setting used when linting malleable variants: half the lanes of
#: every 4-wide bundle, a representative mid-range DoP.
LINT_GPU_MOD = 4
LINT_GPU_ALLOC = 2

#: CPU-variant lint launch: this many cooperative scheduler threads.
LINT_CPU_THREADS = 4


def _workload_args(workload) -> dict[str, Any]:
    """Deterministic full argument binding for one registry workload."""
    return workload.full_args(np.random.default_rng(0))


def lint_workload(workload) -> VerifyReport:
    """Verify one registry workload against its own launch geometry."""
    report = verify_launch(
        workload.kernel_info(),
        LaunchSpec.from_args(workload.ndrange(), _workload_args(workload)),
    )
    report.kernel = workload.key
    return report


def lint_malleable_variant(workload) -> Optional[VerifyReport]:
    """Verify the malleable GPU variant of one workload (None when the
    kernel is untransformable, e.g. barriered)."""
    from ..transform.gpu_malleable import TransformError, make_malleable

    ndrange = workload.ndrange()
    try:
        malleable = make_malleable(workload.kernel_info(),
                                   work_dim=ndrange.work_dim)
    except TransformError:
        return None
    args = _workload_args(workload)
    args["dop_gpu_mod"] = LINT_GPU_MOD
    args["dop_gpu_alloc"] = LINT_GPU_ALLOC
    report = verify_launch(malleable.info,
                           LaunchSpec.from_args(ndrange, args))
    report.kernel = f"{workload.key}@malleable"
    return report


def lint_cpu_variant(workload) -> Optional[VerifyReport]:
    """Verify the generated CPU variant of one workload, launched the way
    the cooperative scheduler launches it: one work-item per thread."""
    from ..interp.ndrange import NDRange
    from ..transform.cpu_codegen import CpuTransformError, make_cpu_kernel

    ndrange = workload.ndrange()
    try:
        cpu = make_cpu_kernel(workload.kernel_info(),
                              work_dim=ndrange.work_dim)
    except CpuTransformError:
        return None
    num_groups = tuple(
        g // l for g, l in zip(ndrange.global_size, ndrange.local_size))
    args = _workload_args(workload)
    args["dopia_wg_worklist"] = np.zeros(1, dtype=np.int32)
    args.update(cpu.scheduler_args(
        workload.num_work_groups, ndrange.local_size, num_groups))
    report = verify_launch(
        cpu.info,
        LaunchSpec.from_args(NDRange((LINT_CPU_THREADS,), (1,)), args),
    )
    report.kernel = f"{workload.key}@cpu"
    return report


def lint_workloads(
    keys: Optional[Iterable[str]] = None,
    variants: bool = False,
) -> list[VerifyReport]:
    """Lint registry workloads (all of them when ``keys`` is None).

    With ``variants`` the malleable GPU and generated CPU kernels of each
    workload are verified too — the static proof that the Figure-5/6/7
    transforms preserve access-set disjointness for the real launches.
    """
    from ..workloads import scaled_real_workloads

    workloads = scaled_real_workloads()
    if keys is not None:
        wanted = set(keys)
        by_key = {w.key: w for w in workloads}
        unknown = wanted - set(by_key)
        if unknown:
            raise KeyError(
                f"unknown workload(s): {', '.join(sorted(unknown))}; "
                f"known: {', '.join(sorted(by_key))}")
        workloads = [by_key[k] for k in sorted(wanted)]

    reports: list[VerifyReport] = []
    for workload in workloads:
        reports.append(lint_workload(workload))
        if variants:
            for variant in (lint_malleable_variant(workload),
                            lint_cpu_variant(workload)):
                if variant is not None:
                    reports.append(variant)
    return reports


def lint_kernel_info(info: KernelInfo, name: Optional[str] = None,
                     launch: Optional[LaunchSpec] = None) -> VerifyReport:
    """Lint one analysed kernel — launch-specialized when a launch is given,
    launch-independent passes otherwise."""
    report = (verify_launch(info, launch) if launch is not None
              else verify_kernel(info))
    if name:
        report.kernel = name
    return report


# -- baseline diff -----------------------------------------------------------


@dataclass
class BaselineDiff:
    """Structural comparison of two lint JSON documents."""

    new: list[str] = field(default_factory=list)
    removed: list[str] = field(default_factory=list)
    #: verdict transitions toward clean (e.g. unknown -> clean): the
    #: baseline is stale in a *good* way and should be regenerated
    improved: list[str] = field(default_factory=list)
    #: verdict transitions away from clean (e.g. clean -> unknown): a
    #: precision regression, failed like a new diagnostic
    regressed: list[str] = field(default_factory=list)
    schema_changed: bool = False

    @property
    def clean(self) -> bool:
        """CI gate: no new diagnostics and no verdict regressions
        (removed diagnostics / improved verdicts only warn)."""
        return not self.new and not self.regressed \
            and not self.schema_changed


def _diagnostic_keys(document: dict) -> set[tuple]:
    keys: set[tuple] = set()
    for report in document.get("reports", []):
        for diag in report.get("diagnostics", []):
            keys.add((
                report.get("kernel", ""),
                diag.get("code", ""),
                diag.get("severity", ""),
                diag.get("line", 0),
                diag.get("column", 0),
                diag.get("message", ""),
            ))
    return keys


def _describe(key: tuple) -> str:
    kernel, code, severity, line, column, message = key
    return f"{kernel}: {line}:{column}: {severity}: [{code}] {message}"


#: Partial order of verdict strength per pass: higher is better.  A
#: transition to a higher rank is an "improved" verdict (baseline stale in
#: a good way), to a lower rank a regression (fails the CI gate like a new
#: diagnostic).  ``eligible``/``ineligible`` are the vectorize pass's pair.
_VERDICT_RANK = {
    "diagnosed": 0,
    "ineligible": 0,
    "unknown": 1,
    "eligible": 2,
    "clean": 2,
}


def _verdict_map(document: dict) -> dict[tuple[str, str], str]:
    """``(kernel, pass) -> verdict`` for every report in a lint document."""
    verdicts: dict[tuple[str, str], str] = {}
    for report in document.get("reports", []):
        kernel = report.get("kernel", "")
        for pass_name, verdict in (report.get("verdicts") or {}).items():
            verdicts[(kernel, pass_name)] = verdict
    return verdicts


def diff_baseline(current_json: str, baseline_json: str) -> BaselineDiff:
    """Compare a freshly generated lint document against the committed
    baseline.  ``new`` diagnostics and ``regressed`` verdicts fail CI;
    ``removed`` / ``improved`` ones mean the baseline is stale and should
    be regenerated."""
    current = json.loads(current_json)
    baseline = json.loads(baseline_json)
    diff = BaselineDiff(
        schema_changed=(current.get("schema_version")
                        != baseline.get("schema_version")))
    now = _diagnostic_keys(current)
    then = _diagnostic_keys(baseline)
    diff.new = sorted(_describe(k) for k in now - then)
    diff.removed = sorted(_describe(k) for k in then - now)
    now_verdicts = _verdict_map(current)
    then_verdicts = _verdict_map(baseline)
    for key in sorted(set(now_verdicts) & set(then_verdicts)):
        before, after = then_verdicts[key], now_verdicts[key]
        if before == after:
            continue
        rank_before = _VERDICT_RANK.get(before, 1)
        rank_after = _VERDICT_RANK.get(after, 1)
        line = f"{key[0]}: {key[1]}: {before} -> {after}"
        if rank_after > rank_before:
            diff.improved.append(line)
        elif rank_after < rank_before:
            diff.regressed.append(line)
    return diff


# -- verdict statistics (``dopia lint --stats``) -----------------------------


def verdict_summary(document: dict) -> dict[str, dict[str, int]]:
    """``pass -> verdict -> count`` over every report in a lint document."""
    summary: dict[str, dict[str, int]] = {}
    for report in document.get("reports", []):
        for pass_name, verdict in (report.get("verdicts") or {}).items():
            summary.setdefault(pass_name, {})
            summary[pass_name][verdict] = \
                summary[pass_name].get(verdict, 0) + 1
    return summary


def unknown_entries(document: dict) -> list[str]:
    """``kernel#pass`` keys of every ``unknown`` verdict in a document —
    the currency of the ``--stats`` ratchet and its allowlist."""
    return sorted(
        f"{kernel}#{pass_name}"
        for (kernel, pass_name), verdict in _verdict_map(document).items()
        if verdict == "unknown")
