"""Static code analysis: access classification, Table-1 features, profiles."""

from .accessclass import (
    AccessClass,
    AffineEvaluator,
    AffineForm,
    Coeff,
    classify,
    stride_magnitude,
)
from .features import (
    FEATURE_NAMES,
    N_FEATURES,
    StaticFeatures,
    assemble_feature_vector,
    extract_static_features,
    extract_static_features_from_source,
    feature_matrix,
)
from .profile import (
    ClassTraffic,
    KernelProfile,
    OpProfile,
    build_profile,
    profile_kernel,
    symbol_environment,
)
from .diagnostics import Diagnostic, Severity, VerifyReport, report_to_json
from .scan import KernelScan, KernelScanner, MemoryOp, TripCount, scan_kernel
from .verify import (
    LaunchSpec,
    VerifyError,
    current_policy,
    verify_kernel,
    verify_launch,
    verify_launch_cached,
)

__all__ = [
    "AccessClass", "AffineEvaluator", "AffineForm", "Coeff", "classify",
    "stride_magnitude", "FEATURE_NAMES", "N_FEATURES", "StaticFeatures",
    "assemble_feature_vector", "extract_static_features",
    "extract_static_features_from_source", "feature_matrix", "ClassTraffic",
    "KernelProfile", "OpProfile", "build_profile", "profile_kernel",
    "symbol_environment",
    "KernelScan", "KernelScanner", "MemoryOp", "TripCount", "scan_kernel",
    "Diagnostic", "Severity", "VerifyReport", "report_to_json",
    "LaunchSpec", "VerifyError", "current_policy", "verify_kernel",
    "verify_launch", "verify_launch_cached",
]
