"""Ordinary-least-squares linear regression (the paper's LIN baseline)."""

from __future__ import annotations

import numpy as np

from .base import C_OP_SECONDS, Estimator


class LinearRegression(Estimator):
    """Least-squares linear model with intercept and feature standardisation.

    Standardisation matters here: the Table-1 features span ten orders of
    magnitude (``global_size`` vs ``cpu_util``), and an unconditioned
    normal-equation solve would be numerically dominated by the size
    features.  ``numpy.linalg.lstsq`` on the standardised design matrix is
    both stable and exact.
    """

    name = "lin"

    def __init__(self) -> None:
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0
        self._mean: np.ndarray | None = None
        self._scale: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LinearRegression":
        X, y = self._check_fit_inputs(X, y)
        self._mean = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale == 0.0] = 1.0
        self._scale = scale
        Xs = (X - self._mean) / self._scale
        design = np.hstack([Xs, np.ones((Xs.shape[0], 1))])
        solution, *_ = np.linalg.lstsq(design, y, rcond=None)
        self.coef_ = solution[:-1]
        self.intercept_ = float(solution[-1])
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("predict() before fit()")
        X = self._check_predict_inputs(X)
        Xs = (X - self._mean) / self._scale
        return Xs @ self.coef_ + self.intercept_

    def inference_cost_s(self, n_rows: int) -> float:
        if self.coef_ is None:
            raise RuntimeError("inference_cost_s() before fit()")
        # one multiply-add per feature (plus normalisation) per row
        ops_per_row = 3 * self.coef_.shape[0] + 1
        return n_rows * ops_per_row * C_OP_SECONDS
