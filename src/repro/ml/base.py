"""Common estimator interface for Dopia's performance models.

All estimators implement the small scikit-learn-style contract used by the
runtime: ``fit(X, y) -> self`` and ``predict(X) -> np.ndarray``.  They also
expose :meth:`inference_cost_s`, an analytic estimate of what evaluating
the model would cost *deployed as generated C code* (the paper compiles
its decision tree to C and links it into the runtime, §5.2) — this cost
is what Dopia charges against kernel runtime in Figure 13's overhead bars.
"""

from __future__ import annotations

import abc

import numpy as np

#: Cost of one fused multiply-add-ish step of generated C code, seconds.
#: (A conservative ~1 ns matches a simple scalar loop on a 3–4 GHz core.)
C_OP_SECONDS = 1e-9


class Estimator(abc.ABC):
    """Base class for the four model families of §9.2 (LIN, SVR, DT, RF)."""

    #: short name used in result tables ("lin", "svr", "dt", "rf")
    name: str = "base"

    @abc.abstractmethod
    def fit(self, X: np.ndarray, y: np.ndarray) -> "Estimator":
        """Train on feature matrix ``X`` (n, d) and targets ``y`` (n,)."""

    @abc.abstractmethod
    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict targets for ``X`` (n, d)."""

    @abc.abstractmethod
    def inference_cost_s(self, n_rows: int) -> float:
        """Seconds to evaluate ``n_rows`` inputs as compiled C code."""

    def _check_fit_inputs(self, X: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        if X.ndim != 2:
            raise ValueError("X must be 2-dimensional")
        if X.shape[0] != y.shape[0]:
            raise ValueError(
                f"X has {X.shape[0]} rows but y has {y.shape[0]} entries"
            )
        if X.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        return X, y

    def _check_predict_inputs(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X[None, :]
        return X
