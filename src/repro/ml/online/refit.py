"""Candidate fitting: pretrained prior + observed evidence.

The candidate is the same model family the incumbent came from (the
paper's DecisionTree by default), fit on the *union* of the pretrained
dataset's (features, normalised-performance) rows and rows derived from
the observation window.  Observed rows are replicated ``obs_weight``
times so a modest production window can out-vote the much larger
synthetic prior where they disagree — everywhere else the prior keeps
the tree's behaviour intact.

Observation targets use the same normalisation as training
(§9.2: ``best_time / time`` within one workload, here within one cell),
and the feature rows the same capped load columns as serving
(:meth:`Observation.feature_row`).  One subtlety: capping aliases rows —
a config infeasible at the cell's load produces the *same* capped
columns as a larger config, with a conflicting target.  The selection
path masks infeasible configs out anyway, so those rows are pure label
noise; :func:`observation_rows` drops them and only rows the serving
mask could actually pick are trained on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ...obs import tracer
from .. import make_model
from ..base import Estimator
from .store import Observation, ObservationStore

__all__ = ["RefitConfig", "Refitter", "observation_rows"]


@dataclass(frozen=True)
class RefitConfig:
    model: str = "dt"
    #: each observed row counts as this many prior rows in the fit
    obs_weight: int = 8
    model_kwargs: Optional[dict] = None


def observation_rows(
    observations: Sequence[Observation],
    utils: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """(X, y) training rows from an observation window.

    ``utils`` is the predictor's (44, 2) config-utilisation matrix, used
    to apply the serving feasibility rule: rows whose configuration does
    not fit alongside the cell's background load are dropped (their
    capped feature columns alias feasible rows with conflicting targets,
    and the mask makes them unselectable at serve time anyway).
    """
    eps = 1e-9
    xs: list[list[float]] = []
    ys: list[float] = []
    for cell in ObservationStore.by_cell(observations).values():
        best = ObservationStore.cell_best(cell)
        if best <= 0.0:
            continue
        for obs in cell:
            cpu_util, gpu_util = utils[obs.config_index]
            if (cpu_util > 1.0 - obs.cpu_load + eps
                    or gpu_util > 1.0 - obs.gpu_load + eps):
                continue
            xs.append(obs.feature_row())
            ys.append(best / obs.time_s if obs.time_s > 0.0 else 1.0)
    if not xs:
        return (np.empty((0, 11), dtype=np.float64),
                np.empty((0,), dtype=np.float64))
    return (np.asarray(xs, dtype=np.float64),
            np.asarray(ys, dtype=np.float64))


class Refitter:
    """Fits candidate models on (pretrained prior ⊕ observation window)."""

    def __init__(self, base_X: np.ndarray, base_y: np.ndarray,
                 config: RefitConfig | None = None):
        self.base_X = np.asarray(base_X, dtype=np.float64)
        self.base_y = np.asarray(base_y, dtype=np.float64)
        self.config = config or RefitConfig()
        self.refits = 0

    def fit_candidate(
        self, observations: Sequence[Observation], utils: np.ndarray,
    ) -> Estimator:
        cfg = self.config
        obs_X, obs_y = observation_rows(observations, utils)
        if len(obs_X):
            weight = max(1, cfg.obs_weight)
            X = np.concatenate([self.base_X] + [obs_X] * weight)
            y = np.concatenate([self.base_y] + [obs_y] * weight)
        else:
            X, y = self.base_X, self.base_y
        model = make_model(cfg.model, **(cfg.model_kwargs or {}))
        model.fit(X, y)
        self.refits += 1
        if tracer.enabled:
            tracer.counter("online.refits")
            tracer.instant(
                "online.refit", "online",
                model=cfg.model,
                observation_rows=int(len(obs_X)),
                prior_rows=int(len(self.base_X)),
                obs_weight=cfg.obs_weight,
            )
        return model
