"""Append-only observation store: what production launches actually cost.

One :class:`Observation` per launch, carrying exactly what a refit needs:
the Table-1 feature inputs (static counters, launch geometry, the
*background* load the launch ran under), the configuration that was
chosen, and the measured (or simulated) kernel time.  Counterfactual
*probe* observations — sibling configurations of the same launch cell,
measured by the host's prober — share the schema with ``probe=True`` and
define the realised-best-in-hindsight that regret is computed against.

In memory the store is a bounded sliding window (old evidence about a
drifted workload is exactly what retraining must forget).  On disk it is
a set of append-only JSONL *segments*, one per writer process, published
with the same atomic-rename primitive as the prediction store
(:func:`repro.serve.predstore.atomic_replace`) — sharded serving workers
contribute observations to the same namespace without coordination, and
a reader never sees a torn segment.  Corrupt lines are skipped and
counted; unreadable segment files are removed (the healing idiom of
:meth:`repro.serve.predstore.PredictionStore.entries`).
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from collections import deque
from dataclasses import asdict, dataclass, replace
from pathlib import Path
from typing import Iterable, Optional, Sequence

from ...obs import tracer
from ...serve.predstore import atomic_replace, default_store_root

__all__ = [
    "OBS_SCHEMA_VERSION", "Observation", "ObservationStore",
    "observation_namespace",
]

#: Bump when the Observation field layout changes; stamped on every
#: persisted row and checked on load.
OBS_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class Observation:
    """One launch (or counterfactual probe) and what it cost.

    ``static`` is the 6-tuple of Table-1 static features;
    ``cpu_load``/``gpu_load`` are the *bucketed* background occupancies
    the launch saw at enqueue time (bucketing keeps cells — see
    :meth:`cell_key` — coarse enough that sibling launches actually
    land in the same cell); ``cpu_util``/``gpu_util`` are the chosen
    configuration's own normalised allocations.
    """

    kernel: str
    static: tuple[float, ...]
    work_dim: int
    global_size: int
    local_size: int
    cpu_load: float
    gpu_load: float
    config_index: int           #: index into ``config_space(platform)``
    cpu_util: float
    gpu_util: float
    time_s: float
    predicted_score: float = 0.0
    probe: bool = False         #: counterfactual sibling, not a real launch
    source: str = "runtime"     #: "runtime" | "serve" | "probe" | "replay"
    seq: int = 0                #: ingest order within this process

    @property
    def group_key(self) -> tuple:
        """Identity of the *launch shape* — what the model sees besides load."""
        return (self.static, self.work_dim, self.global_size, self.local_size)

    @property
    def cell_key(self) -> tuple:
        """Launch shape plus load bucket: observations in one cell are
        siblings, directly comparable, and define each other's hindsight."""
        return self.group_key + (self.cpu_load, self.gpu_load)

    def feature_row(self) -> list[float]:
        """The 11-column model input this observation corresponds to.

        Mirrors :meth:`repro.core.predictor.DopPredictor.feature_rows`:
        columns 9–10 carry the configuration's utilisation *plus* the
        background load, capped at 1.0.
        """
        return [
            *self.static,
            float(self.work_dim), float(self.global_size), float(self.local_size),
            min(self.cpu_util + self.cpu_load, 1.0),
            min(self.gpu_util + self.gpu_load, 1.0),
        ]

    def as_row(self) -> dict:
        row = asdict(self)
        row["static"] = list(self.static)
        row["v"] = OBS_SCHEMA_VERSION
        return row

    @classmethod
    def from_row(cls, row: dict) -> "Observation":
        if row.get("v") != OBS_SCHEMA_VERSION:
            raise ValueError(f"observation schema {row.get('v')!r}")
        return cls(
            kernel=str(row["kernel"]),
            static=tuple(float(x) for x in row["static"]),
            work_dim=int(row["work_dim"]),
            global_size=int(row["global_size"]),
            local_size=int(row["local_size"]),
            cpu_load=float(row["cpu_load"]),
            gpu_load=float(row["gpu_load"]),
            config_index=int(row["config_index"]),
            cpu_util=float(row["cpu_util"]),
            gpu_util=float(row["gpu_util"]),
            time_s=float(row["time_s"]),
            predicted_score=float(row.get("predicted_score", 0.0)),
            probe=bool(row.get("probe", False)),
            source=str(row.get("source", "runtime")),
            seq=int(row.get("seq", 0)),
        )


def observation_namespace(platform_name: str) -> str:
    """Observations are valid per *platform*, not per model.

    Unlike prediction-cache entries (pure functions of the model), an
    observation records ground truth about the hardware — it stays valid
    across promotions, which is the whole point of keeping it.
    """
    digest = hashlib.blake2b(
        repr((OBS_SCHEMA_VERSION, platform_name)).encode(),
        digest_size=8).hexdigest()
    return f"{platform_name}-{digest}"


class ObservationStore:
    """Bounded in-memory window + cross-process JSONL segment persistence."""

    def __init__(self, namespace: str = "default",
                 window: int = 4096, root: Optional[Path] = None):
        if window < 1:
            raise ValueError("observation window must be >= 1")
        self.namespace = namespace
        self.window = window
        self.root = Path(root) if root is not None else default_store_root()
        self.dir = self.root / "observations" / namespace
        self._lock = threading.Lock()
        self._window: deque[Observation] = deque(maxlen=window)
        self._pending: list[Observation] = []   #: appended since last flush
        self._seq = 0
        self._segment = 0
        self.ingested = 0
        self.probes = 0
        self.persisted = 0
        self.loaded = 0
        self.skipped = 0          #: corrupt lines / unreadable segments

    # -- ingest ----------------------------------------------------------------

    def append(self, obs: Observation) -> Observation:
        """Add one observation (stamping its ingest sequence number)."""
        with self._lock:
            obs = replace(obs, seq=self._seq)
            self._seq += 1
            self._window.append(obs)
            self._pending.append(obs)
            self.ingested += 1
            if obs.probe:
                self.probes += 1
        if tracer.enabled:
            tracer.counter("online.observations")
            if obs.probe:
                tracer.counter("online.probes")
        return obs

    def extend(self, observations: Iterable[Observation]) -> None:
        for obs in observations:
            self.append(obs)

    # -- read ------------------------------------------------------------------

    def snapshot(self) -> list[Observation]:
        """Point-in-time copy of the in-memory window, oldest first."""
        with self._lock:
            return list(self._window)

    def __len__(self) -> int:
        with self._lock:
            return len(self._window)

    def stats(self) -> dict[str, float]:
        with self._lock:
            return {
                "size": len(self._window),
                "window": self.window,
                "ingested": self.ingested,
                "probes": self.probes,
                "persisted": self.persisted,
                "loaded": self.loaded,
                "skipped": self.skipped,
            }

    # -- persistence -----------------------------------------------------------

    def flush(self) -> int:
        """Publish observations appended since the last flush as one
        atomic JSONL segment; returns the row count.

        Segment names embed the writer's PID and a per-process counter,
        so concurrent shard processes never collide and every segment is
        complete (the atomic-rename guarantee of
        :func:`~repro.serve.predstore.atomic_replace`).
        """
        with self._lock:
            pending, self._pending = self._pending, []
            segment = self._segment
            self._segment += 1
        if not pending:
            return 0
        payload = "".join(
            json.dumps(obs.as_row(), sort_keys=True) + "\n" for obs in pending
        ).encode()
        name = f"seg-{os.getpid():06d}-{segment:06d}.jsonl"
        atomic_replace(self.dir, name, payload)
        with self._lock:
            self.persisted += len(pending)
        return len(pending)

    def load(self) -> int:
        """Read every persisted segment into the window; returns rows kept.

        Rows are replayed in (segment name, line) order — deterministic
        across runs — and corrupt lines are skipped while unreadable
        segment files are unlinked, mirroring the prediction store's
        healing behaviour.
        """
        if not self.dir.is_dir():
            return 0
        count = 0
        for path in sorted(self.dir.glob("seg-*.jsonl")):
            try:
                text = path.read_text()
            except OSError:
                self.skipped += 1
                try:
                    path.unlink()
                except OSError:
                    pass
                continue
            healthy = True
            for line in text.splitlines():
                if not line.strip():
                    continue
                try:
                    obs = Observation.from_row(json.loads(line))
                except (ValueError, KeyError, TypeError):
                    self.skipped += 1
                    healthy = False
                    continue
                with self._lock:
                    self._window.append(obs)
                    self._seq = max(self._seq, obs.seq + 1)
                count += 1
            if not healthy:
                # A torn or foreign segment never comes back: heal in place.
                try:
                    path.unlink()
                except OSError:
                    pass
        with self._lock:
            self.loaded += count
        return count

    def clear_disk(self) -> None:
        if not self.dir.is_dir():
            return
        for path in self.dir.glob("seg-*.jsonl"):
            try:
                path.unlink()
            except OSError:
                pass

    # -- grouping helpers (shared by drift + shadow) ---------------------------

    @staticmethod
    def by_cell(observations: Sequence[Observation]) -> dict[tuple, list[Observation]]:
        cells: dict[tuple, list[Observation]] = {}
        for obs in observations:
            cells.setdefault(obs.cell_key, []).append(obs)
        return cells

    @staticmethod
    def cell_best(cell: Sequence[Observation]) -> float:
        """Realised-best-in-hindsight for one cell (probes included)."""
        return min(obs.time_s for obs in cell)
