"""Shadow scoring: would the candidate have picked better configurations?

Promotion safety rests on replaying *exactly* the serving decision rule
against evidence we already paid for.  For every cell in the recent
window the scorer asks each model: given this launch shape and this
background load, which of the configurations we have measured times for
would you pick?  The model's regret for the cell is how much slower its
pick is than the cell's realised best; a model's window regret is the
launch-weighted mean over cells.  No new execution happens — shadow
scoring is pure inference over recorded observations.

:class:`PromotionGate` then applies the one rule that makes the loop
monotone: promote only when the candidate's shadow regret beats the
incumbent's by at least ``margin``.  With ``margin >= 0`` (enforced) the
gate can never promote a candidate whose window regret exceeds the
incumbent's — the property the hypothesis suite hammers on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ...obs import tracer
from ..base import Estimator
from .store import Observation, ObservationStore

__all__ = ["PromotionGate", "ShadowReport", "ShadowScorer", "select_among"]


def select_among(
    model: Estimator,
    rows: np.ndarray,
    utils: np.ndarray,
    cpu_load: float,
    gpu_load: float,
) -> int:
    """Index (into ``rows``) the model would pick — serving semantics.

    Mirrors :meth:`repro.core.predictor.DopPredictor.select`: score every
    candidate row, mask out configurations that do not fit alongside the
    background load, and argmax (falling back to the unmasked argmax when
    nothing fits).  ``utils`` is the (n, 2) per-row configuration
    utilisation matrix aligned with ``rows``.
    """
    scores = model.predict(rows)
    ranked = scores
    if cpu_load > 0.0 or gpu_load > 0.0:
        eps = 1e-9
        feasible = ((utils[:, 0] <= 1.0 - cpu_load + eps)
                    & (utils[:, 1] <= 1.0 - gpu_load + eps))
        if feasible.any():
            ranked = np.where(feasible, scores, -np.inf)
    return int(np.argmax(ranked))


@dataclass(frozen=True)
class ShadowReport:
    """Outcome of one incumbent-vs-candidate shadow comparison."""

    incumbent_regret: float
    candidate_regret: float
    cells: int                  #: cells with at least one real launch
    observations: int           #: real launches those cells contained
    margin: float
    promote: bool
    reason: str

    @property
    def improvement(self) -> float:
        return self.incumbent_regret - self.candidate_regret


class ShadowScorer:
    """Replays models against the observation window; pure inference."""

    def __init__(self, configs_utils: np.ndarray):
        #: (44, 2) normalised utilisations, aligned with ``config_space``
        self.utils = np.asarray(configs_utils, dtype=np.float64)

    def score(self, model: Estimator,
              observations: Sequence[Observation]) -> tuple[float, int, int]:
        """(window regret, cells scored, real launches weighted).

        Each cell contributes the regret of the model's pick *among the
        configurations measured in that cell* (real or probe), weighted
        by the number of real launches the cell served — cells that
        production traffic actually hits dominate the score.
        """
        total = 0.0
        weight = 0
        cells_scored = 0
        for cell in ObservationStore.by_cell(observations).values():
            real = sum(1 for obs in cell if not obs.probe)
            if not real:
                continue
            best = ObservationStore.cell_best(cell)
            if best <= 0.0:
                continue
            # One measured time per configuration (keep the fastest — a
            # probe and a real launch of the same config are duplicates).
            by_config: dict[int, Observation] = {}
            for obs in cell:
                seen = by_config.get(obs.config_index)
                if seen is None or obs.time_s < seen.time_s:
                    by_config[obs.config_index] = obs
            members = [by_config[i] for i in sorted(by_config)]
            rows = np.asarray([obs.feature_row() for obs in members],
                              dtype=np.float64)
            utils = self.utils[[obs.config_index for obs in members]]
            pick = select_among(model, rows, utils,
                                members[0].cpu_load, members[0].gpu_load)
            regret = max(members[pick].time_s / best - 1.0, 0.0)
            total += regret * real
            weight += real
            cells_scored += 1
        if not weight:
            return 0.0, 0, 0
        return total / weight, cells_scored, weight


@dataclass(frozen=True)
class PromotionGate:
    """Promote iff candidate regret <= incumbent regret - margin."""

    margin: float = 0.005
    #: refuse to decide off fewer real launches than this
    min_observations: int = 8

    def __post_init__(self):
        if self.margin < 0.0:
            raise ValueError("promotion margin must be >= 0 "
                             "(a negative margin could promote a worse model)")

    def decide(self, scorer: ShadowScorer, incumbent: Estimator,
               candidate: Estimator,
               observations: Sequence[Observation]) -> ShadowReport:
        inc_regret, cells, weight = scorer.score(incumbent, observations)
        cand_regret, _, _ = scorer.score(candidate, observations)
        if weight < self.min_observations:
            promote, reason = False, "insufficient-evidence"
        elif cand_regret <= inc_regret - self.margin:
            promote, reason = True, "candidate-better"
        else:
            promote, reason = False, "candidate-not-better"
        report = ShadowReport(
            incumbent_regret=inc_regret,
            candidate_regret=cand_regret,
            cells=cells,
            observations=weight,
            margin=self.margin,
            promote=promote,
            reason=reason,
        )
        if tracer.enabled:
            tracer.counter("online.shadow_scores")
            tracer.counter("online.promotions" if promote
                           else "online.rejections")
            tracer.instant(
                "online.shadow", "online",
                incumbent_regret=inc_regret,
                candidate_regret=cand_regret,
                cells=cells, observations=weight,
                margin=self.margin, promote=promote, reason=reason,
            )
        return report
