"""The retraining loop: observe → detect drift → refit → shadow → promote.

:class:`OnlineLoop` owns the incumbent model and the four stages.  The
host (a :class:`~repro.serve.server.DopiaServer` retrain thread, the
``dopia retrain`` CLI, or the replay harness) feeds launches in through
:meth:`ingest` and calls :meth:`step` periodically; each step returns a
:class:`Decision` recording exactly what happened and why, and the host
reacts to ``decision.promoted`` by swapping its predictor's model and
invalidating its prediction cache against the superseded generation.

Hindsight needs counterfactuals: a launch only measures the one
configuration it ran at, so the loop fills each newly seen cell with
*probe* observations — the remaining configurations' times for the same
launch shape under the same load — via a host-supplied ``prober``
callback.  In this reproduction the prober consults the simulator; on
real hardware it would be a sampling executor (run a duplicate launch at
a candidate configuration) or simply absent, in which case hindsight
degrades to the best configuration production traffic happened to try.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from ...obs import tracer
from ..base import Estimator
from .drift import DriftConfig, DriftDetector, DriftReport
from .refit import RefitConfig, Refitter
from .shadow import PromotionGate, ShadowReport, ShadowScorer
from .store import Observation, ObservationStore

__all__ = ["Decision", "OnlineConfig", "OnlineLoop", "Prober"]

#: ``prober(observation, config_index) -> time_s | None`` — measure (or
#: simulate) the observation's launch at another configuration under the
#: same background load; ``None`` when the host cannot.
Prober = Callable[[Observation, int], Optional[float]]


@dataclass(frozen=True)
class OnlineConfig:
    drift: DriftConfig = field(default_factory=DriftConfig)
    refit: RefitConfig = field(default_factory=RefitConfig)
    #: candidate must beat the incumbent's shadow regret by this much
    promote_margin: float = 0.005
    #: shadow evidence floor (real launches in the scored window)
    min_promote_observations: int = 8


@dataclass(frozen=True)
class Decision:
    """What one :meth:`OnlineLoop.step` concluded."""

    generation: int             #: model generation *after* this step
    drift: DriftReport
    shadow: Optional[ShadowReport]
    promoted: bool
    reason: str                 #: "no-drift" | shadow report's reason

    @property
    def drifted(self) -> bool:
        return self.drift.drifted


class OnlineLoop:
    """Drift-gated refit with shadow-scored promotion."""

    def __init__(
        self,
        model: Estimator,
        configs_utils: np.ndarray,
        base_X: np.ndarray,
        base_y: np.ndarray,
        config: OnlineConfig | None = None,
        store: ObservationStore | None = None,
        prober: Prober | None = None,
    ):
        self.config = config or OnlineConfig()
        self.model = model
        self.utils = np.asarray(configs_utils, dtype=np.float64)
        # not ``store or ...``: an empty store is len()-falsy but still
        # the caller's store
        self.store = store if store is not None else ObservationStore()
        self.prober = prober
        self.detector = DriftDetector(self.config.drift)
        self.refitter = Refitter(base_X, base_y, self.config.refit)
        self.scorer = ShadowScorer(self.utils)
        self.gate = PromotionGate(
            margin=self.config.promote_margin,
            min_observations=self.config.min_promote_observations,
        )
        self.generation = 0
        self.steps = 0
        self.promotions = 0
        self.rejections = 0
        self._probed: set[tuple] = set()
        self._config_index = {
            (round(u, 6), round(v, 6)): i
            for i, (u, v) in enumerate(self.utils)
        }

    # -- ingest ----------------------------------------------------------------

    def config_index(self, cpu_util: float, gpu_util: float) -> int:
        return self._config_index[(round(cpu_util, 6), round(gpu_util, 6))]

    def ingest(
        self,
        kernel: str,
        static: Sequence[float],
        work_dim: int,
        global_size: int,
        local_size: int,
        cpu_load: float,
        gpu_load: float,
        cpu_util: float,
        gpu_util: float,
        time_s: float,
        predicted_score: float = 0.0,
        source: str = "runtime",
    ) -> Observation:
        """Record one completed launch (convenience over ``store.append``)."""
        return self.store.append(Observation(
            kernel=kernel,
            static=tuple(float(x) for x in static),
            work_dim=int(work_dim),
            global_size=int(global_size),
            local_size=int(local_size),
            cpu_load=float(cpu_load),
            gpu_load=float(gpu_load),
            config_index=self.config_index(cpu_util, gpu_util),
            cpu_util=float(cpu_util),
            gpu_util=float(gpu_util),
            time_s=float(time_s),
            predicted_score=float(predicted_score),
            source=source,
        ))

    # -- probes ----------------------------------------------------------------

    def ensure_probes(self) -> int:
        """Fill newly seen cells with counterfactual sibling observations.

        Only *policy-reachable* configurations are probed — those that
        fit alongside the cell's background load, exactly the set
        :meth:`DopPredictor.select`'s feasibility mask allows — so the
        hindsight best that regret is measured against is always a
        configuration the serving policy could actually have chosen, and
        a perfectly retrained model can drive regret to zero.

        Each cell is probed at most once per loop lifetime; without a
        prober this is a no-op and hindsight comes from real launches
        alone.  Returns the number of probe observations appended.
        """
        if self.prober is None:
            return 0
        eps = 1e-9
        added = 0
        for obs in self.store.snapshot():
            if obs.probe or obs.cell_key in self._probed:
                continue
            self._probed.add(obs.cell_key)
            for index, (cpu_util, gpu_util) in enumerate(self.utils):
                if index == obs.config_index:
                    continue
                if (cpu_util > 1.0 - obs.cpu_load + eps
                        or gpu_util > 1.0 - obs.gpu_load + eps):
                    continue
                time_s = self.prober(obs, index)
                if time_s is None or time_s <= 0.0:
                    continue
                self.store.append(Observation(
                    kernel=obs.kernel,
                    static=obs.static,
                    work_dim=obs.work_dim,
                    global_size=obs.global_size,
                    local_size=obs.local_size,
                    cpu_load=obs.cpu_load,
                    gpu_load=obs.gpu_load,
                    config_index=index,
                    cpu_util=float(cpu_util),
                    gpu_util=float(gpu_util),
                    time_s=float(time_s),
                    probe=True,
                    source="probe",
                ))
                added += 1
        return added

    # -- the step --------------------------------------------------------------

    def step(self) -> Decision:
        """One pass of the loop; promotes ``self.model`` in place."""
        self.steps += 1
        self.ensure_probes()
        window = self.store.snapshot()
        drift = self.detector.check(window)
        if not drift.drifted:
            decision = Decision(self.generation, drift, None, False, "no-drift")
            self._trace(decision)
            return decision
        candidate = self.refitter.fit_candidate(window, self.utils)
        shadow = self.gate.decide(self.scorer, self.model, candidate, window)
        if shadow.promote:
            self.model = candidate
            self.generation += 1
            self.promotions += 1
        else:
            self.rejections += 1
        decision = Decision(self.generation, drift, shadow,
                            shadow.promote, shadow.reason)
        self._trace(decision)
        return decision

    def _trace(self, decision: Decision) -> None:
        if not tracer.enabled:
            return
        tracer.instant(
            "online.decision", "online",
            generation=decision.generation,
            drifted=decision.drifted,
            promoted=decision.promoted,
            reason=decision.reason,
            mean_regret=decision.drift.mean_regret,
        )

    def stats(self) -> dict[str, float]:
        return {
            "generation": self.generation,
            "steps": self.steps,
            "promotions": self.promotions,
            "rejections": self.rejections,
            "drift_checks": self.detector.checks,
            "drift_detections": self.detector.detections,
            "refits": self.refitter.refits,
            "observations": self.store.stats()["size"],
        }
