"""Drift detection: is the incumbent model leaving performance on the table?

*Regret* of a launch is how much slower its chosen configuration ran than
the realised-best-in-hindsight of its cell — the minimum time over
sibling launches and counterfactual probes of the same (launch shape,
load bucket):

    regret(o) = time(o) / best(cell(o)) - 1            (0 = optimal pick)

Drift is sustained regret: a kernel whose mean regret over the sliding
window exceeds the threshold, with enough real (non-probe) observations
to trust the mean.  A pretrained model goes regretful exactly when the
conditions it was trained under stop holding — in this reproduction,
when background load makes the capped load columns alias configurations
the idle-trained tree learned to rank by their uncapped utilisations.

Counters and per-kernel regret observations are exported through
:mod:`repro.obs` so a trace shows *why* a refit was triggered.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ...obs import tracer
from .store import Observation, ObservationStore

__all__ = ["DriftConfig", "DriftDetector", "DriftReport", "KernelRegret"]


@dataclass(frozen=True)
class DriftConfig:
    """Sensitivity of the detector.

    ``regret_threshold`` is a fraction: 0.08 means "the chosen configs
    run 8 % slower than the hindsight best, on average".
    ``min_observations`` guards against deciding off a handful of noisy
    launches.
    """

    regret_threshold: float = 0.08
    min_observations: int = 24


@dataclass(frozen=True)
class KernelRegret:
    kernel: str
    observations: int           #: real launches scored (probes excluded)
    cells: int
    mean_regret: float
    max_regret: float
    drifted: bool


@dataclass(frozen=True)
class DriftReport:
    drifted: bool
    kernels: tuple[KernelRegret, ...] = field(default_factory=tuple)

    @property
    def mean_regret(self) -> float:
        """Observation-weighted mean regret across all scored kernels."""
        total = sum(k.observations for k in self.kernels)
        if not total:
            return 0.0
        return sum(k.mean_regret * k.observations for k in self.kernels) / total

    def drifted_kernels(self) -> list[str]:
        return [k.kernel for k in self.kernels if k.drifted]


def observation_regret(obs: Observation, cell: Sequence[Observation]) -> float:
    """Regret of one real launch against its cell's hindsight best."""
    best = ObservationStore.cell_best(cell)
    if best <= 0.0:
        return 0.0
    return max(obs.time_s / best - 1.0, 0.0)


class DriftDetector:
    """Scores a window of observations; stateless between calls."""

    def __init__(self, config: DriftConfig | None = None):
        self.config = config or DriftConfig()
        self.checks = 0
        self.detections = 0

    def check(self, observations: Sequence[Observation]) -> DriftReport:
        """Per-kernel regret over ``observations``; drift if any kernel
        clears both the observation floor and the regret threshold."""
        self.checks += 1
        cells = ObservationStore.by_cell(observations)
        per_kernel: dict[str, list[float]] = {}
        kernel_cells: dict[str, set] = {}
        for cell_key, cell in cells.items():
            for obs in cell:
                if obs.probe:
                    continue
                per_kernel.setdefault(obs.kernel, []).append(
                    observation_regret(obs, cell))
                kernel_cells.setdefault(obs.kernel, set()).add(cell_key)

        kernels = []
        cfg = self.config
        for kernel in sorted(per_kernel):
            regrets = per_kernel[kernel]
            mean = sum(regrets) / len(regrets)
            drifted = (len(regrets) >= cfg.min_observations
                       and mean > cfg.regret_threshold)
            kernels.append(KernelRegret(
                kernel=kernel,
                observations=len(regrets),
                cells=len(kernel_cells[kernel]),
                mean_regret=mean,
                max_regret=max(regrets),
                drifted=drifted,
            ))
            if tracer.enabled:
                tracer.observe("online.kernel_regret", mean)
                tracer.observe(f"online.kernel_regret.{kernel}", mean)

        report = DriftReport(
            drifted=any(k.drifted for k in kernels),
            kernels=tuple(kernels),
        )
        if report.drifted:
            self.detections += 1
        if tracer.enabled:
            tracer.counter("online.drift_checks")
            if report.drifted:
                tracer.counter("online.drift_detected")
            tracer.instant(
                "online.drift", "online",
                drifted=report.drifted,
                mean_regret=report.mean_regret,
                kernels={k.kernel: round(k.mean_regret, 6) for k in kernels},
            )
        return report
