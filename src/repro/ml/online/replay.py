"""Golden-trace replay: a deterministic end-to-end proof of the loop.

The harness drives the retraining loop through a scripted production
scenario with a planted shift:

* phase 1 — an idle machine serves an alternating mix of real kernels;
  the pretrained model picks well and regret stays near zero;
* phase 2 — background GPU load appears (a co-runner occupying 75 % of
  the PEs).  The serving path's feasibility mask keeps selections legal,
  but the idle-trained model now ranks the *feasible* configurations by
  feature rows whose capped load columns it has never seen — it leaves
  performance on the table, regret rises, drift is detected, a candidate
  is refit on the observed window, shadow-scored, and promoted.

Everything is deterministic: per-config base times come from the
simulator's seeded noise (keyed on the workload), contention is the
closed-form :func:`repro.sim.config_slowdown`, and tree fitting has no
randomness — so two replays under ``PYTHONHASHSEED=0`` produce
bit-identical decision sequences, which the golden tests (and
``dopia retrain --check``) assert.  The report deliberately contains no
wall-clock timestamps.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

import numpy as np

from ...analysis.features import extract_static_features
from ...core.dopconfig import config_space, config_utils_matrix
from ...core.predictor import DopPredictor
from ...core.training import collect_dataset
from ...obs import tracer
from ...sim.contention import config_slowdown
from ...sim.engine import simulate_execution
from ...sim.platforms import get_platform
from ...workloads import SCALED_REAL_FACTORIES
from ...workloads.synthetic import training_workloads
from ..base import Estimator
from .drift import DriftConfig
from .loop import OnlineConfig, OnlineLoop
from .refit import RefitConfig
from .store import Observation, ObservationStore

__all__ = ["REPLAY_SCHEMA_VERSION", "ReplayConfig", "run_replay", "train_base"]

REPLAY_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class ReplayConfig:
    """The scripted scenario; defaults are the committed golden trace."""

    platform: str = "kaveri"
    kernels: tuple[str, ...] = ("GESUMMV", "ATAX1")
    launches: int = 240
    #: launch index at which the background co-runner appears
    shift_at: int = 80
    #: (cpu, gpu) occupancy the co-runner plants after the shift
    load: tuple[float, float] = (0.0, 0.75)
    #: run the loop's step() every this many launches
    check_every: int = 16
    window: int = 2048
    drift_threshold: float = 0.05
    min_drift_observations: int = 16
    obs_weight: int = 8
    promote_margin: float = 0.002
    min_promote_observations: int = 8
    model: str = "dt"
    #: reduced Table-4 slice the base model is trained on (fast, cacheable)
    train_sizes: tuple[int, ...] = (16384,)
    train_wg_sizes: tuple[int, ...] = (256,)
    #: replication factor of the replay kernels' idle rows in the prior
    idle_prior_weight: int = 4


def train_base(config: ReplayConfig | None = None,
               cache: bool = False) -> tuple[Estimator, np.ndarray, np.ndarray]:
    """(incumbent model, prior X, prior y) for the replay's platform.

    Trains the paper's model family on a reduced Table-4 slice — the
    same trick the serve-layer test fixtures use — *plus* the replay
    kernels' own idle-machine rows at every configuration.  That is what
    "pretrained" means for a production kernel: the offline dataset saw
    it on an idle machine, so the incumbent picks well at idle and the
    planted load shift — conditions the prior has never seen — is the
    only thing that can make it regretful.
    """
    from .. import make_model

    config = config or ReplayConfig()
    platform = get_platform(config.platform)
    workloads = training_workloads(sizes=config.train_sizes,
                                   wg_sizes=config.train_wg_sizes)
    dataset = collect_dataset(workloads, platform, cache=cache)
    configs = config_space(platform)
    utils = config_utils_matrix(configs)

    xs, ys = [dataset.feature_matrix()], [dataset.targets()]
    for name in config.kernels:
        workload = SCALED_REAL_FACTORIES[name]()
        profile = workload.profile()
        static = extract_static_features(workload.kernel_info())
        times = np.array([
            simulate_execution(
                profile, platform, cfg.setting,
                scheduler="dynamic", run_key=(workload.key, "replay"),
            ).time_s
            for cfg in configs
        ])
        rows = np.empty((len(configs), 11), dtype=np.float64)
        rows[:, 0:6] = static.as_tuple()
        rows[:, 6] = workload.work_dim
        rows[:, 7] = workload.total_work_items
        rows[:, 8] = workload.work_group_items
        rows[:, 9:] = utils
        target = times.min() / times
        for _ in range(max(1, config.idle_prior_weight)):
            xs.append(rows)
            ys.append(target)
    X, y = np.concatenate(xs), np.concatenate(ys)
    model = make_model(config.model)
    model.fit(X, y)
    return model, X, y


def run_replay(
    config: ReplayConfig | None = None,
    model: Estimator | None = None,
    base_X: np.ndarray | None = None,
    base_y: np.ndarray | None = None,
) -> dict:
    """Drive the loop through the golden trace; returns the regret report.

    Pass a pre-trained ``(model, base_X, base_y)`` (from
    :func:`train_base`) to amortise training across replays — the run
    never mutates the passed model, so bit-stability checks can reuse it.
    """
    config = config or ReplayConfig()
    platform = get_platform(config.platform)
    if model is None or base_X is None or base_y is None:
        model, base_X, base_y = train_base(config)

    configs = config_space(platform)
    utils = config_utils_matrix(configs)
    fairness = platform.arbitration_fairness
    predictor = DopPredictor(model, platform)

    # Per-kernel launch shape + deterministic per-config base times.
    shapes: dict[str, dict] = {}
    for name in config.kernels:
        workload = SCALED_REAL_FACTORIES[name]()
        profile = workload.profile()
        shapes[name] = {
            "static": extract_static_features(workload.kernel_info()),
            "work_dim": workload.work_dim,
            "global_size": workload.total_work_items,
            "local_size": workload.work_group_items,
            "base_times": np.array([
                simulate_execution(
                    profile, platform, cfg.setting,
                    scheduler="dynamic", run_key=(workload.key, "replay"),
                ).time_s
                for cfg in configs
            ]),
        }

    def realised_time(name: str, index: int,
                      cpu_load: float, gpu_load: float) -> float:
        cpu_util, gpu_util = utils[index]
        return float(shapes[name]["base_times"][index] * config_slowdown(
            cpu_util, gpu_util, cpu_load, gpu_load, fairness=fairness))

    def prober(obs: Observation, index: int) -> float:
        return realised_time(obs.kernel, index, obs.cpu_load, obs.gpu_load)

    loop = OnlineLoop(
        model=model,
        configs_utils=utils,
        base_X=base_X,
        base_y=base_y,
        config=OnlineConfig(
            drift=DriftConfig(
                regret_threshold=config.drift_threshold,
                min_observations=config.min_drift_observations,
            ),
            refit=RefitConfig(model=config.model,
                              obs_weight=config.obs_weight),
            promote_margin=config.promote_margin,
            min_promote_observations=config.min_promote_observations,
        ),
        store=ObservationStore(window=config.window),
        prober=prober,
    )

    chosen: list[int] = []
    regrets: list[float] = []     #: measured regret per launch, in order
    loaded: list[bool] = []
    drift_detected_at: int | None = None
    promoted_at: int | None = None
    decisions: list[dict] = []

    for i in range(config.launches):
        name = config.kernels[i % len(config.kernels)]
        shape = shapes[name]
        cpu_load, gpu_load = ((0.0, 0.0) if i < config.shift_at
                              else config.load)
        prediction = predictor.select(
            shape["static"], shape["work_dim"],
            shape["global_size"], shape["local_size"],
            cpu_load=cpu_load, gpu_load=gpu_load,
        )
        index = loop.config_index(prediction.config.cpu_util,
                                  prediction.config.gpu_util)
        time_s = realised_time(name, index, cpu_load, gpu_load)
        # measured regret vs the best *policy-reachable* configuration —
        # the same hindsight definition the loop's probes use
        eps = 1e-9
        reachable = [j for j in range(len(configs))
                     if utils[j, 0] <= 1.0 - cpu_load + eps
                     and utils[j, 1] <= 1.0 - gpu_load + eps] or range(len(configs))
        best = min(realised_time(name, j, cpu_load, gpu_load)
                   for j in reachable)
        chosen.append(index)
        regrets.append(time_s / best - 1.0 if best > 0.0 else 0.0)
        loaded.append(i >= config.shift_at)
        loop.ingest(
            kernel=name,
            static=shape["static"].as_tuple(),
            work_dim=shape["work_dim"],
            global_size=shape["global_size"],
            local_size=shape["local_size"],
            cpu_load=cpu_load,
            gpu_load=gpu_load,
            cpu_util=prediction.config.cpu_util,
            gpu_util=prediction.config.gpu_util,
            time_s=time_s,
            source="replay",
        )

        if (i + 1) % config.check_every == 0:
            decision = loop.step()
            decisions.append({
                "launch": i + 1,
                "drifted": decision.drifted,
                "promoted": decision.promoted,
                "reason": decision.reason,
                "mean_regret": decision.drift.mean_regret,
            })
            if decision.drifted and drift_detected_at is None:
                drift_detected_at = i + 1
            if decision.promoted:
                if promoted_at is None:
                    promoted_at = i + 1
                # the serving-side reaction: swap the live predictor
                predictor.model = loop.model

    def mean(values: list[float]) -> float:
        return sum(values) / len(values) if values else 0.0

    pre = [r for i, (r, on) in enumerate(zip(regrets, loaded))
           if on and (promoted_at is None or i < promoted_at)]
    post = [r for i, (r, on) in enumerate(zip(regrets, loaded))
            if on and promoted_at is not None and i >= promoted_at]
    pre_regret, post_regret = mean(pre), mean(post)

    checks = {
        "drift_detected": drift_detected_at is not None,
        "promoted_exactly_once": loop.promotions == 1,
        "regret_improved": (promoted_at is not None
                            and post_regret < pre_regret),
    }
    report = {
        "schema": REPLAY_SCHEMA_VERSION,
        "config": asdict(config),
        "platform": platform.name,
        "drift_detected_at": drift_detected_at,
        "promoted_at": promoted_at,
        "promotions": loop.promotions,
        "rejections": loop.rejections,
        "generation": loop.generation,
        "pre_promotion_regret": pre_regret,
        "post_promotion_regret": post_regret,
        "regret_improvement": pre_regret - post_regret,
        "idle_regret": mean([r for r, on in zip(regrets, loaded) if not on]),
        "decisions": decisions,
        "chosen": chosen,
        "observations": loop.store.stats(),
        "checks": checks,
        "pass": all(checks.values()),
    }
    if tracer.enabled:
        tracer.instant("online.replay", "online", **checks,
                       pre_regret=pre_regret, post_regret=post_regret)
    return report
