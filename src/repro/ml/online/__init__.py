"""``repro.ml.online`` — closing the loop: predictor retraining from traces.

The paper ships a pretrained DecisionTree and never looks back; this
package turns the production telemetry the runtime and serving layers
already record into *better* DoP predictions, without ever serving a
worse model.  Four stages, each usable alone:

:class:`~repro.ml.online.store.ObservationStore`
    Append-only log of per-launch observations — the Table-1 feature row
    (including the live load columns), the chosen configuration, and the
    measured/simulated time — bounded in memory, persisted across
    processes with the same atomic-rename machinery as
    :mod:`repro.serve.predstore` so sharded workers contribute too.
:class:`~repro.ml.online.drift.DriftDetector`
    Per-kernel *regret* (chosen-configuration time vs the
    realised-best-in-hindsight among sibling launches and counterfactual
    probes of the same launch cell) over a sliding window; drift is a
    sustained regret above threshold.
:class:`~repro.ml.online.refit.Refitter`
    Fits a candidate model on the pretrained dataset plus the observed
    window (observation rows weighted up so production evidence can
    out-vote the synthetic prior).
:class:`~repro.ml.online.shadow.ShadowScorer` + :class:`PromotionGate`
    Replays candidate and incumbent against the recent window — same
    selection rule as serving, feasibility mask included — and promotes
    the candidate only when its shadow regret beats the incumbent's by a
    configurable margin.  A rejected candidate changes nothing.

:class:`~repro.ml.online.loop.OnlineLoop` wires the stages together and
is what :class:`repro.serve.DopiaServer` drives from its background
retraining thread (and ``dopia retrain`` drives manually).
:func:`~repro.ml.online.replay.run_replay` is the deterministic
golden-trace harness — a seeded workload with a planted load shift —
that proves the whole loop end to end (``dopia retrain --check``).
"""

from .drift import DriftConfig, DriftDetector, DriftReport, KernelRegret
from .loop import Decision, OnlineConfig, OnlineLoop
from .refit import RefitConfig, Refitter
from .replay import REPLAY_SCHEMA_VERSION, ReplayConfig, run_replay, train_base
from .shadow import PromotionGate, ShadowReport, ShadowScorer, select_among
from .store import (
    OBS_SCHEMA_VERSION,
    Observation,
    ObservationStore,
    observation_namespace,
)

__all__ = [
    "Decision",
    "DriftConfig",
    "DriftDetector",
    "DriftReport",
    "KernelRegret",
    "OBS_SCHEMA_VERSION",
    "REPLAY_SCHEMA_VERSION",
    "Observation",
    "ObservationStore",
    "OnlineConfig",
    "OnlineLoop",
    "PromotionGate",
    "RefitConfig",
    "Refitter",
    "ReplayConfig",
    "ShadowReport",
    "ShadowScorer",
    "observation_namespace",
    "run_replay",
    "select_among",
    "train_base",
]
