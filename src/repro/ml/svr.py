"""ε-insensitive support-vector regression with an RBF kernel.

The paper's SVR is libsvm's (via scikit-learn); this from-scratch
implementation solves the same dual problem with the bias folded into the
kernel (``K̃ = K + 1``), which turns the constrained dual into a
box-constrained, ℓ1-regularised quadratic:

    max_β  −½ βᵀ K̃ β + yᵀβ − ε‖β‖₁,   −C ≤ βᵢ ≤ C

solved by cyclic coordinate descent with exact per-coordinate updates
(soft-threshold then clip).  Coordinates are swept until the maximum
update falls below tolerance.  Samples with βᵢ ≠ 0 are the support
vectors; inference is O(#SV · d), which is why SVR's deployment overhead
dwarfs the tree models' in Figure 10b / Figure 13.

Training cost is quadratic in sample count, so ``max_samples`` caps the
training set by uniform subsampling (documented deviation: the paper
trains offline for hours on the full set; we keep the benchmark suite
runnable in minutes at equivalent qualitative accuracy).
"""

from __future__ import annotations

import numpy as np

from .base import C_OP_SECONDS, Estimator


def rbf_kernel(A: np.ndarray, B: np.ndarray, gamma: float) -> np.ndarray:
    """The Gaussian kernel matrix ``exp(-gamma * ||a - b||^2)``."""
    sq_a = np.square(A).sum(axis=1)[:, None]
    sq_b = np.square(B).sum(axis=1)[None, :]
    d2 = np.maximum(sq_a + sq_b - 2.0 * (A @ B.T), 0.0)
    return np.exp(-gamma * d2)


class SVR(Estimator):
    """ε-SVR with RBF kernel, coordinate-descent dual solver."""

    name = "svr"

    def __init__(
        self,
        C: float = 10.0,
        epsilon: float = 0.02,
        gamma: float | str = "scale",
        max_sweeps: int = 60,
        tol: float = 1e-4,
        max_samples: int = 2500,
        random_state: int = 0,
    ):
        if C <= 0:
            raise ValueError("C must be positive")
        if epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        self.C = C
        self.epsilon = epsilon
        self.gamma = gamma
        self.max_sweeps = max_sweeps
        self.tol = tol
        self.max_samples = max_samples
        self.random_state = random_state
        self.support_vectors_: np.ndarray | None = None
        self.dual_coef_: np.ndarray | None = None
        self._mean: np.ndarray | None = None
        self._scale: np.ndarray | None = None
        self._gamma_value: float = 1.0

    # -- helpers ---------------------------------------------------------------

    def _standardise(self, X: np.ndarray, fit: bool) -> np.ndarray:
        if fit:
            self._mean = X.mean(axis=0)
            scale = X.std(axis=0)
            scale[scale == 0.0] = 1.0
            self._scale = scale
        return (X - self._mean) / self._scale

    def _resolve_gamma(self, X: np.ndarray) -> float:
        if self.gamma == "scale":
            var = X.var()
            return 1.0 / (X.shape[1] * var) if var > 0 else 1.0
        return float(self.gamma)

    # -- training ------------------------------------------------------------

    def fit(self, X: np.ndarray, y: np.ndarray) -> "SVR":
        X, y = self._check_fit_inputs(X, y)
        if X.shape[0] > self.max_samples:
            rng = np.random.default_rng(self.random_state)
            rows = rng.choice(X.shape[0], size=self.max_samples, replace=False)
            X, y = X[rows], y[rows]
        Xs = self._standardise(X, fit=True)
        self._gamma_value = self._resolve_gamma(Xs)
        K = rbf_kernel(Xs, Xs, self._gamma_value) + 1.0  # bias folded in
        n = Xs.shape[0]
        beta = np.zeros(n)
        residual = y.copy()  # r = y − K β
        diag = np.diag(K).copy()
        for _ in range(self.max_sweeps):
            max_delta = 0.0
            for i in range(n):
                z = residual[i] + diag[i] * beta[i]
                # soft-threshold by epsilon, clip to the box
                if z > self.epsilon:
                    target = (z - self.epsilon) / diag[i]
                elif z < -self.epsilon:
                    target = (z + self.epsilon) / diag[i]
                else:
                    target = 0.0
                target = min(max(target, -self.C), self.C)
                delta = target - beta[i]
                if delta != 0.0:
                    beta[i] = target
                    residual -= delta * K[:, i]
                    max_delta = max(max_delta, abs(delta))
            if max_delta < self.tol:
                break
        keep = beta != 0.0
        self.support_vectors_ = Xs[keep]
        self.dual_coef_ = beta[keep]
        return self

    # -- prediction ------------------------------------------------------------

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.dual_coef_ is None:
            raise RuntimeError("predict() before fit()")
        X = self._check_predict_inputs(X)
        Xs = self._standardise(X, fit=False)
        if self.support_vectors_.shape[0] == 0:
            return np.zeros(X.shape[0])
        K = rbf_kernel(Xs, self.support_vectors_, self._gamma_value) + 1.0
        return K @ self.dual_coef_

    @property
    def n_support(self) -> int:
        return 0 if self.dual_coef_ is None else int(self.dual_coef_.shape[0])

    def inference_cost_s(self, n_rows: int) -> float:
        if self.dual_coef_ is None:
            raise RuntimeError("inference_cost_s() before fit()")
        d = self.support_vectors_.shape[1] if self.n_support else 1
        # per row: #SV kernel evaluations, each ~3d ops plus one exp (~20 ops)
        ops = self.n_support * (3 * d + 20)
        return n_rows * ops * C_OP_SECONDS
