"""Random-forest regression (bagged CART trees, the paper's RF model)."""

from __future__ import annotations

import numpy as np

from .base import Estimator
from .tree import DecisionTreeRegressor


class RandomForestRegressor(Estimator):
    """Bootstrap-aggregated regression trees with feature subsampling.

    Matches the classic Breiman recipe: each tree sees a bootstrap sample
    of the rows and considers a random subset of features per split
    (``max_features`` ≈ d/3 for regression by default).
    """

    name = "rf"

    def __init__(
        self,
        n_estimators: int = 24,
        max_depth: int = 16,
        min_samples_leaf: int = 4,
        max_features: int | None = None,
        random_state: int = 0,
    ):
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state
        self.trees_: list[DecisionTreeRegressor] = []

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestRegressor":
        X, y = self._check_fit_inputs(X, y)
        n, d = X.shape
        max_features = self.max_features or max(1, d // 3)
        rng = np.random.default_rng(self.random_state)
        self.trees_ = []
        for index in range(self.n_estimators):
            rows = rng.integers(0, n, size=n)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=max_features,
                random_state=int(rng.integers(0, 2**31 - 1)),
            )
            tree.fit(X[rows], y[rows])
            self.trees_.append(tree)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if not self.trees_:
            raise RuntimeError("predict() before fit()")
        X = self._check_predict_inputs(X)
        out = np.zeros(X.shape[0])
        for tree in self.trees_:
            out += tree.predict(X)
        return out / len(self.trees_)

    def inference_cost_s(self, n_rows: int) -> float:
        if not self.trees_:
            raise RuntimeError("inference_cost_s() before fit()")
        return sum(tree.inference_cost_s(n_rows) for tree in self.trees_)
