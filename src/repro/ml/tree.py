"""CART regression tree (the paper's deployed DT model, §5.2).

A from-scratch, NumPy-vectorised implementation: the best split of a node
is found per feature by sorting once and scanning all thresholds with
prefix sums (variance reduction in O(n log n) per feature), the classic
CART construction.  Trees are stored in flat arrays so prediction is an
iterative, allocation-free descent — which is also what makes the
generated-C deployment of :mod:`repro.ml.treecodegen` straightforward.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import C_OP_SECONDS, Estimator

_LEAF = -1


@dataclass
class _Node:
    feature: int          #: split feature, or -1 for leaves
    threshold: float      #: go left if x[feature] <= threshold
    left: int             #: child indices into the node array
    right: int
    value: float          #: mean target (prediction at leaves)
    n_samples: int
    gain: float = 0.0     #: variance reduction achieved by this split


def _best_split(
    X: np.ndarray, y: np.ndarray, min_samples_leaf: int
) -> tuple[int, float, float] | None:
    """(feature, threshold, score) of the best variance-reducing split.

    Score is the reduction in the sum of squared deviations; ``None`` if no
    admissible split improves on the parent.
    """
    n, d = X.shape
    total_sum = y.sum()
    parent_sse = np.square(y).sum() - total_sum**2 / n
    best: tuple[int, float, float] | None = None
    best_score = 1e-12  # require strictly positive improvement
    for feature in range(d):
        order = np.argsort(X[:, feature], kind="stable")
        xs = X[order, feature]
        ys = y[order]
        # candidate split positions: between distinct consecutive values
        left_sum = np.cumsum(ys)[:-1]
        left_cnt = np.arange(1, n)
        right_sum = total_sum - left_sum
        right_cnt = n - left_cnt
        valid = (xs[1:] != xs[:-1])
        valid &= (left_cnt >= min_samples_leaf) & (right_cnt >= min_samples_leaf)
        if not valid.any():
            continue
        # children SSE via the identity SSE = sum(y^2) - (sum y)^2 / n;
        # the sum(y^2) terms cancel in the reduction, so score =
        # left^2/nl + right^2/nr - total^2/n
        gain = (
            left_sum**2 / left_cnt + right_sum**2 / right_cnt - total_sum**2 / n
        )
        gain[~valid] = -np.inf
        index = int(np.argmax(gain))
        if gain[index] > best_score:
            best_score = float(gain[index])
            threshold = 0.5 * (xs[index] + xs[index + 1])
            best = (feature, float(threshold), best_score)
    if best is None:
        return None
    del parent_sse  # parent term cancels; kept for readability of the math
    return best


class DecisionTreeRegressor(Estimator):
    """CART regression tree with depth / leaf-size regularisation."""

    name = "dt"

    def __init__(
        self,
        max_depth: int = 16,
        min_samples_leaf: int = 4,
        min_samples_split: int = 8,
        max_features: int | None = None,
        random_state: int | None = None,
    ):
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.min_samples_split = max(min_samples_split, 2 * min_samples_leaf)
        self.max_features = max_features
        self.random_state = random_state
        self.nodes_: list[_Node] = []

    # -- training ------------------------------------------------------------

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeRegressor":
        X, y = self._check_fit_inputs(X, y)
        self.nodes_ = []
        self._flat = None
        self._depth = None
        rng = np.random.default_rng(self.random_state)
        self._build(X, y, depth=0, rng=rng)
        self._flat = self._compile()
        self._depth = self._measure_depth()
        return self

    def _compile(self) -> tuple[np.ndarray, ...]:
        """Flatten the node list into read-only arrays for descent.

        Compiled once per ``fit``: rebuilding these on every ``predict``
        dominated the serving layer's prediction latency.  The arrays are
        immutable after compilation, which is also what makes concurrent
        ``predict`` calls from many threads safe — prediction only reads.
        """
        arrays = (
            np.array([n.feature for n in self.nodes_]),
            np.array([n.threshold for n in self.nodes_]),
            np.array([n.left for n in self.nodes_]),
            np.array([n.right for n in self.nodes_]),
            np.array([n.value for n in self.nodes_]),
        )
        for array in arrays:
            array.flags.writeable = False
        return arrays

    def _build(self, X: np.ndarray, y: np.ndarray, depth: int, rng) -> int:
        index = len(self.nodes_)
        node = _Node(
            feature=_LEAF, threshold=0.0, left=-1, right=-1,
            value=float(y.mean()), n_samples=y.shape[0],
        )  # gain filled in if the node splits
        self.nodes_.append(node)
        if (
            depth >= self.max_depth
            or y.shape[0] < self.min_samples_split
            or np.ptp(y) == 0.0
        ):
            return index
        if self.max_features is not None and self.max_features < X.shape[1]:
            features = rng.choice(X.shape[1], size=self.max_features, replace=False)
            features.sort()
            split = _best_split(X[:, features], y, self.min_samples_leaf)
            if split is not None:
                split = (int(features[split[0]]), split[1], split[2])
        else:
            split = _best_split(X, y, self.min_samples_leaf)
        if split is None:
            return index
        feature, threshold, gain = split
        mask = X[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.gain = gain
        node.left = self._build(X[mask], y[mask], depth + 1, rng)
        node.right = self._build(X[~mask], y[~mask], depth + 1, rng)
        return index

    # -- prediction ------------------------------------------------------------

    def predict(self, X: np.ndarray) -> np.ndarray:
        if not self.nodes_:
            raise RuntimeError("predict() before fit()")
        X = self._check_predict_inputs(X)
        # vectorised level-wise descent: all rows walk the tree together
        positions = np.zeros(X.shape[0], dtype=np.int64)
        flat = getattr(self, "_flat", None)
        if flat is None:
            # models fitted (or unpickled) before array caching existed
            flat = self._flat = self._compile()
        features, thresholds, lefts, rights, values = flat
        active = features[positions] != _LEAF
        while active.any():
            idx = positions[active]
            go_left = (
                X[active, features[idx]] <= thresholds[idx]
            )
            positions[active] = np.where(go_left, lefts[idx], rights[idx])
            active = features[positions] != _LEAF
        return values[positions]

    # -- introspection ------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        return len(self.nodes_)

    @property
    def depth(self) -> int:
        """Actual depth of the fitted tree (measured once per fit)."""
        cached = getattr(self, "_depth", None)
        if cached is None:
            cached = self._depth = self._measure_depth()
        return cached

    def _measure_depth(self) -> int:
        if not self.nodes_:
            return 0
        depths = {0: 0}
        best = 0
        for index, node in enumerate(self.nodes_):
            if node.feature != _LEAF:
                depths[node.left] = depths[index] + 1
                depths[node.right] = depths[index] + 1
                best = max(best, depths[index] + 1)
        return best

    def feature_importances(self, n_features: int | None = None) -> np.ndarray:
        """Impurity-decrease importances, normalised to sum to 1.

        The weight of a feature is the total variance reduction achieved
        by all splits on it — the standard CART importance.  Useful for
        inspecting *what drives* the DoP selection (the Table-1 features'
        relevance).
        """
        if not self.nodes_:
            raise RuntimeError("feature_importances() before fit()")
        if n_features is None:
            n_features = max(
                (n.feature for n in self.nodes_ if n.feature != _LEAF), default=-1
            ) + 1
        out = np.zeros(max(n_features, 1))
        for node in self.nodes_:
            if node.feature != _LEAF:
                out[node.feature] += node.gain
        total = out.sum()
        return out / total if total > 0 else out

    def inference_cost_s(self, n_rows: int) -> float:
        if not self.nodes_:
            raise RuntimeError("inference_cost_s() before fit()")
        # one compare-and-branch per level of generated C
        return n_rows * max(self.depth, 1) * 2 * C_OP_SECONDS
