"""Decision-tree → C code generation (the paper's deployment path, §5.2).

"The generated decision tree is converted to C code and invoked by Dopia
for at-runtime model inference."  This module performs that conversion:
the fitted CART tree becomes a single C function of nested conditionals.
The output compiles as C99 (and incidentally as C++); the test suite
validates it by re-evaluating the generated code with a tiny C-expression
interpreter against the Python tree on random inputs.
"""

from __future__ import annotations

from .tree import DecisionTreeRegressor, _LEAF


def tree_to_c(
    tree: DecisionTreeRegressor,
    function_name: str = "dopia_predict",
    feature_names: list[str] | None = None,
) -> str:
    """Render a fitted tree as a C function ``double f(const double*)``."""
    if not tree.nodes_:
        raise RuntimeError("cannot generate code for an unfitted tree")
    lines: list[str] = []
    if feature_names is not None:
        for index, name in enumerate(feature_names):
            lines.append(f"/* features[{index}] = {name} */")
    lines.append(f"double {function_name}(const double *features)")
    lines.append("{")
    _emit(tree, 0, 1, lines)
    lines.append("}")
    return "\n".join(lines) + "\n"


def _emit(tree: DecisionTreeRegressor, index: int, depth: int, lines: list[str]) -> None:
    pad = "    " * depth
    node = tree.nodes_[index]
    if node.feature == _LEAF:
        lines.append(f"{pad}return {node.value!r};")
        return
    lines.append(f"{pad}if (features[{node.feature}] <= {node.threshold!r}) {{")
    _emit(tree, node.left, depth + 1, lines)
    lines.append(f"{pad}}} else {{")
    _emit(tree, node.right, depth + 1, lines)
    lines.append(f"{pad}}}")


def evaluate_c_tree(source: str, features) -> float:
    """Reference evaluator for generated tree code (no compiler needed).

    Walks the generated text, which by construction contains only
    ``if (features[i] <= t) { ... } else { ... }`` and ``return v;`` — a
    deliberately tiny grammar.  Used by tests to prove the C text is
    faithful to the Python tree.
    """
    lines = [ln.strip() for ln in source.splitlines()]
    # skip comments and the function header
    pos = 0
    while pos < len(lines) and not lines[pos].startswith("{"):
        pos += 1
    pos += 1  # past '{'

    def run(pos: int) -> tuple[float | None, int]:
        while pos < len(lines):
            line = lines[pos]
            if line.startswith("return "):
                return float(line[len("return "):].rstrip(";")), pos + 1
            if line.startswith("if (features["):
                head = line[len("if (features["):]
                fidx, rest = head.split("]", 1)
                threshold = float(rest.split("<=", 1)[1].split(")", 1)[0])
                taken = float(features[int(fidx)]) <= threshold
                value, pos = run(pos + 1)  # then-branch
                # pos now at '} else {'
                if not lines[pos].startswith("} else {"):
                    raise ValueError(f"malformed tree code near line {pos}")
                other, pos = run(pos + 1)
                if not lines[pos].startswith("}"):
                    raise ValueError(f"malformed tree code near line {pos}")
                return (value if taken else other), pos + 1
            pos += 1
        raise ValueError("no return reached")

    value, _ = run(pos)
    if value is None:
        raise ValueError("generated code produced no value")
    return value
