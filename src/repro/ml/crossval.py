"""K-fold cross-validation (the paper's 64-fold protocol, §9.2).

The dataset is shuffled once, divided into K equal-sized groups, and each
group serves as the test set while the remaining K−1 train the model; the
reported result aggregates all folds.  Grouped splitting is also provided:
Dopia's workloads contribute 44 rows each (one per DoP configuration), and
rows of the same workload must never straddle the train/test boundary, or
the validation would leak the very curve the model is asked to predict.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Sequence

import numpy as np

from .base import Estimator


def kfold_indices(
    n: int, k: int, rng: np.random.Generator | int | None = 0
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield (train_idx, test_idx) pairs for shuffled K-fold CV."""
    if k < 2:
        raise ValueError("k must be >= 2")
    if k > n:
        raise ValueError(f"cannot make {k} folds from {n} samples")
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    order = rng.permutation(n)
    folds = np.array_split(order, k)
    for i in range(k):
        test = folds[i]
        train = np.concatenate([folds[j] for j in range(k) if j != i])
        yield train, test


def grouped_kfold_indices(
    groups: Sequence, k: int, rng: np.random.Generator | int | None = 0
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """K-fold over *groups*: all rows of a group land in the same fold."""
    groups = np.asarray(groups)
    unique = np.unique(groups)
    if k > unique.shape[0]:
        raise ValueError(f"cannot make {k} folds from {unique.shape[0]} groups")
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    order = rng.permutation(unique)
    folds = np.array_split(order, k)
    for i in range(k):
        test_groups = set(folds[i].tolist())
        mask = np.fromiter((g in test_groups for g in groups), bool, groups.shape[0])
        yield np.nonzero(~mask)[0], np.nonzero(mask)[0]


def leave_one_group_out(
    groups: Sequence, target_group
) -> tuple[np.ndarray, np.ndarray]:
    """Train/test split that holds out exactly one group (Fig. 13 protocol)."""
    groups = np.asarray(groups)
    mask = groups == target_group
    if not mask.any():
        raise ValueError(f"group {target_group!r} not present")
    return np.nonzero(~mask)[0], np.nonzero(mask)[0]


@dataclass
class CvFoldResult:
    """Predictions of one cross-validation fold."""

    test_indices: np.ndarray
    predictions: np.ndarray


def cross_val_predict(
    make_model: Callable[[], Estimator],
    X: np.ndarray,
    y: np.ndarray,
    k: int = 64,
    groups: Sequence | None = None,
    rng: np.random.Generator | int | None = 0,
) -> np.ndarray:
    """Out-of-fold predictions for every row, via (grouped) K-fold CV."""
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    out = np.empty_like(y)
    if groups is None:
        splits = kfold_indices(X.shape[0], k, rng)
    else:
        splits = grouped_kfold_indices(groups, k, rng)
    for train, test in splits:
        model = make_model()
        model.fit(X[train], y[train])
        out[test] = model.predict(X[test])
    return out


def r2_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Coefficient of determination."""
    y_true = np.asarray(y_true, dtype=np.float64)
    y_pred = np.asarray(y_pred, dtype=np.float64)
    ss_res = np.square(y_true - y_pred).sum()
    ss_tot = np.square(y_true - y_true.mean()).sum()
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot


def mean_absolute_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    return float(np.abs(np.asarray(y_true) - np.asarray(y_pred)).mean())
