"""From-scratch ML models for Dopia's performance prediction (§5.2, §9.2)."""

from .base import C_OP_SECONDS, Estimator
from .crossval import (
    cross_val_predict,
    grouped_kfold_indices,
    kfold_indices,
    leave_one_group_out,
    mean_absolute_error,
    r2_score,
)
from .forest import RandomForestRegressor
from .linear import LinearRegression
from .svr import SVR, rbf_kernel
from .tree import DecisionTreeRegressor
from .treecodegen import evaluate_c_tree, tree_to_c

#: The four model families compared in §9.2, by short name.
MODEL_FAMILIES = {
    "lin": LinearRegression,
    "svr": SVR,
    "dt": DecisionTreeRegressor,
    "rf": RandomForestRegressor,
}


def make_model(name: str, **kwargs) -> Estimator:
    """Instantiate one of the §9.2 model families by short name."""
    try:
        factory = MODEL_FAMILIES[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown model {name!r}; available: {sorted(MODEL_FAMILIES)}"
        ) from None
    return factory(**kwargs)


__all__ = [
    "C_OP_SECONDS", "Estimator", "cross_val_predict", "grouped_kfold_indices",
    "kfold_indices", "leave_one_group_out", "mean_absolute_error", "r2_score",
    "RandomForestRegressor", "LinearRegression", "SVR", "rbf_kernel",
    "DecisionTreeRegressor", "evaluate_c_tree", "tree_to_c", "MODEL_FAMILIES",
    "make_model",
]
