"""Legacy setup shim.

The evaluation environment has no network access and no ``wheel`` package,
so PEP-517 editable installs (``pip install -e .``) cannot build a wheel.
This shim lets ``python setup.py develop`` (or legacy pip) install the
package from ``pyproject.toml`` metadata.
"""

from setuptools import setup

setup()
