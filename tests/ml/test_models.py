"""Unit tests for the from-scratch ML estimators."""

import numpy as np
import pytest

from repro.ml import (
    SVR,
    DecisionTreeRegressor,
    LinearRegression,
    RandomForestRegressor,
    make_model,
    r2_score,
)


def toy_linear(n=200, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1, 1, size=(n, 4))
    y = 2.0 * X[:, 0] - 3.0 * X[:, 1] + 0.5
    return X, y


def toy_nonlinear(n=400, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1, 1, size=(n, 3))
    y = np.where(X[:, 0] > 0, 1.0, -1.0) * (1 + np.abs(X[:, 1]))
    return X, y


class TestLinearRegression:
    def test_recovers_exact_linear_target(self):
        X, y = toy_linear()
        model = LinearRegression().fit(X, y)
        assert r2_score(y, model.predict(X)) > 0.999

    def test_huge_scale_features_are_conditioned(self):
        X, y = toy_linear()
        X = X.copy()
        X[:, 2] *= 1e9  # like global_size next to cpu_util
        model = LinearRegression().fit(X, y)
        assert r2_score(y, model.predict(X)) > 0.999

    def test_constant_feature_does_not_crash(self):
        X, y = toy_linear()
        X[:, 3] = 7.0
        LinearRegression().fit(X, y).predict(X)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            LinearRegression().predict(np.zeros((1, 3)))

    def test_single_row_input_accepted(self):
        X, y = toy_linear()
        model = LinearRegression().fit(X, y)
        assert model.predict(X[0]).shape == (1,)


class TestDecisionTree:
    def test_fits_step_function(self):
        X, y = toy_nonlinear()
        model = DecisionTreeRegressor(max_depth=10).fit(X, y)
        assert r2_score(y, model.predict(X)) > 0.9

    def test_depth_limit_respected(self):
        X, y = toy_nonlinear()
        model = DecisionTreeRegressor(max_depth=3).fit(X, y)
        assert model.depth <= 3

    def test_min_samples_leaf_respected(self):
        X, y = toy_nonlinear(n=100)
        model = DecisionTreeRegressor(min_samples_leaf=20).fit(X, y)
        from repro.ml.tree import _LEAF

        for node in model.nodes_:
            if node.feature == _LEAF:
                assert node.n_samples >= 20

    def test_constant_target_single_leaf(self):
        X = np.random.default_rng(0).uniform(size=(50, 3))
        model = DecisionTreeRegressor().fit(X, np.full(50, 3.5))
        assert model.n_nodes == 1
        assert np.all(model.predict(X) == 3.5)

    def test_predictions_within_target_hull(self):
        X, y = toy_nonlinear()
        model = DecisionTreeRegressor().fit(X, y)
        preds = model.predict(X)
        assert preds.min() >= y.min() - 1e-12
        assert preds.max() <= y.max() + 1e-12

    def test_invalid_hyperparameters_rejected(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor(max_depth=0)
        with pytest.raises(ValueError):
            DecisionTreeRegressor(min_samples_leaf=0)

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit(np.zeros((5, 2)), np.zeros(4))

    def test_inference_cost_grows_with_depth(self):
        X, y = toy_nonlinear()
        shallow = DecisionTreeRegressor(max_depth=2).fit(X, y)
        deep = DecisionTreeRegressor(max_depth=12).fit(X, y)
        assert deep.inference_cost_s(44) > shallow.inference_cost_s(44)


class TestRandomForest:
    def test_beats_single_tree_on_noise(self):
        rng = np.random.default_rng(1)
        X = rng.uniform(-1, 1, size=(400, 4))
        y = X[:, 0] * X[:, 1] + 0.3 * rng.normal(size=400)
        half = 200
        tree = DecisionTreeRegressor(min_samples_leaf=1, min_samples_split=2)
        tree.fit(X[:half], y[:half])
        forest = RandomForestRegressor(n_estimators=20, random_state=3)
        forest.fit(X[:half], y[:half])
        assert r2_score(y[half:], forest.predict(X[half:])) >= r2_score(
            y[half:], tree.predict(X[half:])
        )

    def test_deterministic_given_seed(self):
        X, y = toy_nonlinear()
        a = RandomForestRegressor(n_estimators=5, random_state=7).fit(X, y).predict(X)
        b = RandomForestRegressor(n_estimators=5, random_state=7).fit(X, y).predict(X)
        assert np.array_equal(a, b)

    def test_cost_scales_with_trees(self):
        X, y = toy_nonlinear()
        small = RandomForestRegressor(n_estimators=2).fit(X, y)
        big = RandomForestRegressor(n_estimators=20).fit(X, y)
        assert big.inference_cost_s(44) > small.inference_cost_s(44)


class TestSVR:
    def test_fits_smooth_function(self):
        rng = np.random.default_rng(2)
        X = rng.uniform(-2, 2, size=(300, 2))
        y = np.sin(X[:, 0]) * np.cos(X[:, 1])
        model = SVR(max_samples=300).fit(X, y)
        assert r2_score(y, model.predict(X)) > 0.95

    def test_epsilon_insensitivity_limits_support(self):
        rng = np.random.default_rng(3)
        X = rng.uniform(-1, 1, size=(200, 2))
        y = 0.5 * X[:, 0]
        loose = SVR(epsilon=0.3, max_samples=200).fit(X, y)
        tight = SVR(epsilon=0.001, max_samples=200).fit(X, y)
        assert loose.n_support < tight.n_support

    def test_subsampling_respected(self):
        X, y = toy_nonlinear(n=500)
        model = SVR(max_samples=100).fit(X, y)
        assert model.n_support <= 100

    def test_inference_cost_scales_with_support(self):
        X, y = toy_nonlinear(n=300)
        model = SVR(max_samples=300, epsilon=0.001).fit(X, y)
        assert model.inference_cost_s(44) > model.inference_cost_s(1)

    def test_invalid_hyperparameters_rejected(self):
        with pytest.raises(ValueError):
            SVR(C=0)
        with pytest.raises(ValueError):
            SVR(epsilon=-1)


class TestModelRegistry:
    def test_all_four_families_constructible(self):
        for name in ("lin", "svr", "dt", "rf"):
            model = make_model(name)
            assert model.name == name

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            make_model("gpt")

    def test_relative_inference_costs_match_fig10b(self):
        """LIN and DT must be orders of magnitude cheaper than SVR/RF."""
        X, y = toy_nonlinear(n=300)
        costs = {}
        for name in ("lin", "dt", "rf", "svr"):
            model = make_model(name)
            if name == "svr":
                model = SVR(max_samples=300, epsilon=0.001)
            model.fit(X, y)
            costs[name] = model.inference_cost_s(44)
        assert costs["lin"] < costs["svr"] / 50
        assert costs["dt"] < costs["svr"] / 50
        assert costs["rf"] > costs["dt"]


class TestFeatureImportances:
    def test_dominant_feature_identified(self):
        rng = np.random.default_rng(4)
        X = rng.uniform(-1, 1, size=(300, 5))
        y = 10.0 * X[:, 2] + 0.1 * X[:, 0]
        model = DecisionTreeRegressor().fit(X, y)
        importances = model.feature_importances(5)
        assert importances.argmax() == 2
        assert importances[2] > 0.8

    def test_importances_normalised(self):
        rng = np.random.default_rng(5)
        X = rng.uniform(-1, 1, size=(200, 3))
        y = X[:, 0] * X[:, 1]
        model = DecisionTreeRegressor().fit(X, y)
        assert model.feature_importances(3).sum() == pytest.approx(1.0)

    def test_unfitted_tree_rejected(self):
        with pytest.raises(RuntimeError):
            DecisionTreeRegressor().feature_importances(3)

    def test_single_leaf_importances_are_zero(self):
        X = np.zeros((20, 2))
        model = DecisionTreeRegressor().fit(X, np.full(20, 1.5))
        assert model.feature_importances(2).sum() == 0.0
