"""Regression: concurrent ``predict`` is bit-identical to serial.

The serving layer calls one shared model from many worker threads.
Prediction must be a pure read: the descent arrays are compiled once at
``fit`` time, immutable afterwards, and every concurrent caller gets
exactly the bytes a serial caller would.
"""

import threading

import numpy as np
import pytest

from repro.ml import make_model
from repro.ml.tree import DecisionTreeRegressor


@pytest.fixture(scope="module")
def fitted():
    rng = np.random.default_rng(7)
    X = rng.uniform(size=(600, 11))
    y = X[:, 0] * 3.0 + np.sin(X[:, 7] * 6) + rng.normal(scale=0.05, size=600)
    model = make_model("dt")
    model.fit(X, y)
    queries = rng.uniform(size=(44, 11))
    return model, queries


def test_compiled_descent_arrays_are_immutable(fitted):
    model, _ = fitted
    for array in model._flat:
        assert not array.flags.writeable


def test_depth_is_memoized_and_correct(fitted):
    model, _ = fitted
    assert model.depth == model._measure_depth()
    assert model._depth == model.depth


def test_unpickled_model_recompiles_lazily(fitted):
    """Models fitted before array caching existed still predict."""
    model, queries = fitted
    oracle = model.predict(queries)
    clone = DecisionTreeRegressor.__new__(DecisionTreeRegressor)
    clone.__dict__.update(model.__dict__)
    del clone.__dict__["_flat"]
    del clone.__dict__["_depth"]
    assert np.array_equal(clone.predict(queries), oracle)
    assert clone.depth == model.depth


def hammer_predict(model, queries, threads_n=8, repeats=50):
    """Concurrent predict from N threads; returns divergences/errors."""
    oracle = model.predict(queries)
    barrier = threading.Barrier(threads_n)
    failures = []
    lock = threading.Lock()

    def worker():
        try:
            barrier.wait()
            for _ in range(repeats):
                out = model.predict(queries)
                if out.tobytes() != oracle.tobytes():
                    raise AssertionError("concurrent predict diverged")
        except BaseException as error:  # noqa: BLE001
            with lock:
                failures.append(error)

    workers = [threading.Thread(target=worker) for _ in range(threads_n)]
    for thread in workers:
        thread.start()
    for thread in workers:
        thread.join()
    return oracle, failures


def test_concurrent_predict_bit_identical_to_serial(fitted):
    model, queries = fitted
    oracle, failures = hammer_predict(model, queries)
    assert not failures
    # and the model itself came through untouched
    assert np.array_equal(model.predict(queries), oracle)


def test_concurrent_forest_predict_bit_identical(fitted):
    """The ensemble (shared per-tree flat arrays) is just as pure a read."""
    _, queries = fitted
    rng = np.random.default_rng(11)
    X = rng.uniform(size=(300, 11))
    y = X[:, 1] * 2.0 - X[:, 4]
    forest = make_model("rf", n_estimators=8)
    forest.fit(X, y)
    oracle, failures = hammer_predict(forest, queries, repeats=20)
    assert not failures
    assert np.array_equal(forest.predict(queries), oracle)
