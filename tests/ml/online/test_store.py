"""Observation store: window semantics, JSONL persistence, healing.

The disk layer reuses the serving tier's atomic-rename primitive, so the
cross-process test here is the real thing: two forked writers flushing
segments into one namespace, merged by a single reader.
"""

import json
import multiprocessing

import pytest

from repro.ml.online import (
    OBS_SCHEMA_VERSION,
    Observation,
    ObservationStore,
    observation_namespace,
)

from .helpers import make_obs


class TestWindow:
    def test_window_must_be_positive(self):
        with pytest.raises(ValueError):
            ObservationStore(window=0)

    def test_append_stamps_increasing_seq(self):
        store = ObservationStore(window=8)
        stamped = [store.append(make_obs(time_s=float(i + 1))) for i in range(3)]
        assert [obs.seq for obs in stamped] == [0, 1, 2]
        assert [obs.seq for obs in store.snapshot()] == [0, 1, 2]

    def test_window_bounds_memory_oldest_first_out(self):
        store = ObservationStore(window=4)
        for i in range(6):
            store.append(make_obs(time_s=float(i + 1)))
        window = store.snapshot()
        assert len(store) == 4
        assert [obs.time_s for obs in window] == [3.0, 4.0, 5.0, 6.0]
        # ingested keeps counting past the bound
        assert store.stats()["ingested"] == 6

    def test_probe_counter(self):
        store = ObservationStore(window=8)
        store.append(make_obs())
        store.append(make_obs(probe=True))
        stats = store.stats()
        assert stats["ingested"] == 2 and stats["probes"] == 1


class TestObservation:
    def test_feature_row_caps_load_columns(self):
        obs = make_obs(cpu_util=0.5, gpu_util=0.875, cpu_load=0.75, gpu_load=0.5)
        row = obs.feature_row()
        assert len(row) == 11
        assert row[9] == 1.0          # 0.5 + 0.75 capped
        assert row[10] == 1.0         # 0.875 + 0.5 capped
        idle = make_obs(cpu_util=0.5, gpu_util=0.25).feature_row()
        assert idle[9] == 0.5 and idle[10] == 0.25

    def test_row_round_trip(self):
        obs = make_obs(time_s=1.25, probe=True, seq=7, predicted_score=0.5)
        assert Observation.from_row(json.loads(json.dumps(obs.as_row()))) == obs

    def test_from_row_rejects_other_schema_versions(self):
        row = make_obs().as_row()
        row["v"] = OBS_SCHEMA_VERSION + 1
        with pytest.raises(ValueError):
            Observation.from_row(row)

    def test_cell_key_splits_on_load_bucket(self):
        idle, loaded = make_obs(), make_obs(gpu_load=0.75)
        assert idle.group_key == loaded.group_key
        assert idle.cell_key != loaded.cell_key

    def test_cell_best_includes_probes(self):
        cell = [make_obs(time_s=2.0), make_obs(time_s=0.5, probe=True)]
        assert ObservationStore.cell_best(cell) == 0.5


class TestPersistence:
    def test_flush_then_load_round_trips(self, tmp_path):
        writer = ObservationStore("ns", window=16, root=tmp_path)
        for i in range(5):
            writer.append(make_obs(time_s=float(i + 1)))
        assert writer.flush() == 5
        assert writer.flush() == 0          # nothing pending: no new segment
        assert len(list(writer.dir.glob("seg-*.jsonl"))) == 1

        reader = ObservationStore("ns", window=16, root=tmp_path)
        assert reader.load() == 5
        assert [obs.time_s for obs in reader.snapshot()] == [1.0, 2.0, 3.0, 4.0, 5.0]
        assert reader.stats()["loaded"] == 5 and reader.stats()["skipped"] == 0
        # loaded rows keep their stamps; new appends continue past them
        assert reader.append(make_obs()).seq == 5

    def test_corrupt_lines_are_skipped_and_segment_healed(self, tmp_path):
        writer = ObservationStore("ns", window=16, root=tmp_path)
        writer.append(make_obs(time_s=1.0))
        writer.flush()
        writer.append(make_obs(time_s=2.0))
        writer.flush()
        segments = sorted(writer.dir.glob("seg-*.jsonl"))
        assert len(segments) == 2
        with open(segments[0], "a") as fh:
            fh.write("{not json\n")

        reader = ObservationStore("ns", window=16, root=tmp_path)
        assert reader.load() == 2           # both good rows survive this read
        assert reader.stats()["skipped"] == 1
        # ...but the torn segment is gone: the store healed in place
        assert not segments[0].exists() and segments[1].exists()
        second = ObservationStore("ns", window=16, root=tmp_path)
        assert second.load() == 1
        assert second.snapshot()[0].time_s == 2.0

    def test_clear_disk_removes_segments(self, tmp_path):
        store = ObservationStore("ns", window=4, root=tmp_path)
        store.append(make_obs())
        store.flush()
        store.clear_disk()
        fresh = ObservationStore("ns", window=4, root=tmp_path)
        assert fresh.load() == 0

    def test_namespaces_are_isolated(self, tmp_path):
        a = ObservationStore("ns-a", window=4, root=tmp_path)
        a.append(make_obs())
        a.flush()
        b = ObservationStore("ns-b", window=4, root=tmp_path)
        assert b.load() == 0


def _flush_worker(root, namespace, kernel, count):
    store = ObservationStore(namespace, window=64, root=root)
    for i in range(count):
        store.append(make_obs(kernel=kernel, time_s=float(i + 1)))
    store.flush()


class TestCrossProcess:
    def test_forked_writers_contribute_distinct_segments(self, tmp_path):
        """Sharded workers flush without coordination; a reader merges."""
        ctx = multiprocessing.get_context("fork")
        workers = [
            ctx.Process(target=_flush_worker, args=(tmp_path, "ns", kernel, 3))
            for kernel in ("A", "B")
        ]
        for proc in workers:
            proc.start()
        for proc in workers:
            proc.join(timeout=60)
            assert proc.exitcode == 0
        # PID-stamped names: two processes can never collide on a segment
        assert len(list((tmp_path / "observations" / "ns").glob("seg-*.jsonl"))) == 2

        reader = ObservationStore("ns", window=64, root=tmp_path)
        assert reader.load() == 6
        kernels = {obs.kernel for obs in reader.snapshot()}
        assert kernels == {"A", "B"}


def test_observation_namespace_is_per_platform():
    kaveri = observation_namespace("kaveri")
    assert kaveri.startswith("kaveri-")
    assert kaveri == observation_namespace("kaveri")
    # observations are ground truth about the hardware: the namespace
    # digests the platform, never the model, so they survive promotions
    assert kaveri != observation_namespace("skylake")
