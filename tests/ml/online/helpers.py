"""Shared observation factory and stub estimator for the online suite."""

import numpy as np

from repro.ml.online import Observation


class LinearModel:
    """Deterministic estimator stand-in: scores rows by a weight vector.

    The shadow scorer only ever calls ``predict`` on 11-column feature
    rows, so a fixed linear form is enough to build models with any
    desired (and fully predictable) configuration preference.
    """

    def __init__(self, weights):
        self.weights = np.asarray(weights, dtype=np.float64)

    def predict(self, X):
        return np.asarray(X, dtype=np.float64) @ self.weights


def prefer_gpu(sign=1.0):
    """A model that ranks rows by (signed) column 10 — the GPU column."""
    weights = np.zeros(11)
    weights[10] = sign
    return LinearModel(weights)


def make_obs(
    kernel="K",
    config_index=0,
    cpu_util=0.25,
    gpu_util=0.5,
    time_s=1.0,
    cpu_load=0.0,
    gpu_load=0.0,
    probe=False,
    static=(1.0, 2.0, 3.0, 4.0, 5.0, 6.0),
    global_size=16384,
    **kwargs,
):
    return Observation(
        kernel=kernel,
        static=static,
        work_dim=1,
        global_size=global_size,
        local_size=256,
        cpu_load=cpu_load,
        gpu_load=gpu_load,
        config_index=config_index,
        cpu_util=cpu_util,
        gpu_util=gpu_util,
        time_s=time_s,
        probe=probe,
        source="probe" if probe else "replay",
        **kwargs,
    )
