"""The loop's telemetry contract: every stage reports through repro.obs."""

import numpy as np

from repro.ml.online import OnlineConfig, DriftConfig, OnlineLoop, RefitConfig
from repro.obs import tracer

from .helpers import make_obs

UTILS = np.array([[0.25, 0.125], [0.25, 1.0]])


def test_a_full_step_traces_every_stage():
    base_X = np.array([[1, 2, 3, 4, 5, 6, 1, 16384, 256, u, v]
                       for u, v in UTILS], dtype=np.float64)
    base_y = np.array([1.0, 0.5])
    loop = OnlineLoop(
        model=None,  # replaced below once the refitter exists
        configs_utils=UTILS,
        base_X=base_X,
        base_y=base_y,
        config=OnlineConfig(
            drift=DriftConfig(regret_threshold=0.1, min_observations=2),
            refit=RefitConfig(obs_weight=2),
            promote_margin=0.0,
            min_promote_observations=1,
        ),
    )
    loop.model = loop.refitter.fit_candidate([], UTILS)

    tracer.enable()
    try:
        # two real launches on the slow config + a probe of the fast one
        for _ in range(2):
            loop.ingest(kernel="K", static=(1, 2, 3, 4, 5, 6), work_dim=1,
                        global_size=16384, local_size=256,
                        cpu_load=0.0, gpu_load=0.0,
                        cpu_util=0.25, gpu_util=1.0, time_s=2.0)
        loop.store.append(make_obs(config_index=0, cpu_util=0.25,
                                   gpu_util=0.125, time_s=1.0, probe=True))
        decision = loop.step()

        assert decision.drifted
        counters = dict(tracer.counters)
        assert counters["online.observations"] == 3
        assert counters["online.probes"] == 1
        assert counters["online.drift_checks"] == 1
        assert counters["online.drift_detected"] == 1
        assert counters["online.refits"] == 1
        assert counters["online.shadow_scores"] == 1
        assert counters.get("online.promotions", 0) \
            + counters.get("online.rejections", 0) == 1
        assert "online.kernel_regret" in tracer.histograms
        assert "online.kernel_regret.K" in tracer.histograms
        names = {event.name for event in tracer.events()}
        assert {"online.drift", "online.refit",
                "online.shadow", "online.decision"} <= names
    finally:
        tracer.disable()
        tracer.clear()
