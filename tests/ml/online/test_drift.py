"""Drift detector: per-kernel regret over the sliding window."""

from repro.ml.online import DriftConfig, DriftDetector
from repro.ml.online.drift import observation_regret

from .helpers import make_obs


def slow_cell(kernel="K", n_real=4, regret=0.5, **kw):
    """A cell whose real launches all run ``1 + regret`` times the best."""
    cell = [make_obs(kernel=kernel, config_index=1, time_s=1.0 + regret, **kw)
            for _ in range(n_real)]
    cell.append(make_obs(kernel=kernel, config_index=0, time_s=1.0,
                         probe=True, **kw))
    return cell


def test_empty_window_is_not_drift():
    report = DriftDetector().check([])
    assert not report.drifted
    assert report.kernels == () and report.mean_regret == 0.0


def test_optimal_picks_have_zero_regret():
    cell = [make_obs(time_s=1.0),
            make_obs(config_index=1, time_s=1.5, probe=True)]
    detector = DriftDetector(DriftConfig(regret_threshold=0.01,
                                         min_observations=1))
    report = detector.check(cell)
    assert not report.drifted
    assert report.kernels[0].mean_regret == 0.0


def test_regret_is_measured_against_cell_hindsight_best():
    cell = [make_obs(config_index=1, time_s=2.0),       # the real launch
            make_obs(config_index=0, time_s=1.0, probe=True)]
    assert observation_regret(cell[0], cell) == 1.0     # 2x slower
    # probes define the best but are never scored themselves
    report = DriftDetector(DriftConfig(min_observations=1)).check(cell)
    assert report.kernels[0].observations == 1
    assert report.kernels[0].mean_regret == 1.0


def test_observation_floor_guards_noisy_verdicts():
    window = slow_cell(n_real=4, regret=1.0)
    detector = DriftDetector(DriftConfig(regret_threshold=0.1,
                                         min_observations=5))
    assert not detector.check(window).drifted
    window += slow_cell(n_real=4, regret=1.0, gpu_load=0.25)
    report = detector.check(window)
    assert report.drifted and detector.detections == 1
    assert report.kernels[0].cells == 2


def test_threshold_separates_noise_from_drift():
    window = slow_cell(regret=0.05)
    config = DriftConfig(regret_threshold=0.08, min_observations=1)
    assert not DriftDetector(config).check(window).drifted
    assert DriftDetector(config).check(slow_cell(regret=0.09)).drifted


def test_per_kernel_verdicts_and_weighted_mean():
    window = slow_cell(kernel="BAD", n_real=6, regret=1.0)
    window += [make_obs(kernel="GOOD", time_s=1.0),
               make_obs(kernel="GOOD", config_index=1, time_s=1.25, probe=True)]
    report = DriftDetector(DriftConfig(regret_threshold=0.1,
                                       min_observations=1)).check(window)
    assert report.drifted
    assert report.drifted_kernels() == ["BAD"]
    by_name = {k.kernel: k for k in report.kernels}
    assert by_name["GOOD"].mean_regret == 0.0
    assert by_name["BAD"].max_regret == 1.0
    # 6 launches at regret 1.0 and 1 at 0.0
    assert report.mean_regret == (6 * 1.0) / 7
