"""The loop wired into its hosts: DopiaServer and DopiaRuntime.

The server tests drive the real serving path — launches through a
session, background load planted in the allocation ledger, retraining
triggered via :meth:`DopiaServer.retrain_now` — and assert the two
promises the serving layer makes: a promoted candidate atomically
replaces the predictor *and* invalidates the superseded cache
generation; a rejected candidate leaves serving byte-identical.
"""

import pickle
import time

import numpy as np
import pytest

from repro import cl
from repro.core import DopiaRuntime
from repro.core.dopconfig import config_space, config_utils_matrix
from repro.ml.online import DriftConfig, OnlineConfig, OnlineLoop, RefitConfig
from repro.serve import DopiaServer
from repro.sim import KAVERI, DopSetting
from repro.workloads import SCALED_REAL_FACTORIES
from repro.workloads.applications import AtaxApplication

#: 75 % of the GPU occupied by a co-runner — the golden trace's shift
CO_RUNNER = DopSetting(cpu_threads=0, gpu_fraction=0.75)


def sensitive_config(**overrides):
    """Drift thresholds scaled down to fire within a short unit test."""
    kwargs = dict(
        drift=DriftConfig(regret_threshold=0.2, min_observations=4),
        refit=RefitConfig(obs_weight=8),
        promote_margin=0.002,
        min_promote_observations=4,
    )
    kwargs.update(overrides)
    return OnlineConfig(**kwargs)


def online_server(replay_base, **kwargs):
    _, model, X, y = replay_base
    return DopiaServer(
        KAVERI, model, workers=1, functional=False,
        online=True, online_prior=(X, y), **kwargs,
    )


def serve_some(server, launches=8):
    session = server.session()          # unique name per call
    workload = SCALED_REAL_FACTORIES["GESUMMV"]()
    args = workload.full_args(0)
    return [session.launch(workload, args).result(timeout=120.0)
            for _ in range(launches)]


def picks(results):
    return [(r.prediction.config.cpu_util, r.prediction.config.gpu_util)
            for r in results]


class TestServerPromotion:
    def test_planted_load_drives_a_promotion(self, replay_base):
        server = online_server(replay_base,
                               online_config=sensitive_config())
        try:
            lease = server.ledger.acquire(CO_RUNNER)
            serve_some(server)
            generation = server.cache.generation
            decision = server.retrain_now()
            assert decision is not None and decision.drifted
            assert decision.promoted, decision.reason
            # promote-then-invalidate: the predictor now serves the
            # candidate and every stale-generation cache entry is gone
            assert server.predictor.model is server.online.model
            assert server.cache.generation == generation + 1
            assert server.cache.invalidations >= 1
            server.ledger.release(lease)
        finally:
            server.close()

    def test_observations_flow_from_the_serving_path(self, replay_base):
        server = online_server(replay_base,
                               online_config=sensitive_config())
        try:
            serve_some(server, launches=3)
            window = server.online.store.snapshot()
            assert len(window) == 3
            assert all(obs.source == "serve" for obs in window)
            assert all(obs.time_s > 0 and len(obs.static) == 6
                       for obs in window)
        finally:
            server.close()

    def test_retrain_daemon_promotes_without_manual_calls(self, replay_base):
        server = online_server(replay_base,
                               online_config=sensitive_config(),
                               retrain_interval_s=0.05)
        try:
            lease = server.ledger.acquire(CO_RUNNER)
            serve_some(server)
            deadline = time.monotonic() + 30.0
            while (server.online.promotions == 0
                   and time.monotonic() < deadline):
                time.sleep(0.05)
            assert server.online.promotions >= 1
            assert server.predictor.model is server.online.model
            server.ledger.release(lease)
        finally:
            server.close()


class TestServerRejection:
    def test_rejected_candidate_leaves_serving_byte_identical(self, replay_base):
        """No cache pollution: a rejection changes nothing observable."""
        config = sensitive_config(promote_margin=1e6)   # unreachable bar
        server = online_server(replay_base, online_config=config)
        try:
            lease = server.ledger.acquire(CO_RUNNER)
            incumbent = server.predictor.model
            before = pickle.dumps(picks(serve_some(server)))
            generation = server.cache.generation
            decision = server.retrain_now()
            assert decision is not None and decision.drifted
            assert not decision.promoted
            assert decision.reason == "candidate-not-better"
            # the incumbent, the cache generation, and the cached
            # decisions all survive untouched
            assert server.predictor.model is incumbent
            assert server.cache.generation == generation
            assert server.cache.invalidations == 0
            after = pickle.dumps(picks(serve_some(server)))
            assert before == after
            server.ledger.release(lease)
        finally:
            server.close()


class TestRuntimeIngestion:
    def test_interposed_launches_feed_the_observation_store(self, replay_base):
        _, model, X, y = replay_base
        runtime = DopiaRuntime(KAVERI, model)
        loop = OnlineLoop(
            model=model,
            configs_utils=config_utils_matrix(config_space(KAVERI)),
            base_X=X, base_y=y,
        )
        runtime.attach_online(loop)
        with cl.interposed(runtime):
            result = AtaxApplication(wg=16).run(n=48)
        assert result.verified
        window = loop.store.snapshot()
        assert len(window) == len(runtime.launches) == 2
        for obs, record in zip(window, runtime.launches):
            assert obs.source == "runtime"
            assert obs.static == record.static and len(obs.static) == 6
            assert obs.global_size == record.global_size > 0
            assert obs.time_s == pytest.approx(record.result.time_s)
            cpu_util, gpu_util = loop.utils[obs.config_index]
            assert (cpu_util, gpu_util) == (
                record.prediction.config.cpu_util,
                record.prediction.config.gpu_util,
            )

    def test_runtime_without_a_loop_is_unchanged(self, replay_base):
        _, model, _, _ = replay_base
        runtime = DopiaRuntime(KAVERI, model)
        assert runtime.online is None
        with cl.interposed(runtime):
            assert AtaxApplication(wg=16).run(n=48).verified
        assert len(runtime.launches) == 2


def test_close_persists_an_explicit_observation_store(replay_base, tmp_path):
    """A server given a store publishes its window on close, so a later
    ``dopia retrain`` (or another server) can learn from this session."""
    from repro.ml.online import ObservationStore

    store = ObservationStore("serve-ns", window=64, root=tmp_path)
    server = online_server(replay_base, observation_store=store)
    try:
        serve_some(server, launches=3)
    finally:
        server.close()
    reader = ObservationStore("serve-ns", window=64, root=tmp_path)
    assert reader.load() == 3
    assert all(obs.source == "serve" for obs in reader.snapshot())


def test_online_prior_defaults_to_empty(replay_base):
    """A server can go online with no pretrained prior at all."""
    _, model, _, _ = replay_base
    server = DopiaServer(KAVERI, model, workers=1, functional=False,
                         online=True)
    try:
        assert server.online is not None
        assert server.online.refitter.base_X.shape == (0, 11)
        assert isinstance(server.online.refitter.base_y, np.ndarray)
    finally:
        server.close()
