"""Property suite: the promotion gate is safe on *any* observation window.

Hypothesis drives randomly shaped windows (cells over the real 44-config
Kaveri space, arbitrary positive times, probe/real mixes) and arbitrary
linear models.  Whatever the evidence looks like, the gate must never
promote a candidate whose shadow regret exceeds the incumbent's — that
is the invariant that makes the online loop monotone.
"""

from hypothesis import given, settings, strategies as st

from repro.core.dopconfig import config_space, config_utils_matrix
from repro.ml.online import PromotionGate, ShadowScorer
from repro.sim import KAVERI

from .helpers import LinearModel, make_obs

UTILS = config_utils_matrix(config_space(KAVERI))
LOADS = st.sampled_from([0.0, 0.25, 0.5, 0.75])
TIMES = st.floats(min_value=0.05, max_value=10.0,
                  allow_nan=False, allow_infinity=False)
WEIGHTS = st.lists(st.floats(min_value=-2.0, max_value=2.0, allow_nan=False),
                   min_size=11, max_size=11)


@st.composite
def windows(draw):
    observations = []
    for _ in range(draw(st.integers(1, 4))):
        kernel = draw(st.sampled_from(["K0", "K1"]))
        scale = draw(st.integers(1, 4))
        cpu_load, gpu_load = draw(LOADS), draw(LOADS)
        indices = draw(st.lists(st.integers(0, len(UTILS) - 1),
                                min_size=1, max_size=8, unique=True))
        for index in indices:
            observations.append(make_obs(
                kernel=kernel,
                static=(float(scale), 2.0, 3.0, 4.0, 5.0, 6.0),
                global_size=1024 * scale,
                cpu_load=cpu_load,
                gpu_load=gpu_load,
                config_index=index,
                cpu_util=float(UTILS[index, 0]),
                gpu_util=float(UTILS[index, 1]),
                time_s=draw(TIMES),
                probe=draw(st.booleans()),
            ))
    return observations


@settings(max_examples=60, deadline=None)
@given(windows(), WEIGHTS, WEIGHTS, st.floats(0.0, 0.5, allow_nan=False))
def test_gate_never_promotes_a_worse_candidate(window, w_inc, w_cand, margin):
    gate = PromotionGate(margin=margin, min_observations=1)
    report = gate.decide(ShadowScorer(UTILS), LinearModel(w_inc),
                         LinearModel(w_cand), window)
    if report.promote:
        # promote implies the candidate cleared the incumbent by the margin
        assert report.candidate_regret <= (
            report.incumbent_regret - margin + 1e-12)
    # the contrapositive invariant, stated directly: a candidate with
    # strictly more window regret can never go live
    if report.candidate_regret > report.incumbent_regret:
        assert not report.promote


@settings(max_examples=40, deadline=None)
@given(windows(), WEIGHTS, WEIGHTS)
def test_widening_the_margin_only_ever_blocks(window, w_inc, w_cand):
    scorer = ShadowScorer(UTILS)
    incumbent, candidate = LinearModel(w_inc), LinearModel(w_cand)
    strict = PromotionGate(margin=0.25, min_observations=1).decide(
        scorer, incumbent, candidate, window)
    lax = PromotionGate(margin=0.0, min_observations=1).decide(
        scorer, incumbent, candidate, window)
    if strict.promote:
        assert lax.promote


@settings(max_examples=40, deadline=None)
@given(windows(), WEIGHTS, WEIGHTS)
def test_shadow_decisions_are_deterministic(window, w_inc, w_cand):
    """Scoring is pure inference: same window, same models, same report."""
    gate = PromotionGate(margin=0.01, min_observations=1)
    scorer = ShadowScorer(UTILS)
    incumbent, candidate = LinearModel(w_inc), LinearModel(w_cand)
    first = gate.decide(scorer, incumbent, candidate, window)
    second = gate.decide(scorer, incumbent, candidate, window)
    assert first == second
