"""Session fixtures for the online-retraining suite.

The golden-trace replay is deterministic but not free (it trains the base
model and simulates every launch), so the trained base and the first
replay report are session-scoped and shared by every test that inspects
them.
"""

import pytest

from repro.ml.online import ReplayConfig, run_replay, train_base


@pytest.fixture(scope="session")
def replay_base():
    """(config, incumbent model, prior X, prior y) for the golden trace."""
    config = ReplayConfig()
    model, X, y = train_base(config)
    return config, model, X, y


@pytest.fixture(scope="session")
def golden_report(replay_base):
    config, model, X, y = replay_base
    return run_replay(config, model=model, base_X=X, base_y=y)
