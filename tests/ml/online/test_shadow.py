"""Shadow scorer and promotion gate: replaying the serving decision rule.

All tests use a two-configuration universe — ``utils[0] = (0.25, 0.125)``
(small GPU share) and ``utils[1] = (0.25, 1.0)`` (whole GPU) — and stub
linear models whose preference over the GPU column is explicit, so every
pick and every regret is computable by hand.
"""

import numpy as np
import pytest

from repro.ml.online import PromotionGate, ShadowScorer
from repro.ml.online.shadow import select_among

from .helpers import LinearModel, make_obs, prefer_gpu

UTILS = np.array([[0.25, 0.125], [0.25, 1.0]])


def cell(fast_real=True, gpu_load=0.0, kernel="K", n_real=1):
    """One cell: config 0 runs in 1s, config 1 in 2s.

    The real launches sit on config 0 (the right pick) or config 1 (the
    wrong one); the other configuration is covered by a probe.
    """
    real_index = 0 if fast_real else 1
    real_time = 1.0 if fast_real else 2.0
    obs = [make_obs(kernel=kernel, config_index=real_index,
                    cpu_util=UTILS[real_index, 0], gpu_util=UTILS[real_index, 1],
                    time_s=real_time, gpu_load=gpu_load)
           for _ in range(n_real)]
    probe_index = 1 - real_index
    obs.append(make_obs(kernel=kernel, config_index=probe_index,
                        cpu_util=UTILS[probe_index, 0],
                        gpu_util=UTILS[probe_index, 1],
                        time_s=2.0 if fast_real else 1.0,
                        gpu_load=gpu_load, probe=True))
    return obs


class TestSelectAmong:
    ROWS = np.array([[0.0] * 9 + [0.25, 0.125],
                     [0.0] * 9 + [0.25, 1.0]])

    def test_idle_is_plain_argmax(self):
        assert select_among(prefer_gpu(+1), self.ROWS, UTILS, 0.0, 0.0) == 1
        assert select_among(prefer_gpu(-1), self.ROWS, UTILS, 0.0, 0.0) == 0

    def test_load_masks_infeasible_configurations(self):
        # 75 % background GPU load: only config 0 (gpu_util 0.125) fits,
        # so even the GPU-hungry model is forced onto it
        assert select_among(prefer_gpu(+1), self.ROWS, UTILS, 0.0, 0.75) == 0

    def test_all_infeasible_falls_back_to_unmasked_argmax(self):
        heavy = np.array([[0.5, 0.5], [0.25, 1.0]])
        assert select_among(prefer_gpu(+1), self.ROWS, heavy, 0.75, 0.75) == 1


class TestShadowScorer:
    def test_wrong_pick_pays_the_cell_regret(self):
        scorer = ShadowScorer(UTILS)
        regret, cells, weight = scorer.score(prefer_gpu(+1), cell(fast_real=True))
        assert (regret, cells, weight) == (1.0, 1, 1)   # picked 2s over 1s
        regret, _, _ = scorer.score(prefer_gpu(-1), cell(fast_real=True))
        assert regret == 0.0

    def test_scoring_respects_the_feasibility_mask(self):
        # under load the hungry model's pick is masked to the feasible
        # config, which is also the best: no regret despite the bad taste
        scorer = ShadowScorer(UTILS)
        regret, _, _ = scorer.score(prefer_gpu(+1), cell(gpu_load=0.75))
        assert regret == 0.0

    def test_probe_only_cells_carry_no_weight(self):
        window = [make_obs(config_index=0, cpu_util=0.25, gpu_util=0.125,
                           time_s=1.0, probe=True)]
        assert ShadowScorer(UTILS).score(prefer_gpu(+1), window) == (0.0, 0, 0)

    def test_cells_are_weighted_by_real_launches(self):
        # 3 launches in the mispicked cell, 1 in the clean one (the cells
        # differ by load bucket): mean regret = 3/4
        window = cell(fast_real=True, n_real=3) + cell(gpu_load=0.25, n_real=1)
        regret, cells, weight = ShadowScorer(UTILS).score(prefer_gpu(+1), window)
        assert cells == 2 and weight == 4
        assert regret == pytest.approx(0.75)

    def test_duplicate_configs_keep_the_fastest_measurement(self):
        window = cell(fast_real=True)
        # a slower duplicate measurement of config 0 must not change the pick
        window.append(make_obs(config_index=0, cpu_util=0.25, gpu_util=0.125,
                               time_s=5.0, probe=True))
        regret, _, _ = ShadowScorer(UTILS).score(prefer_gpu(-1), window)
        assert regret == 0.0


class TestPromotionGate:
    def test_negative_margin_is_rejected_at_construction(self):
        with pytest.raises(ValueError):
            PromotionGate(margin=-0.01)

    def test_insufficient_evidence_never_promotes(self):
        gate = PromotionGate(margin=0.0, min_observations=5)
        report = gate.decide(ShadowScorer(UTILS), prefer_gpu(+1),
                             prefer_gpu(-1), cell())
        assert not report.promote and report.reason == "insufficient-evidence"

    def test_better_candidate_is_promoted(self):
        gate = PromotionGate(margin=0.1, min_observations=1)
        report = gate.decide(ShadowScorer(UTILS), prefer_gpu(+1),
                             prefer_gpu(-1), cell())
        assert report.promote and report.reason == "candidate-better"
        assert report.improvement == pytest.approx(1.0)

    def test_margin_blocks_marginal_candidates(self):
        # both models pick identically: improvement 0 < margin
        gate = PromotionGate(margin=0.1, min_observations=1)
        report = gate.decide(ShadowScorer(UTILS), prefer_gpu(-1),
                             LinearModel(-np.eye(11)[10] * 2), cell())
        assert not report.promote and report.reason == "candidate-not-better"

    def test_worse_candidate_is_never_promoted(self):
        gate = PromotionGate(margin=0.0, min_observations=1)
        report = gate.decide(ShadowScorer(UTILS), prefer_gpu(-1),
                             prefer_gpu(+1), cell())
        assert not report.promote
        assert report.candidate_regret > report.incumbent_regret
