"""Golden-trace replay: the retraining loop proven end to end.

One deterministic scripted scenario (idle traffic, then a planted 75 %
GPU co-runner) must produce the full story: clean idle phase, drift
detected shortly after the shift, exactly one promotion, regret collapse,
and bit-identical decisions when replayed.
"""

import json
from pathlib import Path

from repro.ml.online import REPLAY_SCHEMA_VERSION, run_replay

BENCH_PATH = Path(__file__).resolve().parents[3] / "BENCH_retrain.json"


def test_golden_replay_passes_all_checks(golden_report):
    assert golden_report["schema"] == REPLAY_SCHEMA_VERSION
    assert golden_report["pass"], golden_report["checks"]


def test_idle_phase_is_clean(golden_report, replay_base):
    config = replay_base[0]
    assert golden_report["idle_regret"] <= config.drift_threshold
    pre_shift = [d for d in golden_report["decisions"]
                 if d["launch"] <= config.shift_at]
    assert pre_shift and all(d["reason"] == "no-drift" for d in pre_shift)


def test_drift_detected_shortly_after_the_shift(golden_report, replay_base):
    config = replay_base[0]
    detected = golden_report["drift_detected_at"]
    assert detected is not None
    # within two check periods of the planted co-runner's arrival
    assert config.shift_at < detected <= config.shift_at + 2 * config.check_every


def test_candidate_promoted_exactly_once(golden_report):
    assert golden_report["promotions"] == 1
    assert golden_report["generation"] == 1
    assert golden_report["promoted_at"] == golden_report["drift_detected_at"]
    promoted = [d for d in golden_report["decisions"] if d["promoted"]]
    assert len(promoted) == 1
    # later drift checks refit, shadow-score, and reject near-identical
    # candidates — the margin keeps the loop quiescent after it converges
    after = [d for d in golden_report["decisions"]
             if d["launch"] > golden_report["promoted_at"] and d["drifted"]]
    assert all(d["reason"] == "candidate-not-better" for d in after)


def test_promotion_collapses_regret(golden_report):
    assert golden_report["pre_promotion_regret"] > 0.5
    assert golden_report["post_promotion_regret"] < 0.01
    assert golden_report["regret_improvement"] > 0.5


def test_replay_is_bit_stable(golden_report, replay_base):
    """Two replays from the same base produce identical decisions."""
    config, model, X, y = replay_base
    second = run_replay(config, model=model, base_X=X, base_y=y)
    assert second["chosen"] == golden_report["chosen"]
    assert second["decisions"] == golden_report["decisions"]
    assert second["drift_detected_at"] == golden_report["drift_detected_at"]
    assert second["promoted_at"] == golden_report["promoted_at"]
    assert second["pre_promotion_regret"] == golden_report["pre_promotion_regret"]


def test_committed_report_matches_a_live_replay(golden_report):
    """BENCH_retrain.json is the committed golden trace, not a stale one."""
    committed = json.loads(BENCH_PATH.read_text())
    assert committed["schema"] == REPLAY_SCHEMA_VERSION
    assert committed["pass"] and committed["checks"]["bit_stable"]
    assert committed["drift_detected_at"] == golden_report["drift_detected_at"]
    assert committed["promoted_at"] == golden_report["promoted_at"]
    assert committed["chosen"] == golden_report["chosen"]
