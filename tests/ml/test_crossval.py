"""Unit tests for cross-validation utilities and tree code generation."""

import numpy as np
import pytest

from repro.ml import (
    DecisionTreeRegressor,
    LinearRegression,
    cross_val_predict,
    evaluate_c_tree,
    grouped_kfold_indices,
    kfold_indices,
    leave_one_group_out,
    mean_absolute_error,
    r2_score,
    tree_to_c,
)


class TestKFold:
    def test_partitions_cover_everything_once(self):
        seen = np.zeros(100, dtype=int)
        for train, test in kfold_indices(100, 10):
            seen[test] += 1
            assert len(np.intersect1d(train, test)) == 0
        assert np.all(seen == 1)

    def test_64_folds_of_1224(self):
        folds = list(kfold_indices(1224, 64))
        assert len(folds) == 64
        sizes = [len(test) for _, test in folds]
        assert min(sizes) >= 19 and max(sizes) <= 20

    def test_too_many_folds_rejected(self):
        with pytest.raises(ValueError):
            list(kfold_indices(5, 10))

    def test_deterministic_for_seed(self):
        a = [test.tolist() for _, test in kfold_indices(50, 5, rng=3)]
        b = [test.tolist() for _, test in kfold_indices(50, 5, rng=3)]
        assert a == b


class TestGroupedKFold:
    def test_groups_never_straddle_folds(self):
        groups = np.repeat(np.arange(20), 5)
        for train, test in grouped_kfold_indices(groups, 4):
            assert set(groups[train]) & set(groups[test]) == set()

    def test_every_group_tested_once(self):
        groups = np.repeat(np.arange(12), 3)
        tested = []
        for _, test in grouped_kfold_indices(groups, 6):
            tested.extend(np.unique(groups[test]).tolist())
        assert sorted(tested) == list(range(12))

    def test_leave_one_group_out(self):
        groups = ["a", "a", "b", "c", "c"]
        train, test = leave_one_group_out(groups, "c")
        assert test.tolist() == [3, 4]
        assert train.tolist() == [0, 1, 2]

    def test_missing_group_rejected(self):
        with pytest.raises(ValueError):
            leave_one_group_out(["a", "b"], "z")


class TestCrossValPredict:
    def test_every_row_predicted(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(size=(120, 3))
        y = X @ np.array([1.0, -2.0, 0.5])
        preds = cross_val_predict(LinearRegression, X, y, k=6)
        assert r2_score(y, preds) > 0.99

    def test_grouped_variant(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(size=(60, 2))
        y = X[:, 0]
        groups = np.repeat(np.arange(12), 5)
        preds = cross_val_predict(LinearRegression, X, y, k=4, groups=groups)
        assert preds.shape == y.shape


class TestMetrics:
    def test_r2_perfect(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2_score(y, y) == 1.0

    def test_r2_of_mean_predictor_is_zero(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2_score(y, np.full(3, 2.0)) == pytest.approx(0.0)

    def test_mae(self):
        assert mean_absolute_error([1.0, 2.0], [2.0, 4.0]) == 1.5


class TestTreeCodegen:
    def fit_tree(self, seed=0, depth=5):
        rng = np.random.default_rng(seed)
        X = rng.uniform(-1, 1, size=(300, 4))
        y = np.sign(X[:, 0]) + X[:, 1]
        return DecisionTreeRegressor(max_depth=depth).fit(X, y), X

    def test_generated_code_is_c_shaped(self):
        tree, _ = self.fit_tree()
        code = tree_to_c(tree)
        assert code.startswith("double dopia_predict(const double *features)")
        assert code.count("return") >= 1

    def test_feature_name_comments(self):
        tree, _ = self.fit_tree()
        code = tree_to_c(tree, feature_names=["alpha", "beta", "gamma", "delta"])
        assert "/* features[0] = alpha */" in code

    def test_generated_code_matches_python_tree(self):
        tree, X = self.fit_tree()
        code = tree_to_c(tree)
        py = tree.predict(X[:50])
        for row, expected in zip(X[:50], py):
            assert evaluate_c_tree(code, row) == pytest.approx(expected, abs=1e-12)

    def test_single_leaf_tree(self):
        X = np.zeros((10, 2))
        tree = DecisionTreeRegressor().fit(X, np.full(10, 4.25))
        code = tree_to_c(tree)
        assert evaluate_c_tree(code, [0.0, 0.0]) == 4.25

    def test_unfitted_tree_rejected(self):
        with pytest.raises(RuntimeError):
            tree_to_c(DecisionTreeRegressor())
