"""Unit tests for the AST-to-source printer."""


from repro.frontend import parse_kernel
from repro.transform import print_kernel
from repro.transform.rewriter import SourcePrinter


def round_trip(source: str) -> str:
    return print_kernel(parse_kernel(source))


class TestExpressionPrinting:
    def expr(self, text: str) -> str:
        source = f"__kernel void k(int a, int b, int c) {{ int r = {text}; }}"
        kernel = parse_kernel(source)
        init = kernel.body.body[0].decls[0].init
        return SourcePrinter().expr(init)

    def test_precedence_parentheses_preserved(self):
        assert self.expr("(a + b) * c") == "(a + b) * c"

    def test_redundant_parentheses_dropped(self):
        assert self.expr("(a * b) + c") == "a * b + c"

    def test_right_associative_assignment(self):
        assert self.expr("a = b = c") == "a = b = c"

    def test_nested_ternary(self):
        text = self.expr("a ? b : c ? a : b")
        assert parse_kernel(
            f"__kernel void k(int a, int b, int c) {{ int r = {text}; }}"
        )

    def test_unary_binding(self):
        assert self.expr("-a * b") == "-a * b"
        assert self.expr("-(a * b)") == "-(a * b)"

    def test_index_chain(self):
        source = (
            "__kernel void k(__global float* A, int i, int j)"
            "{ float r = A[i][j]; }"
        )
        kernel = parse_kernel(source)
        init = kernel.body.body[0].decls[0].init
        assert SourcePrinter().expr(init) == "A[i][j]"

    def test_modulo_and_shift(self):
        assert self.expr("a % b << c") == "a % b << c"
        assert self.expr("a % (b << c)") == "a % (b << c)"


class TestStatementPrinting:
    def test_for_loop_shape(self):
        text = round_trip(
            "__kernel void k(int n) { for (int i = 0; i < n; i++) { n = n; } }"
        )
        assert "for (int i = 0; i < n; i++)" in text

    def test_if_else_shape(self):
        text = round_trip(
            "__kernel void k(int n) { if (n > 0) n = 1; else n = 2; }"
        )
        assert "if (n > 0)" in text and "else" in text

    def test_local_array_declaration(self):
        text = round_trip(
            "__kernel void k() { __local int s[2]; s[0] = 1; barrier(1); }"
        )
        assert "__local int s[2];" in text

    def test_do_while(self):
        text = round_trip(
            "__kernel void k(int n) { int i = 0; do { i++; } while (i < n); }"
        )
        assert text.count("while (i < n);") == 1

    def test_break_continue_return(self):
        text = round_trip(
            "__kernel void k(int n)"
            "{ for (;;) { if (n) break; if (!n) continue; } return; }"
        )
        assert "break;" in text and "continue;" in text and "return;" in text

    def test_qualified_parameters(self):
        text = round_trip(
            "__kernel void k(__global const float* A, __local int* s, uint n) { }"
        )
        assert "__global const float* A" in text
        assert "__local int* s" in text

    def test_float_literals_keep_suffix(self):
        text = round_trip("__kernel void k(__global float* A) { A[0] = 1.5f; }")
        assert "1.5f" in text

    def test_idempotence_on_paper_kernels(self):
        from repro.workloads.polybench import GESUMMV_SRC, SYR2K_SRC

        for source in (GESUMMV_SRC, SYR2K_SRC):
            once = round_trip(source)
            assert round_trip(once) == once
