"""Tests for the malleable GPU transformation (Figures 5/6).

The central property (paper §6, design decision D2): for *any* throttle
setting, the transformed kernel computes exactly the same buffers as the
original.
"""

import numpy as np
import pytest

from repro.frontend import parse_kernel
from repro.interp import KernelExecutor, NDRange
from repro.transform import (
    ALLOC_PARAM,
    MOD_PARAM,
    TransformError,
    make_malleable,
    throttle_settings,
)

SAXPY = """
__kernel void saxpy(__global float* X, __global float* Y, float a, int n)
{
    int i = get_global_id(0);
    if (i < n) Y[i] = a * X[i] + Y[i];
}
"""

KERNEL_2D = """
__kernel void scale2d(__global float* A, int nx, int ny)
{
    int x = get_global_id(0);
    int y = get_global_id(1);
    if ((x < nx) && (y < ny)) A[y * nx + x] = A[y * nx + x] * 2.0f + y;
}
"""

LOOPY = """
__kernel void rowsum(__global float* A, __global float* S, int n, int m)
{
    int i = get_global_id(0);
    if (i < n) {
        float acc = 0.0f;
        for (int j = 0; j < m; j++) acc = acc + A[i * m + j];
        S[i] = acc;
    }
}
"""


def run_original(source, args, ndrange):
    kernel = parse_kernel(source)
    from repro.frontend import analyze_kernel

    executor = KernelExecutor(analyze_kernel(kernel), args, ndrange)
    executor.run()


class TestTransformStructure:
    def test_parameters_appended(self):
        malleable = make_malleable(SAXPY, work_dim=1)
        names = [p.name for p in malleable.kernel.params]
        assert names[-2:] == [MOD_PARAM, ALLOC_PARAM]

    def test_source_contains_throttle_guard(self):
        malleable = make_malleable(SAXPY, work_dim=1)
        assert f"get_local_id(0) % {MOD_PARAM} < {ALLOC_PARAM}" in malleable.source

    def test_source_contains_worklist_loop(self):
        malleable = make_malleable(SAXPY, work_dim=1)
        assert "atomic_inc(local_worklist)" in malleable.source
        assert "barrier(1)" in malleable.source

    def test_transformed_kernel_reparses(self):
        malleable = make_malleable(SAXPY, work_dim=1)
        assert malleable.info.uses_barrier
        assert malleable.info.uses_atomics

    def test_global_id_rewritten(self):
        malleable = make_malleable(SAXPY, work_dim=1)
        # inside the drain loop the id comes from dynamic_work
        assert "get_global_id(0)" not in malleable.source
        assert "dynamic_work" in malleable.source

    def test_barriered_kernel_rejected(self):
        with pytest.raises(TransformError):
            make_malleable(
                "__kernel void f(__global float* A)"
                "{ barrier(1); A[get_global_id(0)] = 1.0f; }",
                work_dim=1,
            )

    def test_reserved_name_clash_rejected(self):
        with pytest.raises(TransformError):
            make_malleable(
                "__kernel void f(__global float* A, int dop_gpu_mod)"
                "{ A[get_global_id(0)] = dop_gpu_mod; }",
                work_dim=1,
            )

    def test_bad_work_dim_rejected(self):
        with pytest.raises(TransformError):
            make_malleable(SAXPY, work_dim=0)


class TestSemanticEquivalence:
    @pytest.mark.parametrize("mod,alloc", [(1, 1), (2, 1), (4, 3), (8, 1), (16, 5), (64, 1)])
    def test_saxpy_equivalent_under_throttle(self, mod, alloc):
        n = 96
        x = np.arange(n, dtype=np.float64)
        expected = np.ones(n)
        run_original(SAXPY, {"X": x, "Y": expected, "a": 3.0, "n": n}, NDRange(n, 32))

        actual = np.ones(n)
        malleable = make_malleable(SAXPY, work_dim=1)
        executor = KernelExecutor(
            malleable.info,
            {"X": x, "Y": actual, "a": 3.0, "n": n, MOD_PARAM: mod, ALLOC_PARAM: alloc},
            NDRange(n, 32),
        )
        executor.run()
        assert np.array_equal(actual, expected)

    @pytest.mark.parametrize("mod,alloc", [(1, 1), (3, 1), (8, 5)])
    def test_2d_kernel_equivalent(self, mod, alloc):
        nx, ny = 16, 8
        expected = np.arange(nx * ny, dtype=np.float64)
        run_original(KERNEL_2D, {"A": expected, "nx": nx, "ny": ny}, NDRange((nx, ny), (4, 4)))

        actual = np.arange(nx * ny, dtype=np.float64)
        malleable = make_malleable(KERNEL_2D, work_dim=2)
        executor = KernelExecutor(
            malleable.info,
            {"A": actual, "nx": nx, "ny": ny, MOD_PARAM: mod, ALLOC_PARAM: alloc},
            NDRange((nx, ny), (4, 4)),
        )
        executor.run()
        assert np.array_equal(actual, expected)

    def test_loop_kernel_equivalent(self):
        n, m = 32, 8
        a = np.arange(n * m, dtype=np.float64)
        expected = np.zeros(n)
        run_original(LOOPY, {"A": a, "S": expected, "n": n, "m": m}, NDRange(n, 8))

        actual = np.zeros(n)
        malleable = make_malleable(LOOPY, work_dim=1)
        KernelExecutor(
            malleable.info,
            {"A": a, "S": actual, "n": n, "m": m, MOD_PARAM: 4, ALLOC_PARAM: 1},
            NDRange(n, 8),
        ).run()
        assert np.array_equal(actual, expected)

    def test_3d_kernel_equivalent(self):
        source = """
        __kernel void cube(__global float* A, int nx, int ny, int nz)
        {
            int x = get_global_id(0);
            int y = get_global_id(1);
            int z = get_global_id(2);
            if ((x < nx) && (y < ny) && (z < nz))
                A[(z * ny + y) * nx + x] += x + 10 * y + 100 * z;
        }
        """
        n = 4
        nd = NDRange((n, n, n), (2, 2, 2))
        expected = np.zeros(n ** 3)
        run_original(source, {"A": expected, "nx": n, "ny": n, "nz": n}, nd)
        actual = np.zeros(n ** 3)
        malleable = make_malleable(source, work_dim=3)
        KernelExecutor(
            malleable.info,
            {"A": actual, "nx": n, "ny": n, "nz": n, MOD_PARAM: 3, ALLOC_PARAM: 1},
            nd,
        ).run()
        assert np.array_equal(actual, expected)

    def test_equivalent_with_global_offset(self):
        """Algorithm 1 pushes chunks to the GPU via the global offset."""
        n = 64
        expected = np.ones(n)
        run_original(
            SAXPY,
            {"X": np.arange(n, dtype=float), "Y": expected, "a": 2.0, "n": n},
            NDRange(n, 16),
        )
        actual = np.ones(n)
        malleable = make_malleable(SAXPY, work_dim=1)
        args = {
            "X": np.arange(n, dtype=float), "Y": actual, "a": 2.0, "n": n,
            MOD_PARAM: 2, ALLOC_PARAM: 1,
        }
        # execute [0, 32) and [32, 64) as two offset launches
        KernelExecutor(malleable.info, args, NDRange(32, 16, offset=(0,))).run()
        KernelExecutor(malleable.info, args, NDRange(32, 16, offset=(32,))).run()
        assert np.array_equal(actual, expected)


class TestThrottleSettings:
    def test_exact_eighths(self):
        assert throttle_settings(64, 1.0) == (1, 1)
        assert throttle_settings(64, 0.5) == (2, 1)
        assert throttle_settings(64, 0.375) == (8, 3)
        assert throttle_settings(64, 0.125) == (8, 1)

    def test_fraction_recovered(self):
        for k in range(1, 9):
            mod, alloc = throttle_settings(64, k / 8)
            assert abs(alloc / mod - k / 8) < 1e-9

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            throttle_settings(64, 0.0)
        with pytest.raises(ValueError):
            throttle_settings(64, 1.5)

    def test_alloc_never_exceeds_mod(self):
        for fraction in np.linspace(0.01, 1.0, 57):
            mod, alloc = throttle_settings(64, float(fraction))
            assert 1 <= alloc <= mod
