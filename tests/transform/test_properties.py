"""Property-based tests (hypothesis) for the code transformations.

Design decision D2 of DESIGN.md: the malleable transformation must be
semantics-preserving for *every* kernel shape, ND-range, and throttle
setting — randomised here over a small kernel family that covers guards,
loops, strides, float/int mixes, and 1-D/2-D launches.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.frontend import analyze_kernel, parse_kernel
from repro.interp import KernelExecutor, NDRange
from repro.transform import ALLOC_PARAM, MOD_PARAM, make_cpu_kernel, make_malleable
from repro.transform.cpu_codegen import WORKLIST_PARAM
from repro.transform.rewriter import print_kernel

KERNEL_TEMPLATE = """
__kernel void k(__global float* A, __global float* B, int n, int m)
{{
    int i = get_global_id(0);
    if (i < n) {{
        {body}
    }}
}}
"""

BODIES = [
    "B[i] = A[i] * 2.0f + 1.0f;",
    "B[i] = A[n - 1 - i];",
    "float s = 0.0f; for (int j = 0; j < m; j++) s = s + A[i * m + j]; B[i] = s;",
    "B[i] = (i % 2 == 0) ? A[i] : -A[i];",
    "int acc = 0; for (int j = 0; j < m; j++) acc = acc + j * i; B[i] = acc;",
    "B[i] = A[(i * 3) % n];",
]


@st.composite
def launch_cases(draw):
    body = draw(st.sampled_from(BODIES))
    wg = draw(st.sampled_from([4, 8, 16]))
    groups = draw(st.integers(min_value=1, max_value=4))
    n_extra = draw(st.integers(min_value=0, max_value=3))
    mod = draw(st.integers(min_value=1, max_value=wg))
    alloc = draw(st.integers(min_value=1, max_value=mod))
    m = draw(st.integers(min_value=1, max_value=5))
    total = wg * groups
    return body, wg, total, max(total - n_extra, 1), mod, alloc, m


class TestMalleableProperty:
    @settings(max_examples=40, deadline=None)
    @given(launch_cases())
    def test_transformed_equals_original(self, case):
        body, wg, total, n, mod, alloc, m = case
        source = KERNEL_TEMPLATE.format(body=body)
        rng = np.random.default_rng(hash((body, wg, total, n)) & 0xFFFF)
        a = rng.uniform(-4, 4, size=max(total * m, total))

        expected = np.zeros(total)
        info = analyze_kernel(parse_kernel(source))
        KernelExecutor(
            info, {"A": a, "B": expected, "n": n, "m": m}, NDRange(total, wg)
        ).run()

        actual = np.zeros(total)
        malleable = make_malleable(source, work_dim=1)
        KernelExecutor(
            malleable.info,
            {"A": a, "B": actual, "n": n, "m": m, MOD_PARAM: mod, ALLOC_PARAM: alloc},
            NDRange(total, wg),
        ).run()
        assert np.array_equal(actual, expected)


class TestCpuVariantProperty:
    @settings(max_examples=25, deadline=None)
    @given(launch_cases(), st.integers(min_value=1, max_value=5))
    def test_cpu_variant_equals_original(self, case, threads):
        body, wg, total, n, _, _, m = case
        source = KERNEL_TEMPLATE.format(body=body)
        rng = np.random.default_rng(hash((body, wg, total)) & 0xFFFF)
        a = rng.uniform(-4, 4, size=max(total * m, total))

        expected = np.zeros(total)
        info = analyze_kernel(parse_kernel(source))
        nd = NDRange(total, wg)
        KernelExecutor(info, {"A": a, "B": expected, "n": n, "m": m}, nd).run()

        actual = np.zeros(total)
        cpu = make_cpu_kernel(source, work_dim=1)
        args = {"A": a, "B": actual, "n": n, "m": m,
                WORKLIST_PARAM: np.zeros(1, dtype=np.int64)}
        args.update(cpu.scheduler_args(nd.total_groups, nd.local_size, nd.num_groups))
        KernelExecutor(cpu.info, args, NDRange(threads, 1)).run()
        assert np.array_equal(actual, expected)


class TestPrinterRoundTrip:
    @settings(max_examples=30, deadline=None)
    @given(st.sampled_from(BODIES))
    def test_print_parse_print_fixpoint(self, body):
        source = KERNEL_TEMPLATE.format(body=body)
        once = print_kernel(parse_kernel(source))
        twice = print_kernel(parse_kernel(once))
        assert once == twice

    @settings(max_examples=20, deadline=None)
    @given(st.sampled_from(BODIES), st.sampled_from([4, 8]))
    def test_printed_source_executes_identically(self, body, wg):
        source = KERNEL_TEMPLATE.format(body=body)
        printed = print_kernel(parse_kernel(source))
        total, n, m = wg * 2, wg * 2, 3
        a = np.linspace(-1, 1, total * m)
        out1 = np.zeros(total)
        out2 = np.zeros(total)
        for text, out in ((source, out1), (printed, out2)):
            info = analyze_kernel(parse_kernel(text))
            KernelExecutor(
                info, {"A": a, "B": out, "n": n, "m": m}, NDRange(total, wg)
            ).run()
        assert np.array_equal(out1, out2)
