"""Tests for the Figure-7 CPU code generation."""

import numpy as np
import pytest

from repro.frontend import analyze_kernel, parse_kernel
from repro.interp import KernelExecutor, NDRange
from repro.transform import CpuTransformError, make_cpu_kernel
from repro.transform.cpu_codegen import NUM_WGS_PARAM, WORKLIST_PARAM

SAXPY = """
__kernel void saxpy(__global float* X, __global float* Y, float a, int n)
{
    int i = get_global_id(0);
    if (i < n) Y[i] = a * X[i] + Y[i];
}
"""

KERNEL_2D = """
__kernel void addval(__global float* A, int nx, int ny)
{
    int x = get_global_id(0);
    int y = get_global_id(1);
    if ((x < nx) && (y < ny)) A[y * nx + x] += x + 10 * y;
}
"""


def run_original(source, args, ndrange):
    kernel = analyze_kernel(parse_kernel(source))
    KernelExecutor(kernel, args, ndrange).run()


def run_cpu_variant(source, work_dim, args, ndrange, n_threads,
                    claims="atomic"):
    cpu = make_cpu_kernel(source, work_dim=work_dim, claims=claims)
    full = dict(args)
    full[WORKLIST_PARAM] = np.zeros(1, dtype=np.int64)
    full.update(
        cpu.scheduler_args(ndrange.total_groups, ndrange.local_size, ndrange.num_groups)
    )
    KernelExecutor(cpu.info, full, NDRange(n_threads, 1)).run()
    return full[WORKLIST_PARAM]


class TestStructure:
    def test_renamed_with_cpu_suffix(self):
        cpu = make_cpu_kernel(SAXPY, work_dim=1)
        assert cpu.name == "saxpy_cpu"

    def test_worklist_loop_present(self):
        cpu = make_cpu_kernel(SAXPY, work_dim=1)
        assert f"atomic_inc({WORKLIST_PARAM})" in cpu.source
        assert NUM_WGS_PARAM in cpu.source

    def test_ids_rewritten(self):
        cpu = make_cpu_kernel(SAXPY, work_dim=1)
        assert "get_global_id" not in cpu.source

    def test_barriered_kernel_rejected(self):
        with pytest.raises(CpuTransformError):
            make_cpu_kernel(
                "__kernel void f(__global float* A)"
                "{ barrier(1); A[get_global_id(0)] = 1.0f; }",
                work_dim=1,
            )

    def test_relaxed_claims_drop_the_fetch_add(self):
        cpu = make_cpu_kernel(SAXPY, work_dim=1, claims="relaxed")
        assert cpu.claims == "relaxed"
        assert "atomic_inc" not in cpu.source
        # the worklist parameter stays for launch-plumbing compatibility
        assert WORKLIST_PARAM in cpu.source
        assert NUM_WGS_PARAM in cpu.source

    def test_unknown_claims_rejected(self):
        with pytest.raises(CpuTransformError, match="claim discipline"):
            make_cpu_kernel(SAXPY, work_dim=1, claims="speculative")


class TestEquivalence:
    @pytest.mark.parametrize("threads", [1, 2, 4])
    def test_1d_equivalence(self, threads):
        n = 64
        x = np.arange(n, dtype=float)
        expected = np.ones(n)
        run_original(SAXPY, {"X": x, "Y": expected, "a": 2.0, "n": n}, NDRange(n, 16))
        actual = np.ones(n)
        run_cpu_variant(
            SAXPY, 1, {"X": x, "Y": actual, "a": 2.0, "n": n}, NDRange(n, 16), threads
        )
        assert np.array_equal(actual, expected)

    def test_2d_equivalence(self):
        nx, ny = 8, 8
        expected = np.zeros(nx * ny)
        run_original(KERNEL_2D, {"A": expected, "nx": nx, "ny": ny}, NDRange((nx, ny), (4, 4)))
        actual = np.zeros(nx * ny)
        run_cpu_variant(
            KERNEL_2D, 2, {"A": actual, "nx": nx, "ny": ny}, NDRange((nx, ny), (4, 4)), 3
        )
        assert np.array_equal(actual, expected)

    def test_every_work_group_claimed_exactly_once(self):
        n = 64
        counts = np.zeros(n)
        source = (
            "__kernel void f(__global float* C)"
            "{ C[get_global_id(0)] += 1.0f; }"
        )
        worklist = run_cpu_variant(source, 1, {"C": counts}, NDRange(n, 8), 4)
        assert np.all(counts == 1.0)
        # worklist overshoots by at most one claim per thread
        assert worklist[0] >= n // 8

    @pytest.mark.parametrize("threads", [1, 3, 4])
    def test_relaxed_claims_equivalent(self, threads):
        n = 64
        x = np.arange(n, dtype=float)
        expected = np.ones(n)
        run_original(SAXPY, {"X": x, "Y": expected, "a": 2.0, "n": n},
                     NDRange(n, 16))
        actual = np.ones(n)
        worklist = run_cpu_variant(
            SAXPY, 1, {"X": x, "Y": actual, "a": 2.0, "n": n}, NDRange(n, 16),
            threads, claims="relaxed",
        )
        assert np.array_equal(actual, expected)
        assert worklist[0] == 0  # the shared counter is never touched

    def test_relaxed_claims_cover_every_group_once(self):
        n = 64
        counts = np.zeros(n)
        source = (
            "__kernel void f(__global float* C)"
            "{ C[get_global_id(0)] += 1.0f; }"
        )
        run_cpu_variant(source, 1, {"C": counts}, NDRange(n, 8), 3,
                        claims="relaxed")
        assert np.all(counts == 1.0)
