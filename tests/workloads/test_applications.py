"""Tests for the multi-kernel application drivers."""

import pytest

from repro import cl
from repro.workloads.applications import (
    APPLICATIONS,
    AtaxApplication,
    BicgApplication,
    FdtdApplication,
    MvtApplication,
    PageRankApplication,
)


class TestVanillaExecution:
    """Applications run and self-verify without any interposer."""

    def test_atax(self):
        result = AtaxApplication(wg=16).run(n=48)
        assert result.verified
        assert result.launches == 2
        assert result.simulated_time_s > 0

    def test_bicg(self):
        result = BicgApplication(wg=16).run(n=48)
        assert result.verified
        assert result.launches == 2

    def test_mvt(self):
        result = MvtApplication(wg=16).run(n=48)
        assert result.verified

    def test_fdtd_time_loop(self):
        result = FdtdApplication(wg=(4, 4)).run(grid=16, steps=3)
        assert result.verified
        assert result.launches == 9  # 3 kernels x 3 steps

    def test_pagerank_converges(self):
        result = PageRankApplication(wg=16).run(n=64, avg_degree=6)
        assert result.verified
        assert int(result.outputs["iterations"][0]) < 100

    def test_registry_names(self):
        assert set(APPLICATIONS) == {"atax", "bicg", "mvt", "fdtd", "pagerank"}


class TestUnderDopia:
    """The same applications, with the runtime interposed per launch."""

    @pytest.fixture(scope="class")
    def runtime(self):
        from repro.core import DopiaRuntime, collect_dataset
        from repro.ml import make_model
        from repro.sim import KAVERI
        from repro.workloads.synthetic import training_workloads

        dataset = collect_dataset(
            training_workloads(sizes=(16384,), wg_sizes=(256,)), KAVERI, cache=False
        )
        model = make_model("dt")
        model.fit(dataset.feature_matrix(), dataset.targets())
        return DopiaRuntime(KAVERI, model)

    def test_atax_under_dopia_selects_per_launch(self, runtime):
        with cl.interposed(runtime):
            result = AtaxApplication(wg=16).run(n=48)
        assert result.verified
        assert len(result.selections) == 2  # one DoP decision per enqueue

    def test_fdtd_under_dopia(self, runtime):
        with cl.interposed(runtime):
            result = FdtdApplication(wg=(4, 4)).run(grid=16, steps=2)
        assert result.verified
        assert len(result.selections) == 6

    def test_pagerank_under_dopia(self, runtime):
        with cl.interposed(runtime):
            result = PageRankApplication(wg=16).run(n=48, avg_degree=4)
        assert result.verified
        assert result.selections  # Dopia handled the launches
