"""Registered kernel chains: shape, dependency wiring, and references.

Every chain factory must produce a valid topological task order whose
serial execution reproduces the chain's own NumPy reference — the same
contract the graph scheduler is held to, established here without any
server in the loop.
"""

import numpy as np
import pytest

from repro.core.runtime import execute_chain_serial
from repro.workloads.chains import (
    CHAIN_FACTORIES,
    make_atax_chain,
    make_fdtd_chain,
    make_mvt_chain,
)


@pytest.mark.parametrize("name", sorted(CHAIN_FACTORIES))
def test_factories_execute_serially_and_verify(name):
    chain = CHAIN_FACTORIES[name](seed=3)
    execute_chain_serial(chain)
    assert chain.verify(), f"{chain.name} diverged from its NumPy reference"


@pytest.mark.parametrize("name", sorted(CHAIN_FACTORIES))
def test_tasks_are_in_topological_order(name):
    chain = CHAIN_FACTORIES[name](seed=0)
    seen = set()
    for task in chain.tasks:
        assert set(task.deps) <= seen, (
            f"{chain.name} lists {task.key} before its deps {task.deps}")
        assert task.key not in seen
        seen.add(task.key)


def test_fdtd_chain_diamond_shape():
    """Per timestep: s1 ∥ s2, s3 joins both, next step fans out of s3."""
    chain = make_fdtd_chain(steps=3, grid=8)
    assert len(chain) == 9
    by_key = {task.key: task for task in chain.tasks}
    for t in range(3):
        assert set(by_key[f"s3@{t}"].deps) == {f"s1@{t}", f"s2@{t}"}
        expected = (f"s3@{t - 1}",) if t > 0 else ()
        assert by_key[f"s1@{t}"].deps == expected
        assert by_key[f"s2@{t}"].deps == expected


def test_atax_chain_is_strictly_serial():
    chain = make_atax_chain(reps=2)
    deps = [task.deps for task in chain.tasks]
    assert deps == [(), ("a1@0",), ("a2@0",), ("a1@1",)]


def test_mvt_chain_has_two_independent_lanes():
    chain = make_mvt_chain(reps=2)
    by_key = {task.key: task for task in chain.tasks}
    assert by_key["m1@1"].deps == ("m1@0",)
    assert by_key["m2@1"].deps == ("m2@0",)
    lane1 = {"m1@0", "m1@1"}
    for key in lane1:
        assert not set(by_key[key].deps) & {"m2@0", "m2@1"}


def test_chain_buffers_are_live_task_arguments():
    """Tasks mutate the chain's own buffers (no hidden copies)."""
    chain = make_atax_chain(reps=1, seed=1)
    task = chain.tasks[0]
    assert task.args["A"] is chain.buffers["A"]
    before = chain.buffers["tmp"].copy()
    execute_chain_serial(chain)
    assert not np.array_equal(chain.buffers["tmp"], before)
