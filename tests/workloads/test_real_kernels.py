"""Functional correctness of the 14 real-world kernels (scaled down).

Every Table-4 kernel is executed by the interpreter on a small instance
and checked against an independent NumPy reference implementation.
"""

import numpy as np
import pytest

from repro.interp import execute_kernel
from repro.workloads import (
    REAL_WORKLOAD_FACTORIES,
    make_atax1,
    make_atax2,
    make_bicg1,
    make_bicg2,
    make_conv2d,
    make_csr_matrix,
    make_fdtd1,
    make_fdtd2,
    make_fdtd3,
    make_gesummv,
    make_mvt1,
    make_mvt2,
    make_pagerank,
    make_spmv,
    make_syr2k,
    pagerank_reference,
    real_workloads,
    spmv_reference,
)


def run(workload, rng=0):
    args = workload.full_args(rng)
    execute_kernel(
        workload.source, args, workload.ndrange(), kernel_name=workload.kernel_name
    )
    return args


class TestRegistry:
    def test_fourteen_workloads(self):
        assert len(real_workloads()) == 14

    def test_factory_names_match_fig13(self):
        assert list(REAL_WORKLOAD_FACTORIES) == [
            "2DCONV", "ATAX1", "ATAX2", "BICG1", "BICG2", "FDTD1", "FDTD2",
            "FDTD3", "GESUMMV", "MVT1", "MVT2", "SYR2K", "PageRank", "SpMV",
        ]

    def test_paper_sizes(self):
        by_name = {w.key.split("/")[0]: w for w in real_workloads()}
        assert by_name["GESUMMV"].scalar_args["n"] == 16384
        assert by_name["SYR2K"].scalar_args["n"] == 1024
        assert by_name["2DCONV"].scalar_args["ni"] == 8192
        assert by_name["SpMV"].irregular_trip_hint == 16384.0

    def test_every_workload_profiles(self):
        for workload in real_workloads():
            profile = workload.profile()
            assert profile.bytes_per_item > 0


class TestFunctionalCorrectness:
    def test_gesummv(self):
        w = make_gesummv(n=24, wg=8)
        args = run(w)
        n = 24
        A = args["A"].reshape(n, n)
        B = args["B"].reshape(n, n)
        expected = 1.5 * (A @ args["x"]) + 2.5 * (B @ args["x"])
        assert np.allclose(args["y"][:n], expected)

    def test_atax_pipeline(self):
        n = 16
        w1 = make_atax1(n=n, wg=8)
        args = run(w1)
        A = args["A"].reshape(n, n)
        assert np.allclose(args["tmp"][:n], A @ args["x"])
        w2 = make_atax2(n=n, wg=8)
        args2 = w2.full_args(rng=0)
        args2["A"], args2["tmp"] = args["A"], args["tmp"]
        execute_kernel(w2.source, args2, w2.ndrange())
        assert np.allclose(args2["y"][:n], A.T @ args["tmp"][:n])

    def test_bicg_kernels(self):
        n = 16
        args1 = run(make_bicg1(n=n, wg=8))
        A = args1["A"].reshape(n, n)
        assert np.allclose(args1["s"][:n], A.T @ args1["r"])
        args2 = run(make_bicg2(n=n, wg=8))
        A2 = args2["A"].reshape(n, n)
        assert np.allclose(args2["q"][:n], A2 @ args2["p"])

    def test_mvt_kernels(self):
        n = 16
        args1 = run(make_mvt1(n=n, wg=8), rng=1)
        # x1 was overwritten in place: recompute expectation
        w = make_mvt1(n=n, wg=8)
        fresh = w.full_args(rng=1)
        A = fresh["A"].reshape(n, n)
        assert np.allclose(args1["x1"], fresh["x1"] + A @ fresh["y1"])

        args2 = run(make_mvt2(n=n, wg=8), rng=1)
        w2 = make_mvt2(n=n, wg=8)
        fresh2 = w2.full_args(rng=1)
        A2 = fresh2["A"].reshape(n, n)
        assert np.allclose(args2["x2"], fresh2["x2"] + A2.T @ fresh2["y2"])

    def test_conv2d(self):
        n = 12
        w = make_conv2d(n=n, wg=(4, 4))
        args = run(w)
        A = args["A"].reshape(n, n)
        B = args["B"].reshape(n, n)
        for i in range(1, n - 1):
            for j in range(1, n - 1):
                expected = (
                    0.2 * A[i - 1, j - 1] + (-0.3) * A[i, j - 1] + 0.4 * A[i + 1, j - 1]
                    + 0.5 * A[i - 1, j] + 0.6 * A[i, j] + 0.7 * A[i + 1, j]
                    + (-0.8) * A[i - 1, j + 1] + (-0.9) * A[i, j + 1] + 0.1 * A[i + 1, j + 1]
                )
                assert B[i, j] == pytest.approx(expected)
        assert np.all(B[0, :] == 0)

    def test_gemm_extra_workload(self):
        from repro.workloads import make_gemm

        n = 12
        w = make_gemm(n=n, wg=(4, 4))
        args = w.full_args(rng=8)
        C0 = args["C"].copy()
        execute_kernel(w.source, args, w.ndrange())
        expected = (
            2.5 * C0.reshape(n, n)
            + 1.5 * args["A"].reshape(n, n) @ args["B"].reshape(n, n)
        )
        assert np.allclose(args["C"].reshape(n, n), expected)

    def test_syr2k(self):
        n = 8
        w = make_syr2k(n=n, wg=(4, 4))
        fresh = w.full_args(rng=2)
        A = fresh["A"].reshape(n, n)
        B = fresh["B"].reshape(n, n)
        C0 = fresh["C"].reshape(n, n).copy()
        args = run(make_syr2k(n=n, wg=(4, 4)), rng=2)
        expected = 2.5 * C0 + 1.5 * A @ B.T + 1.5 * B @ A.T
        assert np.allclose(args["C"].reshape(n, n), expected)

    def test_fdtd_steps(self):
        w1 = make_fdtd1(n=1, wg=(4, 4))
        grid = int(w1.scalar_args["nx"])
        args = w1.full_args(rng=3)
        ey0 = args["ey"].copy()
        hz0 = args["hz"].copy()
        execute_kernel(w1.source, args, w1.ndrange())
        ny = grid
        # row 0 takes the source value; inner rows take the update
        assert np.allclose(args["ey"][:ny], args["_fict_"][0])
        i, j = 2, 3
        expected = ey0[i * ny + j] - 0.5 * (hz0[i * ny + j] - hz0[(i - 1) * ny + j])
        assert args["ey"][i * ny + j] == pytest.approx(expected)

        w2 = make_fdtd2(n=1, wg=(4, 4))
        args2 = w2.full_args(rng=3)
        ex0 = args2["ex"].copy()
        hz2 = args2["hz"].copy()
        execute_kernel(w2.source, args2, w2.ndrange())
        expected = ex0[i * (ny + 1) + j] - 0.5 * (hz2[i * ny + j] - hz2[i * ny + j - 1])
        assert args2["ex"][i * (ny + 1) + j] == pytest.approx(expected)

        w3 = make_fdtd3(n=1, wg=(4, 4))
        args3 = w3.full_args(rng=3)
        hz3 = args3["hz"].copy()
        execute_kernel(w3.source, args3, w3.ndrange())
        expected = hz3[i * ny + j] - 0.7 * (
            args3["ex"][i * (ny + 1) + j + 1] - args3["ex"][i * (ny + 1) + j]
            + args3["ey"][(i + 1) * ny + j] - args3["ey"][i * ny + j]
        )
        assert args3["hz"][i * ny + j] == pytest.approx(expected)

    def test_spmv(self):
        w = make_spmv(n=32, wg=8, nnz_per_row=4)
        args = run(w, rng=4)
        assert np.allclose(args["y"][:32], spmv_reference(args))

    def test_pagerank_step(self):
        w = make_pagerank(n=32, wg=8, avg_in_degree=4)
        args = run(w, rng=5)
        assert np.allclose(args["new_rank"][:32], pagerank_reference(args))

    def test_pagerank_converges_under_iteration(self):
        w = make_pagerank(n=24, wg=8, avg_in_degree=4)
        args = w.full_args(rng=6)
        for _ in range(40):
            execute_kernel(w.source, args, w.ndrange())
            args["rank"], args["new_rank"] = args["new_rank"], args["rank"]
        assert args["rank"][:24].sum() == pytest.approx(1.0, abs=0.15)
        delta = np.abs(args["rank"][:24] - args["new_rank"][:24]).max()
        assert delta < 1e-4


class TestCsrGenerator:
    def test_rowptr_monotone(self):
        rowptr, colidx, vals = make_csr_matrix(50, 50, 5, np.random.default_rng(0))
        assert np.all(np.diff(rowptr) >= 1)
        assert rowptr[0] == 0 and rowptr[-1] == len(colidx) == len(vals)

    def test_column_indices_in_range_and_unique_per_row(self):
        rowptr, colidx, _ = make_csr_matrix(30, 20, 6, np.random.default_rng(1))
        assert colidx.min() >= 0 and colidx.max() < 20
        for row in range(30):
            cols = colidx[rowptr[row]:rowptr[row + 1]]
            assert len(np.unique(cols)) == len(cols)

    def test_irregular_row_population(self):
        rowptr, _, _ = make_csr_matrix(200, 200, 10, np.random.default_rng(2))
        counts = np.diff(rowptr)
        assert counts.min() < counts.max()
