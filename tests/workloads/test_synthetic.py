"""Unit tests for the Table-2 synthetic workload generator."""

import numpy as np
import pytest

from repro.analysis import extract_static_features
from repro.interp import execute_kernel
from repro.workloads import (
    SyntheticSpec,
    make_synthetic,
    reference_result,
    training_specs,
    training_workloads,
)
from repro.workloads.synthetic import generate_source


class TestSpec:
    def test_pattern_name_round_trip(self):
        for name in ("1mat3d", "2mat3d1R1T", "2mat3d1C1R1T", "1mat4d1T"):
            spec = SyntheticSpec.from_pattern(name)
            assert spec.pattern_name == name or set(name) == set(spec.pattern_name)

    def test_from_pattern_parses_counts(self):
        spec = SyntheticSpec.from_pattern("2mat3d1C1R")
        assert spec.alpha == 2 and spec.beta == 3
        assert spec.theta == 1 and spec.epsilon == 1 and spec.delta == 0

    def test_malformed_pattern_rejected(self):
        with pytest.raises(ValueError):
            SyntheticSpec.from_pattern("3vec2d")

    def test_overflowing_modifiers_extend_addends(self):
        spec = SyntheticSpec.from_pattern("1mat3d1C1R")
        assert spec.n_addends == 2
        assert spec.n_plain == 0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            SyntheticSpec(alpha=0, beta=3)
        with pytest.raises(ValueError):
            SyntheticSpec(alpha=1, beta=2)
        with pytest.raises(ValueError):
            SyntheticSpec(alpha=1, beta=3, dim=3)
        with pytest.raises(ValueError):
            SyntheticSpec(alpha=1, beta=3, dtype="double")


class TestEnumeration:
    def test_table4_yields_1224_workloads(self):
        assert len(training_workloads()) == 1224

    def test_204_distinct_kernels(self):
        assert len(training_specs()) == 17 * 2 * 2 * 3

    def test_workload_keys_unique(self):
        keys = [w.key for w in training_workloads()]
        assert len(set(keys)) == len(keys)

    def test_every_kernel_parses_and_profiles(self):
        # one representative per pattern suffices for speed
        for spec in training_specs()[::12]:
            workload = make_synthetic(spec, size=256, wg_items=64)
            profile = workload.profile()
            assert profile.mem_ops_per_item > 0


class TestGeneratedSemantics:
    def test_access_classes_match_modifiers(self):
        spec = SyntheticSpec(alpha=4, beta=3, delta=1, epsilon=1, theta=1, dim=1)
        features = extract_static_features(
            make_synthetic(spec, size=64, wg_items=8, extent=4).kernel_info()
        )
        assert features.mem_random >= 1   # the indirect D[IDX[idx]] access
        assert features.mem_constant >= 1  # the E[cidx] access
        assert features.mem_stride >= 1    # the transposed B[idxT] access

    def test_gamma_adds_arithmetic(self):
        base = SyntheticSpec(alpha=2, beta=3, gamma=0)
        heavy = SyntheticSpec(alpha=2, beta=3, gamma=4)
        f0 = extract_static_features(make_synthetic(base, 64, 8, 4).kernel_info())
        f4 = extract_static_features(make_synthetic(heavy, 64, 8, 4).kernel_info())
        assert f4.arith_float > f0.arith_float

    def test_int_dtype_shifts_arithmetic(self):
        spec = SyntheticSpec(alpha=2, beta=3, gamma=2, dtype="int")
        features = extract_static_features(make_synthetic(spec, 64, 8, 4).kernel_info())
        assert features.arith_float == 0

    @pytest.mark.parametrize(
        "pattern", ["1mat3d", "2mat3d", "2mat3d1T", "2mat3d1R", "2mat3d1C", "1mat4d"]
    )
    def test_functional_result_matches_reference(self, pattern):
        spec = SyntheticSpec.from_pattern(pattern, gamma=2)
        workload = make_synthetic(spec, size=16, wg_items=8, extent=4)
        args = workload.full_args(rng=5)
        expected = reference_result(workload, spec, args)
        execute_kernel(workload.source, args, workload.ndrange())
        assert np.allclose(args["C"], expected)

    def test_dim2_functional_result(self):
        spec = SyntheticSpec.from_pattern("2mat3d1T", dim=2)
        workload = make_synthetic(spec, size=8, wg_items=64, extent=8)
        args = workload.full_args(rng=6)
        expected = reference_result(workload, spec, args)
        execute_kernel(workload.source, args, workload.ndrange())
        assert np.allclose(args["C"], expected)

    def test_4d_functional_result(self):
        spec = SyntheticSpec.from_pattern("1mat4d1T")
        workload = make_synthetic(spec, size=8, wg_items=4, extent=3)
        args = workload.full_args(rng=7)
        expected = reference_result(workload, spec, args)
        execute_kernel(workload.source, args, workload.ndrange())
        assert np.allclose(args["C"], expected)

    def test_source_mentions_pattern_pieces(self):
        spec = SyntheticSpec(alpha=2, beta=3, gamma=2, delta=1)
        source = generate_source(spec)
        assert "idxT" in source
        assert "c1 * c2 *" in source
