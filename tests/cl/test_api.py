"""Unit tests for the miniature OpenCL host API."""

import numpy as np
import pytest

from repro import cl

SAXPY = """
__kernel void saxpy(__global float* X, __global float* Y, float a, int n)
{
    int i = get_global_id(0);
    if (i < n) Y[i] = a * X[i] + Y[i];
}
"""


@pytest.fixture
def ctx():
    return cl.create_context("kaveri")


class TestPlatformDiscovery:
    def test_two_platforms(self):
        names = {p.name for p in cl.get_platforms()}
        assert names == {"kaveri", "skylake"}

    def test_devices_per_platform(self):
        platform = cl.get_platform("kaveri")
        devices = platform.get_devices()
        assert len(devices) == 2
        assert {d.device_type for d in devices} == {cl.DeviceType.CPU, cl.DeviceType.GPU}

    def test_device_filter(self):
        platform = cl.get_platform("skylake")
        (gpu,) = platform.get_devices(cl.DeviceType.GPU)
        assert gpu.max_compute_units == 24

    def test_unknown_platform_rejected(self):
        with pytest.raises(cl.CLError):
            cl.get_platform("fermi")


class TestContextAndBuffers:
    def test_context_requires_single_platform(self):
        kaveri = cl.get_platform("kaveri").get_devices()
        skylake = cl.get_platform("skylake").get_devices()
        with pytest.raises(cl.CLError):
            cl.Context([kaveri[0], skylake[0]])

    def test_buffer_wraps_array_zero_copy(self, ctx):
        data = np.zeros(8)
        buffer = ctx.create_buffer(data)
        buffer.array[0] = 5.0
        assert data[0] == 5.0

    def test_buffer_rejects_2d(self, ctx):
        with pytest.raises(cl.CLError):
            ctx.create_buffer(np.zeros((2, 2)))

    def test_buffer_read_write(self, ctx):
        buffer = ctx.create_buffer(np.zeros(4))
        buffer.write(np.arange(4.0))
        assert np.array_equal(buffer.read(), np.arange(4.0))
        with pytest.raises(cl.CLError):
            buffer.write(np.zeros(5))


class TestProgramsAndKernels:
    def test_build_and_kernel_names(self, ctx):
        program = ctx.create_program_with_source(SAXPY).build()
        assert program.kernel_names() == ["saxpy"]

    def test_build_failure_is_cl_error(self, ctx):
        with pytest.raises(cl.CLError) as err:
            ctx.create_program_with_source("__kernel void broken( {").build()
        assert err.value.code is cl.Status.BUILD_PROGRAM_FAILURE

    def test_kernel_before_build_rejected(self, ctx):
        program = ctx.create_program_with_source(SAXPY)
        with pytest.raises(cl.CLError):
            program.create_kernel("saxpy")

    def test_unknown_kernel_rejected(self, ctx):
        program = ctx.create_program_with_source(SAXPY).build()
        with pytest.raises(cl.CLError):
            program.create_kernel("daxpy")

    def test_positional_and_named_args(self, ctx):
        program = ctx.create_program_with_source(SAXPY).build()
        kernel = program.create_kernel("saxpy")
        kernel.set_arg(0, ctx.create_buffer(np.zeros(4)))
        kernel.set_arg("a", 2.0)
        kernel.set_args(Y=ctx.create_buffer(np.zeros(4)), n=4)
        assert kernel.bound_args()["n"] == 4

    def test_unbound_args_detected(self, ctx):
        program = ctx.create_program_with_source(SAXPY).build()
        kernel = program.create_kernel("saxpy")
        kernel.set_arg("a", 1.0)
        with pytest.raises(cl.CLError) as err:
            kernel.bound_args()
        assert err.value.code is cl.Status.INVALID_KERNEL_ARGS

    def test_scalar_args_exclude_buffers(self, ctx):
        program = ctx.create_program_with_source(SAXPY).build()
        kernel = program.create_kernel("saxpy")
        kernel.set_args(
            ctx.create_buffer(np.zeros(4)), ctx.create_buffer(np.zeros(4)), 3.0, 4
        )
        assert kernel.scalar_args() == {"a": 3.0, "n": 4.0}


class TestEnqueue:
    def test_default_path_executes_functionally(self, ctx):
        program = ctx.create_program_with_source(SAXPY).build()
        kernel = program.create_kernel("saxpy")
        x = np.arange(16.0)
        y = np.ones(16)
        kernel.set_args(ctx.create_buffer(x), ctx.create_buffer(y), 2.0, 16)
        queue = cl.create_command_queue(ctx)
        event = queue.enqueue_nd_range_kernel(kernel, (16,), (8,))
        assert np.allclose(y, 2 * x + 1)
        assert event.simulated_time_s > 0

    def test_gpu_queue_uses_gpu_setting(self, ctx):
        program = ctx.create_program_with_source(SAXPY).build()
        kernel = program.create_kernel("saxpy")
        kernel.set_args(
            ctx.create_buffer(np.zeros(8)), ctx.create_buffer(np.zeros(8)), 1.0, 8
        )
        gpu = [d for d in ctx.devices if d.device_type is cl.DeviceType.GPU][0]
        queue = cl.create_command_queue(ctx, gpu)
        event = queue.enqueue_nd_range_kernel(kernel, (8,), (8,))
        assert event.details["setting"].gpu_fraction == 1.0
        assert event.details["setting"].cpu_threads == 0

    def test_non_functional_queue_skips_execution(self, ctx):
        program = ctx.create_program_with_source(SAXPY).build()
        kernel = program.create_kernel("saxpy")
        y = np.ones(8)
        kernel.set_args(ctx.create_buffer(np.arange(8.0)), ctx.create_buffer(y), 2.0, 8)
        queue = cl.create_command_queue(ctx, functional=False)
        event = queue.enqueue_nd_range_kernel(kernel, (8,), (8,))
        assert np.all(y == 1.0)           # buffers untouched
        assert event.simulated_time_s > 0  # but timing still produced

    def test_read_write_buffer_commands(self, ctx):
        buffer = ctx.create_buffer(np.zeros(4))
        queue = cl.create_command_queue(ctx)
        queue.enqueue_write_buffer(buffer, np.arange(4.0))
        out = np.empty(4)
        queue.enqueue_read_buffer(buffer, out)
        assert np.array_equal(out, np.arange(4.0))


class TestInterposition:
    def test_interposer_sees_builds_and_can_take_over(self, ctx):
        calls = []

        class Probe(cl.Interposer):
            def program_built(self, program):
                calls.append(("built", program.kernel_names()))

            def enqueue(self, queue, kernel, ndrange, hint):
                calls.append(("enqueue", kernel.name, ndrange.total_work_items))
                return cl.Event(command=cl.CommandType.NDRANGE_KERNEL,
                                simulated_time_s=123.0)

        with cl.interposed(Probe()):
            program = ctx.create_program_with_source(SAXPY).build()
            kernel = program.create_kernel("saxpy")
            kernel.set_args(
                ctx.create_buffer(np.zeros(8)), ctx.create_buffer(np.zeros(8)), 1.0, 8
            )
            queue = cl.create_command_queue(ctx)
            event = queue.enqueue_nd_range_kernel(kernel, (8,), (4,))
        assert ("built", ["saxpy"]) in calls
        assert ("enqueue", "saxpy", 8) in calls
        assert event.simulated_time_s == 123.0
        assert cl.current_interposer() is None

    def test_declining_interposer_falls_through(self, ctx):
        class Decline(cl.Interposer):
            def program_built(self, program):
                pass

            def enqueue(self, queue, kernel, ndrange, hint):
                return None

        y = np.ones(8)
        with cl.interposed(Decline()):
            program = ctx.create_program_with_source(SAXPY).build()
            kernel = program.create_kernel("saxpy")
            kernel.set_args(ctx.create_buffer(np.arange(8.0)), ctx.create_buffer(y), 1.0, 8)
            queue = cl.create_command_queue(ctx)
            queue.enqueue_nd_range_kernel(kernel, (8,), (4,))
        assert np.allclose(y, np.arange(8.0) + 1)
