"""Tests for the SVG figure regeneration."""

import xml.dom.minidom


from repro.report import barchart_svg, heatmap_svg, linechart_svg


def well_formed(svg: str) -> xml.dom.minidom.Document:
    return xml.dom.minidom.parseString(svg)


class TestSvgPrimitives:
    def test_heatmap_well_formed(self):
        svg = heatmap_svg(
            [[0.1, 0.9], [float("nan"), 0.5]],
            row_labels=["r0", "r1"],
            col_labels=["c0", "c1"],
            title="test heatmap",
        )
        doc = well_formed(svg)
        assert doc.documentElement.tagName == "svg"
        assert "test heatmap" in svg

    def test_heatmap_nan_cells_rendered_empty(self):
        svg = heatmap_svg([[float("nan")]], ["r"], ["c"], "t")
        assert "#eee" in svg

    def test_heatmap_escapes_labels(self):
        svg = heatmap_svg([[0.5]], ["<r&>"], ["c"], "a < b & c")
        well_formed(svg)
        assert "&lt;" in svg and "&amp;" in svg

    def test_linechart_well_formed(self):
        svg = linechart_svg(
            [1, 2, 3],
            {"a": [0.1, 0.2, 0.3], "b": [3.0, 2.0, 1.0]},
            title="lines",
            x_label="x",
            y_label="y",
        )
        well_formed(svg)
        assert svg.count("<polyline") == 2

    def test_barchart_well_formed(self):
        svg = barchart_svg(
            ["k1", "k2"],
            {"CPU": [0.5, 0.7], "Dopia": [0.9, 0.95]},
            title="bars",
            y_max=1.0,
        )
        well_formed(svg)
        assert svg.count("k1") >= 1

    def test_value_tooltips_present(self):
        svg = heatmap_svg([[0.42]], ["r"], ["c"], "t")
        assert "<title>" in svg and "0.42" in svg


class TestFigureGeneration:
    def test_figure01_writes_svg(self, tmp_path):
        from repro.report import figure01

        path = figure01(tmp_path)
        assert path.exists()
        well_formed(path.read_text())

    def test_figure03_writes_both_kernels(self, tmp_path):
        from repro.report import figure03

        paths = figure03(tmp_path)
        assert len(paths) == 2
        for path in paths:
            well_formed(path.read_text())
