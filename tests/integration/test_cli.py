"""Tests for the command-line interface."""

from pathlib import Path

import pytest

from repro.cli import main

KERNELS = Path(__file__).resolve().parents[2] / "examples" / "kernels"
GESUMMV = str(KERNELS / "gesummv.cl")
SPMV = str(KERNELS / "spmv.cl")


def run_cli(capsys, *argv) -> str:
    code = main(list(argv))
    assert code == 0
    return capsys.readouterr().out


class TestAnalyze:
    def test_features_printed(self, capsys):
        out = run_cli(capsys, "analyze", GESUMMV)
        assert "mem_continuous" in out
        assert "gesummv" in out

    def test_profile_with_launch_info(self, capsys):
        out = run_cli(
            capsys, "analyze", GESUMMV, "--arg", "n=1024",
            "--global-size", "1024", "--local-size", "64",
        )
        assert "bytes/work-item" in out
        assert "arithmetic intensity" in out

    def test_irregular_kernel_flagged(self, capsys):
        out = run_cli(
            capsys, "analyze", SPMV, "--arg", "n=1024",
            "--global-size", "1024", "--local-size", "64", "--hint", "32",
        )
        assert "irregular            True" in out

    def test_missing_file_errors(self, capsys):
        with pytest.raises(SystemExit):
            main(["analyze", "/nonexistent/kernel.cl"])

    def test_bad_arg_syntax_errors(self):
        with pytest.raises(SystemExit):
            main(["analyze", GESUMMV, "--arg", "n:1024", "--global-size", "64"])


class TestTransform:
    def test_malleable_source_printed(self, capsys):
        out = run_cli(capsys, "transform", GESUMMV)
        assert "dop_gpu_mod" in out
        assert "local_worklist" in out

    def test_cpu_variant_printed(self, capsys):
        out = run_cli(capsys, "transform", GESUMMV, "--cpu")
        assert "gesummv_cpu" in out
        assert "dopia_wg_worklist" in out

    def test_2d_transform(self, capsys):
        out = run_cli(capsys, "transform", GESUMMV, "--work-dim", "2")
        assert "get_local_size(1)" in out


class TestTrainPredictSweep:
    def test_train_and_save_and_predict(self, capsys, tmp_path):
        model_file = tmp_path / "model.pkl"
        out = run_cli(
            capsys, "train", "--platform", "kaveri", "--model", "dt",
            "--output", str(model_file),
        )
        assert "trained dt" in out
        assert model_file.exists()

        out = run_cli(
            capsys, "predict", GESUMMV, "--platform", "kaveri",
            "--model-file", str(model_file), "--verbose",
        )
        assert "selected :" in out
        assert "<-- selected" in out

    def test_model_platform_mismatch_rejected(self, capsys, tmp_path):
        model_file = tmp_path / "model.pkl"
        run_cli(capsys, "train", "--platform", "kaveri", "--output", str(model_file))
        with pytest.raises(SystemExit):
            main([
                "predict", GESUMMV, "--platform", "skylake",
                "--model-file", str(model_file),
            ])

    def test_emit_c(self, capsys, tmp_path):
        c_file = tmp_path / "tree.c"
        run_cli(capsys, "train", "--model", "dt", "--emit-c", str(c_file))
        text = c_file.read_text()
        assert "double dopia_predict(const double *features)" in text
        assert "/* features[0] = mem_constant */" in text

    def test_emit_c_requires_dt(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["train", "--model", "lin", "--emit-c", str(tmp_path / "x.c")])

    def test_train_accepts_jobs_flag(self, capsys):
        out = run_cli(capsys, "train", "--platform", "kaveri", "--jobs", "1")
        assert "trained dt" in out

    def test_sweep_prints_ranking(self, capsys):
        out = run_cli(
            capsys, "sweep", GESUMMV, "--arg", "n=16384",
            "--global-size", "16384", "--local-size", "256", "--top", "5",
        )
        assert "fastest first" in out
        assert "best:" in out
        assert out.count("ms") >= 5


class TestTraceStats:
    def test_trace_writes_valid_pair_and_stats_reads_it(self, capsys, tmp_path):
        import json

        from repro.obs import JSONL_KEYS

        out = run_cli(
            capsys, "trace", "GESUMMV", "--out", str(tmp_path), "--jobs", "1",
        )
        jsonl = tmp_path / "GESUMMV.trace.jsonl"
        chrome = tmp_path / "GESUMMV.chrome.json"
        assert str(jsonl) in out and str(chrome) in out
        assert "counters:" in out

        # every JSONL line carries the stable eight-key schema
        lines = jsonl.read_text().splitlines()
        assert lines
        events = [json.loads(line) for line in lines]
        for record in events:
            assert tuple(record) == JSONL_KEYS

        # the advertised content: predictor (44 configs), scheduler,
        # backend selection
        names = {e["name"] for e in events}
        assert "predictor.select" in names
        assert "backend.choice" in names
        assert names & {"schedule.cpu_pull", "schedule.gpu_chunk"}
        select = next(e for e in events if e["name"] == "predictor.select")
        assert len(select["args"]["configs"]) == 44

        # the Chrome pair loads as plain JSON with a traceEvents array
        data = json.loads(chrome.read_text())
        assert len(data["traceEvents"]) == len(events)
        assert {e["ph"] for e in data["traceEvents"]} <= {"X", "i", "C"}

        out = run_cli(capsys, "stats", str(jsonl))
        assert f"events    : {len(events)}" in out
        assert "dopia.launch" in out

    def test_trace_unknown_workload_errors(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["trace", "NOPE", "--out", str(tmp_path)])

    def test_stats_missing_file_errors(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["stats", str(tmp_path / "missing.jsonl")])

    def test_stats_rejects_non_trace_file(self, tmp_path):
        bad = tmp_path / "not-a-trace.jsonl"
        bad.write_text("this is not json\n")
        with pytest.raises(SystemExit):
            main(["stats", str(bad)])


class TestCacheCommand:
    def test_cache_info_reports_empty_dir(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("DOPIA_CACHE_DIR", str(tmp_path))
        out = run_cli(capsys, "cache", "info")
        assert str(tmp_path) in out
        assert "shards    : 0" in out

    def test_cache_key_prints_fingerprint(self, capsys):
        out = run_cli(capsys, "cache", "key", "--platform", "kaveri")
        token = out.strip()
        assert token.startswith("kaveri-")
        assert len(token.split("-", 1)[1]) == 24  # blake2b-12 hex digest
        # stable across invocations (this is the CI cache key)
        assert run_cli(capsys, "cache", "key", "--platform", "kaveri").strip() == token

    def test_cache_key_differs_for_real_workloads(self, capsys):
        synth = run_cli(capsys, "cache", "key", "--platform", "skylake").strip()
        real = run_cli(capsys, "cache", "key", "--platform", "skylake", "--real").strip()
        assert synth != real

    def test_cache_clear_removes_shards(self, capsys, tmp_path, monkeypatch):
        from repro.core import collect_dataset
        from repro.sim import KAVERI
        from repro.workloads import make_gesummv

        monkeypatch.setenv("DOPIA_CACHE_DIR", str(tmp_path))
        collect_dataset([make_gesummv(n=512, wg=64)], KAVERI, cache=True,
                        cache_dir=tmp_path)
        out = run_cli(capsys, "cache", "info")
        assert "shards    : 1" in out
        out = run_cli(capsys, "cache", "clear")
        assert "removed 2 cache file(s)" in out
        out = run_cli(capsys, "cache", "info")
        assert "shards    : 0" in out


class TestLintStats:
    """``dopia lint --stats``: verdict counts plus the unknown ratchet."""

    def test_stats_printed_for_clean_workload(self, capsys):
        code = main(["lint", "GESUMMV/24/wg8", "--stats"])
        err = capsys.readouterr().err
        assert code == 0
        assert "lint: stats: races: clean=1" in err
        assert "lint: stats: no unknown verdicts" in err

    def test_unlisted_unknown_fails_the_ratchet(self, capsys):
        # SpMV's indirect column addressing is outside the OOB envelope
        code = main(["lint", "SpMV/32/wg8", "--stats"])
        err = capsys.readouterr().err
        assert code == 1
        assert "UNKNOWN verdict outside allowlist: SpMV/32/wg8#oob" in err

    def test_allowlist_excuses_known_unknowns(self, capsys, tmp_path):
        allowlist = tmp_path / "allow.json"
        allowlist.write_text('["SpMV/32/wg8#oob"]')
        code = main(["lint", "SpMV/32/wg8", "--stats",
                     "--allow-unknown", str(allowlist)])
        err = capsys.readouterr().err
        assert code == 0
        assert "1 unknown verdict(s), all allowlisted" in err

    def test_stale_allowlist_entry_is_flagged(self, capsys, tmp_path):
        allowlist = tmp_path / "allow.json"
        allowlist.write_text('["GESUMMV/24/wg8#oob"]')
        code = main(["lint", "GESUMMV/24/wg8", "--stats",
                     "--allow-unknown", str(allowlist)])
        err = capsys.readouterr().err
        assert code == 0
        assert ("allowlist entry no longer unknown (ratchet it): "
                "GESUMMV/24/wg8#oob") in err

    def test_committed_allowlist_covers_the_registry(self, capsys):
        """The CI invocation in miniature: the committed allowlist must
        excuse exactly the registry's remaining unknowns."""
        code = main(["lint", "SpMV/32/wg8", "PageRank/32/wg8", "--stats",
                     "--allow-unknown", "LINT_ALLOWLIST.json"])
        err = capsys.readouterr().err
        assert code == 0
        assert "all allowlisted" in err

    def test_baseline_regeneration_hint_on_improvement(self, capsys,
                                                       tmp_path):
        import json

        baseline = tmp_path / "baseline.json"
        code = main(["lint", "GESUMMV/24/wg8", "--json"])
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        # age the baseline: pretend races used to be unknown
        document["reports"][0]["verdicts"]["races"] = "unknown"
        baseline.write_text(json.dumps(document))
        code = main(["lint", "GESUMMV/24/wg8", "--check", str(baseline)])
        err = capsys.readouterr().err
        assert code == 0  # improvements warn, never fail
        assert "IMPROVED verdict: GESUMMV/24/wg8: races: unknown -> clean" \
            in err
        assert "baseline is stale; regenerate it with:" in err
        assert f"--json > {baseline}" in err

    def test_verdict_regression_fails_the_check(self, capsys, tmp_path):
        import json

        baseline = tmp_path / "baseline.json"
        code = main(["lint", "GESUMMV/24/wg8", "--json"])
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        # pretend the baseline proved a pass this run cannot
        document["reports"][0]["verdicts"]["oob"] = "clean"
        current = json.dumps(document)
        document["reports"][0]["verdicts"]["oob"] = "unknown"
        # the *baseline* is the stronger document; regenerating from the
        # current run would silently lose the proof
        baseline.write_text(current)

        from repro.analysis.lint import diff_baseline

        diff = diff_baseline(json.dumps(document), current)
        assert diff.regressed == ["GESUMMV/24/wg8: oob: clean -> unknown"]
        assert not diff.clean
