"""Integration tests: the full pipeline across module boundaries.

These exercise the complete flow the paper's Figure 4 describes —
source text → frontend → analysis → transformation → prediction →
Algorithm-1 co-execution → verified buffers — on several kernel families,
plus cross-checks between independently implemented components.
"""

import numpy as np
import pytest

from repro import cl
from repro.analysis import extract_static_features, profile_kernel
from repro.core import DopiaRuntime, collect_dataset, run_dynamic
from repro.frontend import analyze_kernel, parse_kernel
from repro.interp import KernelExecutor, execute_kernel
from repro.ml import make_model
from repro.sim import KAVERI, DopSetting, simulate_execution
from repro.transform import make_malleable, print_kernel
from repro.workloads import (
    make_gesummv,
    make_spmv,
    real_workloads,
    spmv_reference,
)
from repro.workloads.synthetic import (
    SyntheticSpec,
    make_synthetic,
    reference_result,
    training_workloads,
)


@pytest.fixture(scope="module")
def runtime():
    workloads = training_workloads(sizes=(16384,), wg_sizes=(256,))
    dataset = collect_dataset(workloads, KAVERI, cache=False)
    model = make_model("dt")
    model.fit(dataset.feature_matrix(), dataset.targets())
    return DopiaRuntime(KAVERI, model)


class TestAnalysisTransformInterpreterAgreement:
    """The three independent views of a kernel must agree."""

    @pytest.mark.parametrize("pattern", ["2mat3d", "2mat3d1T", "2mat3d1C1R"])
    def test_transformed_synthetic_kernels_compute_reference(self, pattern):
        spec = SyntheticSpec.from_pattern(pattern, gamma=2)
        workload = make_synthetic(spec, size=24, wg_items=8, extent=4)
        args = workload.full_args(rng=11)
        expected = reference_result(workload, spec, args)

        malleable = make_malleable(workload.source, work_dim=1)
        gpu_args = dict(args, dop_gpu_mod=4, dop_gpu_alloc=1)
        KernelExecutor(malleable.info, gpu_args, workload.ndrange()).run()
        assert np.allclose(args["C"], expected)

    def test_printed_transform_reparses_and_reanalyses(self):
        workload = make_gesummv(n=512, wg=64)
        malleable = make_malleable(workload.source, work_dim=1)
        reparsed = analyze_kernel(parse_kernel(print_kernel(malleable.kernel)))
        assert reparsed.uses_barrier and reparsed.uses_atomics
        features = extract_static_features(reparsed)
        assert features.mem_continuous > 0

    def test_profile_consistent_with_interpreted_traffic(self):
        """The profile's dynamic op counts must match actual executions."""
        source = (
            "__kernel void k(__global float* A, __global float* B, int n, int m)"
            "{ int i = get_global_id(0);"
            "  if (i < n) { float s = 0.0f;"
            "    for (int j = 0; j < m; j++) s = s + A[i * m + j];"
            "    B[i] = s; } }"
        )
        n, m = 32, 8
        info = analyze_kernel(parse_kernel(source))
        profile = profile_kernel(info, {"n": n, "m": m}, n, 8)
        # per item: m loads of A + 1 store of B
        a_loads = sum(
            op.executions_per_item
            for op in profile.op_profiles
            if op.buffer == "A" and not op.is_store
        )
        assert a_loads == m


class TestSchedulerAgainstInterpreter:
    def test_algorithm1_equals_plain_execution_on_spmv(self):
        workload = make_spmv(n=64, wg=8, nnz_per_row=6)
        args = workload.full_args(rng=3)
        expected = spmv_reference(args)

        info = workload.kernel_info()
        malleable = make_malleable(workload.source, work_dim=1)
        run_dynamic(
            info, malleable, args, workload.ndrange(),
            DopSetting(2, 0.5), dop_gpu_mod=2, dop_gpu_alloc=1,
        )
        assert np.allclose(args["y"][:64], expected)


class TestRuntimeOverRealKernels:
    def test_gesummv_through_interposed_api(self, runtime):
        workload = make_gesummv(n=48, wg=8)
        args = workload.full_args(rng=1)
        n = 48
        A = args["A"].reshape(n, n).copy()
        B = args["B"].reshape(n, n).copy()
        x = args["x"].copy()

        ctx = cl.create_context("kaveri")
        with cl.interposed(runtime):
            program = ctx.create_program_with_source(workload.source).build()
            kernel = program.create_kernel(workload.kernel_name)
            for name, value in args.items():
                kernel.set_arg(
                    name,
                    ctx.create_buffer(value) if isinstance(value, np.ndarray) else value,
                )
            queue = cl.create_command_queue(ctx)
            event = queue.enqueue_nd_range_kernel(
                kernel, workload.global_size, workload.local_size
            )
        expected = 1.5 * (A @ x) + 2.5 * (B @ x)
        assert np.allclose(args["y"][:n], expected)
        assert event.simulated_time_s > 0

    def test_every_real_kernel_analyses_and_transforms(self, runtime):
        ctx = cl.create_context("kaveri")
        with cl.interposed(runtime):
            for workload in real_workloads():
                program = ctx.create_program_with_source(workload.source).build()
                artifacts = program.interposer_data[workload.kernel_name]
                assert artifacts.transformable, workload.key
                malleable = runtime._malleable_for(
                    program.create_kernel(workload.kernel_name), workload.work_dim
                )
                assert "dop_gpu_mod" in malleable.source

    def test_prediction_quality_on_memory_bound_kernel(self, runtime):
        """The trained runtime must not pick full-GPU for Gesummv-like
        kernels on Kaveri (the paper's motivating blunder)."""
        workload = make_gesummv(n=16384, wg=256)
        static = extract_static_features(workload.kernel_info())
        prediction = runtime.predictor.select(
            static, 1, workload.total_work_items, workload.work_group_items
        )
        # the selection must avoid the catastrophic all-GPU corner
        assert not (
            prediction.config.gpu_util == 1.0 and prediction.config.cpu_util == 0.0
        )
        # and it must be a good configuration when actually executed
        profile = workload.profile()
        chosen = simulate_execution(
            profile, KAVERI, prediction.config.setting, run_key=(workload.key,)
        ).time_s
        gpu_only = simulate_execution(
            profile, KAVERI, DopSetting(0, 1.0), run_key=(workload.key,)
        ).time_s
        assert chosen < gpu_only / 2


class TestDeterminism:
    def test_dataset_collection_is_deterministic(self):
        workloads = training_workloads(sizes=(16384,), wg_sizes=(256,))[:5]
        a = collect_dataset(workloads, KAVERI, cache=False)
        b = collect_dataset(workloads, KAVERI, cache=False)
        assert np.array_equal(a.times, b.times)

    def test_interpreter_is_deterministic(self):
        workload = make_spmv(n=32, wg=8, nnz_per_row=4)
        args1 = workload.full_args(rng=7)
        args2 = workload.full_args(rng=7)
        execute_kernel(workload.source, args1, workload.ndrange())
        execute_kernel(workload.source, args2, workload.ndrange())
        assert np.array_equal(args1["y"], args2["y"])
