"""Smoke tests: every shipped example must run to completion.

The examples are part of the public deliverable; each one self-verifies
its numerical results (asserts inside), so running them end-to-end is a
meaningful integration check, not just an import test.
"""

import runpy
import sys
from pathlib import Path


EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

ALL_EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def run_example(name: str, capsys) -> str:
    sys.path.insert(0, str(EXAMPLES_DIR))
    try:
        runpy.run_path(str(EXAMPLES_DIR / name), run_name="__main__")
    finally:
        sys.path.remove(str(EXAMPLES_DIR))
    return capsys.readouterr().out


def test_examples_present():
    assert len(ALL_EXAMPLES) >= 4
    assert "quickstart.py" in ALL_EXAMPLES


def test_quickstart(capsys):
    out = run_example("quickstart.py", capsys)
    assert "result verified" in out
    assert "selected DoP" in out


def test_malleable_codegen(capsys):
    out = run_example("malleable_codegen.py", capsys)
    assert "bit-identical" in out
    assert "dop_gpu_mod" in out


def test_dop_exploration(capsys):
    out = run_example("dop_exploration.py", capsys)
    assert "exhaustive-search optimum" in out
    assert "of optimum" in out


def test_pagerank_coexecution(capsys):
    out = run_example("pagerank_coexecution.py", capsys)
    assert "fixed point verified" in out


def test_fdtd_application(capsys):
    out = run_example("fdtd_application.py", capsys)
    assert "final fields verified" in out
    assert "DoP selections" in out
