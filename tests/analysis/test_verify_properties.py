"""Property suite for the static verifier (repro.analysis.verify).

Generates racy / out-of-bounds / divergent-barrier mutants from the Table-2
synthetic kernel family and checks that

* every injected defect is flagged with the right diagnostic code,
* every race/OOB diagnostic is confirmed by the instrumented dynamic run
  (:mod:`repro.analysis.crossval`), and
* the unmodified kernels — synthetic and all 14 registry workloads —
  produce **zero** actionable diagnostics (no false positives).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.crossval import cross_validate, run_instrumented
from repro.analysis.verify import LaunchSpec, verify_launch
from repro.frontend.parser import parse, parse_kernel
from repro.frontend.semantics import analyze_kernel
from repro.workloads import scaled_real_workloads
from repro.workloads.synthetic import SyntheticSpec, make_synthetic

# -- synthetic family ---------------------------------------------------------
# Small launches keep the dynamic cross-check cheap: 32 work-items over a
# 32x4x4 element space, 8-item work-groups.

SIZE, WG_ITEMS, EXTENT = 32, 8, 4


def _spec_strategy():
    return st.builds(
        SyntheticSpec,
        alpha=st.integers(min_value=1, max_value=2),
        beta=st.just(3),
        gamma=st.integers(min_value=0, max_value=1),
        delta=st.just(0),
        epsilon=st.just(0),
        theta=st.integers(min_value=0, max_value=1),
        dim=st.just(1),
        dtype=st.sampled_from(["float", "int"]),
    )


def _instantiate(spec, mutate=None):
    """Build (info, args, ndrange) for a (possibly mutated) synthetic spec."""
    workload = make_synthetic(spec, size=SIZE, wg_items=WG_ITEMS, extent=EXTENT)
    source = mutate(workload.source) if mutate else workload.source
    unit = parse(source)
    info = analyze_kernel(parse_kernel(source), unit)
    args = workload.full_args(np.random.default_rng(0))
    return info, args, workload.ndrange()


def _verify(info, args, ndrange):
    return verify_launch(info, LaunchSpec.from_args(ndrange, args))


# -- defect injectors ---------------------------------------------------------


def _inject_shared_store(source: str) -> str:
    """Every work-item stores to C[0]: a definite write/write race."""
    assert "C[idx] =" in source
    return source.replace("C[idx] =", "C[0] =", 1)


def _inject_dropped_id(source: str) -> str:
    """Drop the id-bound term from the store index: distinct work-items
    (different z) collide on the same element."""
    assert "C[idx] =" in source
    return source.replace("C[idx] =", "C[y * NX + x] =", 1)


def _inject_oob_over(source: str) -> str:
    assert "C[idx] =" in source
    return source.replace("C[idx] =", "C[idx + 1] =", 1)


def _inject_oob_under(source: str) -> str:
    assert "C[idx] =" in source
    return source.replace("C[idx] =", "C[idx - 1] =", 1)


def _inject_divergent_barrier(source: str) -> str:
    """barrier() inside the id-dependent bounds guard."""
    marker = ") {\n"
    at = source.index(marker) + len(marker)
    return source[:at] + "        barrier(1);\n" + source[at:]


# -- properties ---------------------------------------------------------------


class TestSyntheticFamilyClean:
    @settings(max_examples=12, deadline=None)
    @given(_spec_strategy())
    def test_unmodified_kernel_is_clean_and_confirmed(self, spec):
        info, args, ndrange = _instantiate(spec)
        report = _verify(info, args, ndrange)
        assert report.actionable == [], [d.render() for d in report.actionable]
        assert report.verdicts["races"] == "clean"
        assert report.verdicts["oob"] == "clean"
        # dynamic corroboration: the clean verdict misses nothing
        check = cross_validate(report, run_instrumented(info, args, ndrange))
        assert check.consistent, vars(check)


class TestInjectedDefectsFlagged:
    @settings(max_examples=8, deadline=None)
    @given(_spec_strategy())
    def test_shared_store_race_flagged_and_confirmed(self, spec):
        info, args, ndrange = _instantiate(spec, _inject_shared_store)
        report = _verify(info, args, ndrange)
        codes = {d.code for d in report.diagnostics}
        assert "RACE001" in codes, [d.render() for d in report.diagnostics]
        dynamic = run_instrumented(info, args, ndrange)
        check = cross_validate(report, dynamic)
        assert any(d.code == "RACE001" for d in check.confirmed)
        assert not check.unreproduced

    @settings(max_examples=8, deadline=None)
    @given(_spec_strategy())
    def test_dropped_id_race_flagged_and_confirmed(self, spec):
        info, args, ndrange = _instantiate(spec, _inject_dropped_id)
        report = _verify(info, args, ndrange)
        codes = {d.code for d in report.diagnostics}
        assert "RACE001" in codes, [d.render() for d in report.diagnostics]
        check = cross_validate(report, run_instrumented(info, args, ndrange))
        assert any(d.code == "RACE001" for d in check.confirmed)
        assert not check.unreproduced

    @settings(max_examples=8, deadline=None)
    @given(_spec_strategy())
    def test_oob_overflow_flagged_and_confirmed(self, spec):
        info, args, ndrange = _instantiate(spec, _inject_oob_over)
        report = _verify(info, args, ndrange)
        oob = [d for d in report.diagnostics if d.code == "OOB001"]
        assert oob, [d.render() for d in report.diagnostics]
        # the witness index really is past the end
        extent = args["C"].size
        assert any(d.payload.get("index", 0) >= extent for d in oob)
        check = cross_validate(report, run_instrumented(info, args, ndrange))
        assert any(d.code == "OOB001" for d in check.confirmed)
        assert not check.unreproduced

    @settings(max_examples=8, deadline=None)
    @given(_spec_strategy())
    def test_oob_underflow_flagged_and_confirmed(self, spec):
        info, args, ndrange = _instantiate(spec, _inject_oob_under)
        report = _verify(info, args, ndrange)
        oob = [d for d in report.diagnostics if d.code == "OOB001"]
        assert oob, [d.render() for d in report.diagnostics]
        assert any(d.payload.get("index", 0) < 0 for d in oob)
        check = cross_validate(report, run_instrumented(info, args, ndrange))
        assert any(d.code == "OOB001" for d in check.confirmed)
        assert not check.unreproduced

    @settings(max_examples=8, deadline=None)
    @given(_spec_strategy())
    def test_divergent_barrier_flagged(self, spec):
        info, args, ndrange = _instantiate(spec, _inject_divergent_barrier)
        report = _verify(info, args, ndrange)
        assert any(d.code == "BAR001" for d in report.diagnostics), \
            [d.render() for d in report.diagnostics]


# -- no false positives on the real kernels -----------------------------------


@pytest.mark.parametrize("workload", scaled_real_workloads(),
                         ids=lambda w: w.key)
def test_registry_kernel_has_zero_actionable_diagnostics(workload):
    info = workload.kernel_info()
    args = workload.full_args(np.random.default_rng(0))
    report = _verify(info, args, workload.ndrange())
    assert report.actionable == [], [d.render() for d in report.actionable]


@pytest.mark.parametrize("workload", scaled_real_workloads(),
                         ids=lambda w: w.key)
def test_registry_clean_verdicts_confirmed_dynamically(workload):
    info = workload.kernel_info()
    args = workload.full_args(np.random.default_rng(0))
    ndrange = workload.ndrange()
    report = _verify(info, args, ndrange)
    check = cross_validate(report, run_instrumented(info, args, ndrange))
    assert check.consistent, vars(check)
