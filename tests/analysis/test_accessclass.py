"""Unit tests for the affine address analysis and access classification."""


from repro.analysis import AccessClass, extract_static_features_from_source
from repro.analysis.accessclass import Coeff
from repro.analysis.scan import scan_kernel
from repro.frontend import analyze_kernel, parse_kernel


def classes(source):
    """Map buffer name -> set of access classes seen for it."""
    scan = scan_kernel(analyze_kernel(parse_kernel(source)))
    out = {}
    for op in scan.mem_ops:
        out.setdefault(op.buffer, set()).add(op.access)
    return out


class TestCoeff:
    def test_literal_arithmetic(self):
        assert (Coeff.of(2) + Coeff.of(3)).literal == 5
        assert (Coeff.of(2) * Coeff.of(3)).literal == 6
        assert (-Coeff.of(2)).literal == -2

    def test_zero_is_empty(self):
        assert Coeff.of(0).is_zero
        assert (Coeff.of(2) - Coeff.of(2)).is_zero

    def test_symbolic_product(self):
        c = Coeff.symbol("n") * Coeff.symbol("m")
        assert not c.is_literal
        assert c.evaluate({"n": 3, "m": 4}) == 12

    def test_symbol_plus_literal(self):
        c = Coeff.symbol("n") + Coeff.of(1)
        assert c.evaluate({"n": 9}) == 10

    def test_is_unit(self):
        assert Coeff.of(1).is_unit
        assert Coeff.of(-1).is_unit
        assert not Coeff.of(2).is_unit
        assert not Coeff.symbol("n").is_unit


class TestPaperWorkedExample:
    """§5.1's example must classify exactly as the paper states."""

    SOURCE = """
    __kernel void example(__global float* A, __global float* B,
                          __global float* C, __global float* D,
                          int N, int M, int c1)
    {
        for (int i = 0; i < N; i++)
            for (int j = 0; j < M; j++)
                D[i][j] = A[i][j] + B[j][i] + C[c1] + C[B[j][i]];
    }
    """

    def test_feature_counts_match_paper(self):
        features = extract_static_features_from_source(self.SOURCE)
        assert features.mem_constant == 1
        assert features.mem_continuous == 2
        assert features.mem_stride == 2
        assert features.mem_random == 1

    def test_class_assignments(self):
        by_buffer = classes(self.SOURCE)
        assert by_buffer["A"] == {AccessClass.CONTINUOUS}
        assert by_buffer["B"] == {AccessClass.STRIDE}
        assert by_buffer["C"] == {AccessClass.CONSTANT, AccessClass.RANDOM}
        assert by_buffer["D"] == {AccessClass.CONTINUOUS}


class TestClassificationRules:
    def test_flat_continuous_by_global_id(self):
        by_buffer = classes(
            "__kernel void f(__global float* A, int n)"
            "{ int i = get_global_id(0); if (i < n) A[i] = 1.0f; }"
        )
        assert by_buffer["A"] == {AccessClass.CONTINUOUS}

    def test_strided_by_global_id(self):
        by_buffer = classes(
            "__kernel void f(__global float* A, int n)"
            "{ int i = get_global_id(0); if (i < n) A[i * 4] = 1.0f; }"
        )
        assert by_buffer["A"] == {AccessClass.STRIDE}

    def test_symbolic_stride(self):
        by_buffer = classes(
            "__kernel void f(__global float* A, int n)"
            "{ int i = get_global_id(0); A[i * n] = 1.0f; }"
        )
        assert by_buffer["A"] == {AccessClass.STRIDE}

    def test_loop_invariant_inside_loop_is_constant(self):
        # tmp[i] inside the j loop: the address does not vary across the
        # loop — Gesummv's accumulator pattern
        by_buffer = classes(
            "__kernel void f(__global float* T, int n)"
            "{ int i = get_global_id(0);"
            "  for (int j = 0; j < n; j++) T[i] = T[i] + 1.0f; }"
        )
        assert by_buffer["T"] == {AccessClass.CONSTANT}

    def test_forward_substitution_through_locals(self):
        by_buffer = classes(
            "__kernel void f(__global float* A, int n)"
            "{ int i = get_global_id(0);"
            "  for (int j = 0; j < n; j++) { int idx = i * n + j; A[idx] = 1.0f; } }"
        )
        assert by_buffer["A"] == {AccessClass.CONTINUOUS}

    def test_indirect_access_is_random(self):
        by_buffer = classes(
            "__kernel void f(__global float* A, __global int* I, int n)"
            "{ int i = get_global_id(0); A[I[i]] = 1.0f; }"
        )
        assert by_buffer["A"] == {AccessClass.RANDOM}
        assert by_buffer["I"] == {AccessClass.CONTINUOUS}

    def test_nonaffine_product_is_random(self):
        by_buffer = classes(
            "__kernel void f(__global float* A, int n)"
            "{ int i = get_global_id(0);"
            "  for (int j = 0; j < n; j++) A[i * j] = 1.0f; }"
        )
        assert by_buffer["A"] == {AccessClass.RANDOM}

    def test_modulo_address_is_random(self):
        by_buffer = classes(
            "__kernel void f(__global float* A, int n)"
            "{ int i = get_global_id(0); A[i % 7] = 1.0f; }"
        )
        assert by_buffer["A"] == {AccessClass.RANDOM}

    def test_shifted_index_is_stride(self):
        by_buffer = classes(
            "__kernel void f(__global float* A, int n)"
            "{ int i = get_global_id(0); A[i << 2] = 1.0f; }"
        )
        assert by_buffer["A"] == {AccessClass.STRIDE}

    def test_negative_unit_stride_is_continuous(self):
        by_buffer = classes(
            "__kernel void f(__global float* A, int n)"
            "{ int i = get_global_id(0); A[n - i] = 1.0f; }"
        )
        assert by_buffer["A"] == {AccessClass.CONTINUOUS}

    def test_local_arrays_not_counted(self):
        source = (
            "__kernel void f(__global float* A, int n)"
            "{ __local int wl[1]; wl[0] = 0; A[get_global_id(0)] = 1.0f; }"
        )
        scan = scan_kernel(analyze_kernel(parse_kernel(source)))
        assert {op.buffer for op in scan.mem_ops} == {"A"}
        assert scan.local_mem_ops == 1

    def test_compound_assignment_counts_load_and_store(self):
        source = (
            "__kernel void f(__global float* A, int n)"
            "{ int i = get_global_id(0); A[i] += 1.0f; }"
        )
        scan = scan_kernel(analyze_kernel(parse_kernel(source)))
        loads = [op for op in scan.mem_ops if not op.is_store]
        stores = [op for op in scan.mem_ops if op.is_store]
        assert len(loads) == 1 and len(stores) == 1


class TestArithmeticCounting:
    def test_float_vs_int_split(self):
        features = extract_static_features_from_source(
            "__kernel void f(__global float* A, int n)"
            "{ int i = get_global_id(0); int k = i * 2 + 1;"
            "  A[k] = A[k] * 2.0f + 1.0f; }"
        )
        assert features.arith_int >= 2      # i*2, +1
        assert features.arith_float == 2    # *2.0f, +1.0f

    def test_math_builtin_counts_as_float(self):
        features = extract_static_features_from_source(
            "__kernel void f(__global float* A)"
            "{ A[get_global_id(0)] = sqrt(2.0f); }"
        )
        assert features.arith_float >= 1


class TestTripCounts:
    def test_static_loop_bound(self):
        scan = scan_kernel(analyze_kernel(parse_kernel(
            "__kernel void f(__global float* A, int n)"
            "{ for (int j = 0; j < n; j++) A[j] = 1.0f; }"
        )))
        (loop,) = scan.loops
        assert not loop.irregular
        assert loop.trip.evaluate({"n": 10.0}) == 10.0

    def test_stepped_loop_bound(self):
        scan = scan_kernel(analyze_kernel(parse_kernel(
            "__kernel void f(__global float* A, int n)"
            "{ for (int j = 0; j < n; j += 2) A[j] = 1.0f; }"
        )))
        (loop,) = scan.loops
        assert loop.trip.evaluate({"n": 10.0}) == 5.0

    def test_inclusive_bound(self):
        scan = scan_kernel(analyze_kernel(parse_kernel(
            "__kernel void f(__global float* A, int n)"
            "{ for (int j = 0; j <= n; j++) A[j] = 1.0f; }"
        )))
        (loop,) = scan.loops
        assert loop.trip.evaluate({"n": 10.0}) == 11.0

    def test_data_dependent_bound_is_irregular(self):
        scan = scan_kernel(analyze_kernel(parse_kernel(
            "__kernel void f(__global int* R, __global float* A, int n)"
            "{ int i = get_global_id(0);"
            "  for (int k = R[i]; k < R[i + 1]; k++) A[k] = 1.0f; }"
        )))
        assert scan.has_irregular_loop

    def test_while_loop_is_irregular(self):
        scan = scan_kernel(analyze_kernel(parse_kernel(
            "__kernel void f(__global float* A, int n)"
            "{ int i = 0; while (i < n) i++; }"
        )))
        assert scan.has_irregular_loop

    def test_nested_trip_multiplier(self):
        scan = scan_kernel(analyze_kernel(parse_kernel(
            "__kernel void f(__global float* A, int n, int m)"
            "{ for (int i = 0; i < n; i++)"
            "    for (int j = 0; j < m; j++) A[i * m + j] = 1.0f; }"
        )))
        store = [op for op in scan.mem_ops if op.is_store][0]
        assert store.executions({"n": 4.0, "m": 5.0}) == 20.0
