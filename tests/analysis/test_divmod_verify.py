"""End-to-end tests for the div/mod-aware verifier and the lint tooling.

The access model decomposes ``id / K`` and ``id % K`` into fresh
quotient/remainder variables with the exact defining system
``id == K*q + r, 0 <= r < K``, which is what lets the specialized race
and OOB passes return real verdicts (not ``unknown``) for the 2-D
transformed variants whose generated schedulers linearize the id space.
This suite checks the proofs land where they matter:

* scheduler-shaped kernels with ``/``/``%`` id math prove *clean*,
* genuinely aliasing quotient addressing still produces RACE001 with a
  concrete two-item witness,
* the registry's 2-D malleable/CPU variants — the entries that sat at
  ``unknown`` in the baseline for four releases — verdict clean,
* the relaxed-claims CPU schedule those race-clean verdicts license
  executes bit-identically to the original kernel, on the scalar
  oracle and the jit tier both, and
* the baseline diff / verdict-stats helpers behind ``dopia lint
  --stats`` classify improvements vs regressions correctly.
"""

import numpy as np
import pytest

from repro.analysis.lint import (
    diff_baseline,
    lint_cpu_variant,
    lint_malleable_variant,
    unknown_entries,
    verdict_summary,
)
from repro.analysis.verify import LaunchSpec, verify_launch
from repro.frontend.parser import parse, parse_kernel
from repro.frontend.semantics import analyze_kernel
from repro.interp import KernelExecutor, NDRange
from repro.transform import make_cpu_kernel
from repro.transform.cpu_codegen import WORKLIST_PARAM
from repro.workloads import scaled_real_workloads


def info_of(source, name=None):
    return analyze_kernel(parse_kernel(source, name), parse(source))


#: A generated-scheduler shape: a 1-D launch decomposed into (row, col)
#: with ``/`` and ``%`` — each id owns exactly one cell.
TILED = """
__kernel void tiled(__global float* A, int nx)
{
    int id = get_global_id(0);
    int x = id % nx;
    int y = id / nx;
    A[y * nx + x] = (float)(x + y);
}
"""

#: Quotient aliasing: ids 2k and 2k+1 both store to slot k — a real race
#: the solver must witness, not a precision loss.
ALIASED = """
__kernel void aliased(__global float* c)
{
    int i = get_global_id(0);
    c[i / 2] = (float)i;
}
"""


class TestDivModProofs:
    def test_tiled_kernel_proved_clean(self):
        info = info_of(TILED)
        report = verify_launch(info, LaunchSpec.from_args(
            NDRange((64,), (16,)), {"A": np.zeros(64), "nx": 8}))
        assert report.verdicts["races"] == "clean"
        assert report.verdicts["oob"] == "clean"

    def test_tiled_kernel_oob_when_buffer_undersized(self):
        info = info_of(TILED)
        report = verify_launch(info, LaunchSpec.from_args(
            NDRange((64,), (16,)), {"A": np.zeros(32), "nx": 8}))
        assert any(d.code == "OOB001" for d in report.diagnostics)

    def test_quotient_aliasing_is_a_witnessed_race(self):
        info = info_of(ALIASED)
        report = verify_launch(info, LaunchSpec.from_args(
            NDRange((16,), (8,)), {"c": np.zeros(8)}))
        races = [d for d in report.diagnostics if d.code == "RACE001"]
        assert races
        payload = races[0].payload
        # the witness pair must actually collide: distinct ids, same slot
        gid_a = payload["witness_a"]["gid"]
        gid_b = payload["witness_b"]["gid"]
        assert gid_a != gid_b
        assert gid_a[0] // 2 == gid_b[0] // 2


#: The registry 2-D entries whose transformed variants previously
#: verdicted ``unknown`` on both specialized passes.
PROVEN_2D = ["2DCONV/12/wg4x4", "FDTD1/1/wg4x4", "FDTD2/1/wg4x4",
             "FDTD3/1/wg4x4", "SYR2K/8/wg4x4"]
FAST_2D = PROVEN_2D[:2]


def workload_by_key(key):
    return {w.key: w for w in scaled_real_workloads()}[key]


class TestRegistry2DVariants:
    @pytest.mark.parametrize("key", FAST_2D)
    def test_variants_proved_clean(self, key):
        workload = workload_by_key(key)
        for report in (lint_malleable_variant(workload),
                       lint_cpu_variant(workload)):
            assert report is not None
            assert report.verdicts["races"] == "clean", report.kernel
            assert report.verdicts["oob"] == "clean", report.kernel

    @pytest.mark.slow
    @pytest.mark.parametrize("key", PROVEN_2D[2:])
    def test_variants_proved_clean_full(self, key):
        self.test_variants_proved_clean(key)


class TestRelaxedClaimsDifferential:
    """The race-clean verdicts on the 2-D CPU variants license the
    relaxed (fetch-add-free) claim schedule; it must stay bit-identical
    to the original kernel on every backend that runs it."""

    @pytest.mark.parametrize("key", FAST_2D)
    @pytest.mark.parametrize("backend", ["scalar", "jit"])
    def test_relaxed_schedule_bit_identical(self, key, backend):
        workload = workload_by_key(key)
        ndrange = workload.ndrange()

        expected = workload.full_args(np.random.default_rng(7))
        KernelExecutor(workload.kernel_info(), expected, ndrange).run()

        cpu = make_cpu_kernel(workload.kernel_info(),
                              work_dim=ndrange.work_dim, claims="relaxed")
        actual = workload.full_args(np.random.default_rng(7))
        actual[WORKLIST_PARAM] = np.zeros(1, dtype=np.int64)
        actual.update(cpu.scheduler_args(
            workload.num_work_groups, ndrange.local_size,
            ndrange.num_groups))
        from repro.interp import make_executor

        make_executor(cpu.info, actual, NDRange((4,), (1,)),
                      backend=backend).run()

        assert actual[WORKLIST_PARAM][0] == 0  # no fetch-add happened
        for name, value in expected.items():
            if isinstance(value, np.ndarray):
                assert value.tobytes() == actual[name].tobytes(), (
                    f"{key} backend={backend}: buffer {name!r} differs")


# -- lint helpers (``--stats`` / baseline diff) -------------------------------


def _document(verdicts_by_kernel):
    return {
        "schema_version": 1,
        "reports": [
            {"kernel": kernel, "verdicts": verdicts, "diagnostics": []}
            for kernel, verdicts in verdicts_by_kernel.items()
        ],
    }


class TestBaselineVerdictDiff:
    def test_improved_and_regressed_classified(self):
        import json

        baseline = _document({
            "a": {"races": "unknown", "oob": "clean"},
            "b": {"races": "clean"},
        })
        current = _document({
            "a": {"races": "clean", "oob": "clean"},
            "b": {"races": "unknown"},
        })
        diff = diff_baseline(json.dumps(current), json.dumps(baseline))
        assert diff.improved == ["a: races: unknown -> clean"]
        assert diff.regressed == ["b: races: clean -> unknown"]
        assert not diff.clean  # a regression fails the gate

    def test_improvement_alone_keeps_gate_green(self):
        import json

        baseline = _document({"a": {"oob": "unknown"}})
        current = _document({"a": {"oob": "clean"}})
        diff = diff_baseline(json.dumps(current), json.dumps(baseline))
        assert diff.improved and not diff.regressed
        assert diff.clean

    def test_verdict_summary_and_unknown_entries(self):
        document = _document({
            "a": {"races": "clean", "oob": "unknown"},
            "b": {"races": "clean", "oob": "clean"},
        })
        assert verdict_summary(document) == {
            "races": {"clean": 2},
            "oob": {"clean": 1, "unknown": 1},
        }
        assert unknown_entries(document) == ["a#oob"]

    def test_committed_baseline_has_no_2d_unknowns(self):
        """The acceptance bar for the div/mod solver: every 2-D
        transformed variant in the committed baseline carries real
        race/OOB verdicts."""
        import json
        from pathlib import Path

        baseline_path = Path(__file__).resolve().parents[2] \
            / "LINT_BASELINE.json"
        document = json.loads(baseline_path.read_text())
        allowlisted = set(json.loads(
            (baseline_path.parent / "LINT_ALLOWLIST.json").read_text()))
        for report in document["reports"]:
            kernel = report["kernel"]
            for pass_name in ("races", "oob"):
                if report["verdicts"].get(pass_name) == "unknown":
                    assert "wg4x4" not in kernel, (kernel, pass_name)
                    assert f"{kernel}#{pass_name}" in allowlisted
