"""Property-based tests (hypothesis) for the analysis substrate."""

from hypothesis import given, settings, strategies as st

from repro.analysis.accessclass import Coeff
from repro.analysis import extract_static_features_from_source
from repro.interp.ndrange import NDRange

coeff_values = st.integers(min_value=-50, max_value=50)
symbols = st.sampled_from(["n", "m", "k"])


@st.composite
def coeffs(draw):
    base = Coeff.of(draw(coeff_values))
    for _ in range(draw(st.integers(min_value=0, max_value=2))):
        base = base + Coeff.symbol(draw(symbols)) * Coeff.of(draw(coeff_values))
    return base


class TestCoeffAlgebra:
    @settings(max_examples=60, deadline=None)
    @given(coeffs(), coeffs())
    def test_addition_commutes(self, a, b):
        env = {"n": 3.0, "m": 5.0, "k": 7.0}
        assert (a + b).evaluate(env) == (b + a).evaluate(env)

    @settings(max_examples=60, deadline=None)
    @given(coeffs(), coeffs(), coeffs())
    def test_distributivity(self, a, b, c):
        env = {"n": 2.0, "m": 3.0, "k": 5.0}
        left = (a * (b + c)).evaluate(env)
        right = (a * b + a * c).evaluate(env)
        assert left == right

    @settings(max_examples=60, deadline=None)
    @given(coeffs())
    def test_negation_is_involution(self, a):
        env = {"n": 2.0, "m": 3.0, "k": 5.0}
        assert (-(-a)).evaluate(env) == a.evaluate(env)

    @settings(max_examples=60, deadline=None)
    @given(coeffs())
    def test_subtraction_from_self_is_zero(self, a):
        assert (a - a).is_zero


class TestFeatureInvariances:
    """Feature extraction must be insensitive to semantics-preserving noise."""

    TEMPLATE = (
        "__kernel void k(__global float* A, __global float* B, int n)"
        "{{ int i = get_global_id(0); if (i < n) {{ {body} }} }}"
    )

    @settings(max_examples=30, deadline=None)
    @given(st.sampled_from([
        "B[i] = A[i];",
        "B[i] = A[i] * 2.0f;",
        "float t = A[i]; B[i] = t;",
    ]), st.sampled_from(["  ", "\t", "\n   ", " /* noise */ "]))
    def test_whitespace_and_comments_irrelevant(self, body, filler):
        clean = self.TEMPLATE.format(body=body)
        noisy = clean.replace(" ", filler, 3)
        assert (
            extract_static_features_from_source(clean)
            == extract_static_features_from_source(noisy)
        )

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=100))
    def test_literal_values_do_not_change_memory_counts(self, value):
        a = extract_static_features_from_source(
            self.TEMPLATE.format(body=f"B[i] = A[i] + {value}.0f;")
        )
        b = extract_static_features_from_source(
            self.TEMPLATE.format(body="B[i] = A[i] + 7.0f;")
        )
        assert a.as_tuple()[:4] == b.as_tuple()[:4]

    @settings(max_examples=20, deadline=None)
    @given(st.sampled_from(["A", "Matrix", "input_buffer", "xs"]))
    def test_renaming_buffers_is_irrelevant(self, name):
        base = self.TEMPLATE.format(body="B[i] = A[i];")
        renamed = base.replace("A", name)
        assert (
            extract_static_features_from_source(base)
            == extract_static_features_from_source(renamed)
        )


class TestNDRangeProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=6),
    )
    def test_group_linearisation_bijective_2d(self, gx, gy, lx, ly):
        nd = NDRange((gx * lx, gy * ly), (lx, ly))
        seen = set()
        for group in nd.group_ids():
            linear = nd.linear_group_id(group)
            assert nd.group_from_linear(linear) == group
            seen.add(linear)
        assert seen == set(range(nd.total_groups))

    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=1, max_value=16), st.integers(min_value=1, max_value=16))
    def test_item_counts_consistent(self, groups, wg):
        nd = NDRange(groups * wg, wg)
        assert nd.total_work_items == nd.total_groups * nd.work_items_per_group
        assert len(list(nd.local_ids())) == nd.work_items_per_group
