"""Unit tests for Table-1 feature vectors and profiles."""

import numpy as np

from repro.analysis import (
    FEATURE_NAMES,
    N_FEATURES,
    AccessClass,
    assemble_feature_vector,
    extract_static_features,
    feature_matrix,
    profile_kernel,
)
from repro.frontend import analyze_kernel, parse_kernel
from repro.workloads.polybench import ATAX2_SRC, GESUMMV_SRC, MVT2_SRC


def info_of(source):
    return analyze_kernel(parse_kernel(source))


class TestFeatureVector:
    def test_vector_has_eleven_entries(self):
        assert N_FEATURES == 11
        assert len(FEATURE_NAMES) == 11

    def test_assembly_order_matches_table1(self):
        info = info_of(GESUMMV_SRC)
        static = extract_static_features(info)
        vec = assemble_feature_vector(static, 1, 16384, 256, 0.75, 0.5)
        assert vec[0] == static.mem_constant
        assert vec[5] == static.arith_float
        assert vec[6] == 1
        assert vec[7] == 16384
        assert vec[8] == 256
        assert vec[9] == 0.75
        assert vec[10] == 0.5

    def test_feature_matrix_rows_vary_only_in_config(self):
        info = info_of(GESUMMV_SRC)
        static = extract_static_features(info)
        configs = np.array([[0.0, 1.0], [1.0, 0.0], [0.5, 0.5]])
        rows = feature_matrix(static, 1, 1024, 64, configs)
        assert rows.shape == (3, 11)
        assert np.all(rows[0, :9] == rows[2, :9])
        assert np.all(rows[:, 9:] == configs)

    def test_mvt2_and_atax2_feature_alias(self):
        """§9.4: the static analysis produces (nearly) identical feature
        vectors for MVT2 and ATAX2 despite different performance behaviour
        — the paper's explanation for Dopia's one misprediction.  Our
        analyzer differs from the paper's only in ATAX2's top-level
        ``y[j] = 0`` initialiser (one extra continuous store); the hot
        loop-body signature aliases exactly."""
        f_mvt2 = extract_static_features(info_of(MVT2_SRC))
        f_atax2 = extract_static_features(info_of(ATAX2_SRC))
        assert (
            f_mvt2.mem_constant, f_mvt2.mem_stride, f_mvt2.mem_random,
            f_mvt2.arith_int, f_mvt2.arith_float,
        ) == (
            f_atax2.mem_constant, f_atax2.mem_stride, f_atax2.mem_random,
            f_atax2.arith_int, f_atax2.arith_float,
        )
        assert abs(f_mvt2.mem_continuous - f_atax2.mem_continuous) <= 1


class TestProfiles:
    def test_gesummv_traffic_classes(self):
        profile = profile_kernel(info_of(GESUMMV_SRC), {"n": 1024}, 1024, 64)
        assert AccessClass.CONTINUOUS in profile.traffic
        assert AccessClass.CONSTANT in profile.traffic
        # two matrix rows of n floats each dominate the per-item traffic
        assert profile.bytes_per_item >= 2 * 1024 * 4

    def test_profile_scales_with_problem_size(self):
        small = profile_kernel(info_of(GESUMMV_SRC), {"n": 512}, 512, 64)
        large = profile_kernel(info_of(GESUMMV_SRC), {"n": 2048}, 2048, 64)
        assert large.bytes_per_item > 3 * small.bytes_per_item

    def test_irregular_hint_controls_trip_counts(self):
        source = (
            "__kernel void f(__global int* R, __global float* A, int n)"
            "{ int i = get_global_id(0);"
            "  for (int k = R[i]; k < R[i + 1]; k++) A[k] += 1.0f; }"
        )
        lo = profile_kernel(info_of(source), {"n": 64}, 64, 16, irregular_trip_hint=4)
        hi = profile_kernel(info_of(source), {"n": 64}, 64, 16, irregular_trip_hint=64)
        assert hi.bytes_per_item > lo.bytes_per_item
        assert lo.irregular and hi.irregular

    def test_shared_flag_for_broadcast_vector(self):
        profile = profile_kernel(info_of(GESUMMV_SRC), {"n": 256}, 256, 64)
        shared = [op for op in profile.op_profiles if op.shared]
        assert any(op.buffer == "x" for op in shared)
        assert all(op.buffer not in ("A", "B") for op in shared)

    def test_warp_stride_of_row_major_matrix(self):
        profile = profile_kernel(info_of(GESUMMV_SRC), {"n": 256}, 256, 64)
        a_ops = [op for op in profile.op_profiles if op.buffer == "A"]
        assert a_ops[0].warp_stride_elems == 256.0   # row length
        assert a_ops[0].temporal_stride_elems == 1.0  # streaming along j

    def test_flop_counts_positive_for_float_kernel(self):
        profile = profile_kernel(info_of(GESUMMV_SRC), {"n": 128}, 128, 64)
        assert profile.flops_float_per_item > 0
        assert profile.flops_int_per_item > 0  # index arithmetic

    def test_work_group_geometry(self):
        profile = profile_kernel(info_of(GESUMMV_SRC), {"n": 512}, 512, 64)
        assert profile.num_work_groups == 8
        assert profile.local_size == 64
