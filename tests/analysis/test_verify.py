"""Unit tests for the static kernel verifier and its host-API wiring."""

import json

import numpy as np
import pytest

from repro.analysis.diagnostics import (
    SCHEMA_VERSION,
    Diagnostic,
    Severity,
    VerifyReport,
    report_to_json,
)
from repro.analysis.linsolve import solve_linear, solve_with_nonzero
from repro.analysis.lint import diff_baseline, lint_workloads
from repro.analysis.verify import (
    LaunchSpec,
    VerifyError,
    apply_policy,
    current_policy,
    verify_kernel,
    verify_launch,
    verify_launch_cached,
)
from repro.frontend.parser import parse, parse_kernel
from repro.frontend.semantics import analyze_kernel
from repro.interp.ndrange import NDRange


def info_of(source, name=None):
    return analyze_kernel(parse_kernel(source, name), parse(source))


def launch_for(info, ndrange, **args):
    return LaunchSpec.from_args(ndrange, args)


RACY = """
__kernel void racy(__global float* c) {
    int i = get_global_id(0);
    c[0] = i;
}
"""

CLEAN = """
__kernel void ok(__global float* c) {
    int i = get_global_id(0);
    c[i] = i;
}
"""

LOCAL_SHIFT = """
__kernel void shift(__global float* out) {
    __local float s[8];
    int l = get_local_id(0);
    int i = get_global_id(0);
    s[l] = l;
    out[i] = s[l] + 1.0f;
    s[l + 1] = l;
}
"""

DIVERGENT_BARRIER = """
__kernel void bar(__global float* a, int n) {
    int i = get_global_id(0);
    if (i < n) { barrier(1); }
    a[i] = i;
}
"""


# -- linsolve -----------------------------------------------------------------


class TestLinearSolver:
    def test_sat_with_witness(self):
        v = solve_linear({"x": 2, "y": -3}, -1, {"x": (0, 5), "y": (0, 5)})
        assert v.is_sat
        x, y = v.witness["x"], v.witness["y"]
        assert 2 * x - 3 * y - 1 == 0

    def test_unsat_by_gcd(self):
        # 2x + 4y == 1 has no integer solution
        v = solve_linear({"x": 2, "y": 4}, -1, {"x": (0, 9), "y": (0, 9)})
        assert v.is_unsat

    def test_unsat_by_interval(self):
        v = solve_linear({"x": 1}, -100, {"x": (0, 9)})
        assert v.is_unsat

    def test_empty_box_is_unsat(self):
        v = solve_linear({"x": 1}, 0, {"x": (3, 2)})
        assert v.is_unsat

    def test_budget_exhaustion_is_unknown(self):
        terms = {f"v{i}": (2 * i + 3) for i in range(8)}
        bounds = {f"v{i}": (-50, 50) for i in range(8)}
        v = solve_linear(terms, -1, bounds, node_budget=3)
        assert v.status == "unknown"

    def test_nonzero_constraint(self):
        # x - y == 0 with x != 0 requires x == y != 0
        v = solve_with_nonzero({"x": 1, "y": -1}, 0,
                               {"x": (0, 3), "y": (0, 3)}, nonzero=["x"])
        assert v.is_sat
        assert v.witness["x"] == v.witness["y"] != 0

    def test_extra_nonzero_can_make_unsat(self):
        # x == 0 forced by the equation, but x must be nonzero
        v = solve_with_nonzero({"x": 1}, 0, {"x": (-3, 3)}, nonzero=["x"])
        assert v.is_unsat


# -- diagnostics model --------------------------------------------------------


class TestDiagnostics:
    def test_json_document_is_stable(self):
        report = VerifyReport(kernel="k")
        report.extend([
            Diagnostic.at("OOB001", "k", "b", severity=Severity.ERROR),
            Diagnostic.at("BAR001", "k", "a"),
        ])
        doc1 = report_to_json([report])
        doc2 = report_to_json([report])
        assert doc1 == doc2
        data = json.loads(doc1)
        assert data["schema_version"] == SCHEMA_VERSION
        codes = [d["code"] for d in data["reports"][0]["diagnostics"]]
        assert codes == ["OOB001", "BAR001"]  # errors sort before warnings

    def test_actionable_excludes_info(self):
        report = VerifyReport(kernel="k")
        report.extend([Diagnostic.at("VEC001", "k", "v")])
        assert report.actionable == []
        assert len(report.infos) == 1


# -- verifier passes ----------------------------------------------------------


class TestVerifyKernel:
    def test_divergent_barrier_warns(self):
        report = verify_kernel(info_of(DIVERGENT_BARRIER))
        assert any(d.code == "BAR001" for d in report.diagnostics)
        assert report.verdicts["barriers"] == "diagnosed"

    def test_id_invariant_store_warns_statically(self):
        report = verify_kernel(info_of(RACY))
        assert any(d.code == "RACE010" for d in report.diagnostics)

    def test_clean_kernel(self):
        report = verify_kernel(info_of(CLEAN))
        assert report.actionable == []


class TestVerifyLaunch:
    def test_global_race_diagnosed_with_witness(self):
        info = info_of(RACY)
        report = verify_launch(
            info, launch_for(info, NDRange((8,), (4,)), c=np.zeros(8)))
        races = [d for d in report.diagnostics if d.code == "RACE001"]
        assert races
        payload = races[0].payload
        assert payload["buffer"] == "c"
        assert payload["witness_a"]["gid"] != payload["witness_b"]["gid"]
        assert report.verdicts["races"] == "diagnosed"

    def test_local_race_and_oob_diagnosed(self):
        info = info_of(LOCAL_SHIFT)
        report = verify_launch(
            info, launch_for(info, NDRange((8,), (8,)), out=np.zeros(8)))
        codes = {d.code for d in report.diagnostics}
        assert "RACE002" in codes  # s[l] vs s[l+1] overlap
        assert "OOB002" in codes   # s[7 + 1] past the 8-element array

    def test_clean_launch_proves_all_passes(self):
        info = info_of(CLEAN)
        report = verify_launch(
            info, launch_for(info, NDRange((8,), (4,)), c=np.zeros(8)))
        assert report.actionable == []
        assert report.verdicts["races"] == "clean"
        assert report.verdicts["oob"] == "clean"

    def test_undersized_buffer_is_oob(self):
        info = info_of(CLEAN)
        report = verify_launch(
            info, launch_for(info, NDRange((8,), (4,)), c=np.zeros(4)))
        oob = [d for d in report.diagnostics if d.code == "OOB001"]
        assert oob
        assert oob[0].payload["index"] >= 4

    def test_cache_returns_same_report(self):
        info = info_of(CLEAN)
        spec = launch_for(info, NDRange((8,), (4,)), c=np.zeros(8))
        first = verify_launch_cached(info, spec)
        second = verify_launch_cached(info, spec)
        assert first is second
        other = verify_launch_cached(
            info, launch_for(info, NDRange((16,), (4,)), c=np.zeros(16)))
        assert other is not first


# -- policy gate --------------------------------------------------------------


class TestPolicy:
    def test_default_is_off(self, monkeypatch):
        monkeypatch.delenv("DOPIA_VERIFY", raising=False)
        assert current_policy() == "off"

    def test_invalid_value_is_off(self, monkeypatch):
        monkeypatch.setenv("DOPIA_VERIFY", "bogus")
        assert current_policy() == "off"

    def test_raise_policy_raises_on_errors(self):
        info = info_of(RACY)
        report = verify_launch(
            info, launch_for(info, NDRange((8,), (4,)), c=np.zeros(8)))
        with pytest.raises(VerifyError) as excinfo:
            apply_policy(report, "raise")
        assert excinfo.value.report is report

    def test_warn_policy_prints_and_returns(self, capsys):
        info = info_of(RACY)
        report = verify_launch(
            info, launch_for(info, NDRange((8,), (4,)), c=np.zeros(8)))
        apply_policy(report, "warn")
        assert "RACE001" in capsys.readouterr().err


# -- host-API wiring ----------------------------------------------------------


class TestWiring:
    def _context(self):
        from repro.cl.api import create_context

        return create_context("skylake")

    def test_build_populates_reports_under_warn(self, monkeypatch, capsys):
        monkeypatch.setenv("DOPIA_VERIFY", "warn")
        ctx = self._context()
        prog = ctx.create_program_with_source(DIVERGENT_BARRIER).build()
        assert "bar" in prog.verify_reports
        assert any(d.code == "BAR001"
                   for d in prog.verify_reports["bar"].diagnostics)
        assert "BAR001" in capsys.readouterr().err

    def test_build_skips_verification_when_off(self, monkeypatch):
        monkeypatch.delenv("DOPIA_VERIFY", raising=False)
        ctx = self._context()
        prog = ctx.create_program_with_source(DIVERGENT_BARRIER).build()
        assert prog.verify_reports == {}

    def test_enqueue_raises_on_racy_kernel(self, monkeypatch):
        from repro.cl.api import create_command_queue

        monkeypatch.setenv("DOPIA_VERIFY", "raise")
        ctx = self._context()
        prog = ctx.create_program_with_source(RACY).build()
        kernel = prog.create_kernel("racy")
        kernel.set_args(ctx.create_buffer(np.zeros(8)))
        queue = create_command_queue(ctx, ctx.devices[0])
        with pytest.raises(VerifyError):
            queue.enqueue_nd_range_kernel(kernel, (8,), (4,))

    def test_enqueue_allows_clean_kernel(self, monkeypatch):
        from repro.cl.api import create_command_queue

        monkeypatch.setenv("DOPIA_VERIFY", "raise")
        ctx = self._context()
        prog = ctx.create_program_with_source(CLEAN).build()
        kernel = prog.create_kernel("ok")
        buffer = ctx.create_buffer(np.zeros(8))
        kernel.set_args(buffer)
        queue = create_command_queue(ctx, ctx.devices[0])
        queue.enqueue_nd_range_kernel(kernel, (8,), (4,))
        assert buffer.array[3] == 3.0

    def test_serve_admission_gate(self, monkeypatch):
        from repro.serve.server import DopiaServer, _PreparedKernel

        monkeypatch.setenv("DOPIA_VERIFY", "raise")
        info = info_of(RACY)
        prepared = _PreparedKernel(workload_key="t", info=info, static=None)
        with pytest.raises(VerifyError):
            DopiaServer._verify_admission(
                prepared, NDRange((8,), (4,)), {"c": np.zeros(8)})


# -- lint ---------------------------------------------------------------------


class TestLint:
    def test_single_workload_report(self):
        reports = lint_workloads(["GESUMMV/24/wg8"])
        assert len(reports) == 1
        assert reports[0].kernel == "GESUMMV/24/wg8"
        assert reports[0].actionable == []

    def test_unknown_workload_key(self):
        with pytest.raises(KeyError):
            lint_workloads(["NOPE"])

    def test_diff_baseline_detects_new_and_removed(self):
        clean = VerifyReport(kernel="k")
        dirty = VerifyReport(kernel="k")
        dirty.extend([Diagnostic.at("OOB001", "k", "boom",
                                    severity=Severity.ERROR)])
        base = report_to_json([clean])
        now = report_to_json([dirty])
        diff = diff_baseline(now, base)
        assert not diff.clean and len(diff.new) == 1
        reverse = diff_baseline(base, now)
        assert reverse.clean and len(reverse.removed) == 1

    def test_committed_baseline_matches(self):
        from pathlib import Path

        baseline_path = Path(__file__).resolve().parents[2] / "LINT_BASELINE.json"
        reports = lint_workloads(variants=True)
        diff = diff_baseline(report_to_json(reports),
                             baseline_path.read_text())
        if diff.clean and not diff.removed:
            return
        lines = ["committed LINT_BASELINE.json is out of date:"]
        if diff.schema_changed:
            lines.append("  schema version changed")
        lines.extend(f"  NEW diagnostic: {entry}" for entry in diff.new)
        lines.extend(f"  removed from baseline: {entry}"
                     for entry in diff.removed)
        lines.append("  regenerate deliberately with: "
                     "python -m repro lint --variants --json "
                     "> LINT_BASELINE.json")
        pytest.fail("\n".join(lines))
