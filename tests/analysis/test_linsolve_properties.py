"""Property tests: the constraint solver against brute-force enumeration.

``solve_system`` is the foundation of every race/OOB proof the verifier
emits, so it is cross-checked here the only way a decision procedure can
be: against exhaustive enumeration over small boxes.  SAT witnesses must
satisfy every constraint and every box; UNSAT claims must survive a full
sweep of the box product; ``unknown`` is only acceptable when the node
budget was deliberately starved.

The div/mod section mirrors the encoding the access model emits for
generated 2-D schedulers (``q = id / K``, ``r = id % K`` becomes
``id - K*q - r == 0, 0 <= r <= K-1``) and checks the solver agrees with
direct enumeration of ``id`` alone.
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.linsolve import (
    OPS,
    SAT,
    UNSAT,
    Constraint,
    Verdict,
    solve_linear,
    solve_system,
)

VAR_NAMES = ("x", "y", "z")


def brute_force(constraints, bounds):
    """Every assignment in the box product satisfying all constraints."""
    names = sorted(bounds)
    ranges = [range(bounds[n][0], bounds[n][1] + 1) for n in names]
    for values in itertools.product(*ranges):
        env = dict(zip(names, values))
        if all(c.holds(sum(coeff * env[n] for n, coeff in c.terms.items())
                       + c.const)
               for c in constraints):
            yield env


def assert_witness_valid(verdict: Verdict, constraints, bounds):
    assert verdict.witness is not None
    for name, (lo, hi) in bounds.items():
        value = verdict.witness.get(name)
        assert value is not None and lo <= value <= hi, (name, value)
    for constraint in constraints:
        total = sum(coeff * verdict.witness[name]
                    for name, coeff in constraint.terms.items())
        assert constraint.holds(total + constraint.const), constraint


@st.composite
def small_system(draw):
    n_vars = draw(st.integers(min_value=1, max_value=3))
    names = VAR_NAMES[:n_vars]
    bounds = {}
    for name in names:
        lo = draw(st.integers(min_value=-4, max_value=3))
        bounds[name] = (lo, lo + draw(st.integers(min_value=0, max_value=5)))
    constraints = []
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        used = draw(st.lists(st.sampled_from(names), min_size=1,
                             max_size=n_vars, unique=True))
        terms = {name: draw(st.integers(min_value=-5, max_value=5)
                            .filter(bool))
                 for name in used}
        constraints.append(Constraint(
            terms=terms,
            const=draw(st.integers(min_value=-12, max_value=12)),
            op=draw(st.sampled_from(OPS)),
        ))
    return constraints, bounds


class TestAgainstBruteForce:
    @settings(max_examples=300, deadline=None)
    @given(system=small_system())
    def test_solver_matches_enumeration(self, system):
        constraints, bounds = system
        verdict = solve_system(constraints, bounds)
        # boxes this small never exhaust the default budget
        assert verdict.status in (SAT, UNSAT)
        if verdict.is_sat:
            assert_witness_valid(verdict, constraints, bounds)
        else:
            assert next(iter(brute_force(constraints, bounds)), None) is None

    @settings(max_examples=100, deadline=None)
    @given(system=small_system())
    def test_solve_linear_wrapper_agrees(self, system):
        """The historical single-equation entry point must agree with the
        system solver it now wraps (extra constraints attached)."""
        constraints, bounds = system
        head, *rest = constraints
        if head.op != "==":
            head = Constraint(terms=head.terms, const=head.const, op="==")
            constraints = [head, *rest]
        wrapped = solve_linear(head.terms, head.const, bounds, extra=rest)
        direct = solve_system(constraints, bounds)
        assert wrapped.status == direct.status


class TestDivModEncoding:
    @settings(max_examples=150, deadline=None)
    @given(
        hi=st.integers(min_value=0, max_value=40),
        k=st.integers(min_value=1, max_value=9),
        coeff_q=st.integers(min_value=-3, max_value=3),
        coeff_r=st.integers(min_value=-3, max_value=3),
        const=st.integers(min_value=-20, max_value=20),
        op=st.sampled_from(OPS),
    )
    def test_matches_direct_enumeration_of_id(self, hi, k, coeff_q,
                                              coeff_r, const, op):
        """Probe constraints over (q, r) decide exactly like enumerating
        ``id`` and computing ``id // k`` / ``id % k`` directly."""
        bounds = {
            "id": (0, hi),
            "q": (0, hi // k),
            "r": (0, min(k - 1, hi)),
        }
        defining = Constraint({"id": 1, "q": -k, "r": -1}, 0, "==")
        probe = Constraint({"q": coeff_q, "r": coeff_r}, const, op)
        verdict = solve_system([defining, probe], bounds)
        truth = any(
            probe.holds(coeff_q * (i // k) + coeff_r * (i % k) + const)
            for i in range(hi + 1))
        assert verdict.status == (SAT if truth else UNSAT)
        if verdict.is_sat:
            witness = verdict.witness
            assert witness["q"] == witness["id"] // k
            assert witness["r"] == witness["id"] % k

    @settings(max_examples=60, deadline=None)
    @given(
        hi=st.integers(min_value=0, max_value=30),
        k1=st.integers(min_value=2, max_value=6),
        k2=st.integers(min_value=2, max_value=6),
        target=st.integers(min_value=0, max_value=10),
    )
    def test_chained_decomposition(self, hi, k1, k2, target):
        """``(id / k1) % k2 == target`` via a chained (q2, r2) pair over
        the first quotient — the shape 2-D-in-1-D schedulers produce."""
        bounds = {
            "id": (0, hi),
            "q1": (0, hi // k1),
            "r1": (0, min(k1 - 1, hi)),
            "q2": (0, (hi // k1) // k2),
            "r2": (0, min(k2 - 1, hi // k1)),
        }
        system = [
            Constraint({"id": 1, "q1": -k1, "r1": -1}, 0, "=="),
            Constraint({"q1": 1, "q2": -k2, "r2": -1}, 0, "=="),
            Constraint({"r2": 1}, -target, "=="),
        ]
        verdict = solve_system(system, bounds)
        truth = any((i // k1) % k2 == target for i in range(hi + 1))
        assert verdict.status == (SAT if truth else UNSAT)

    def test_same_group_claims_are_disjoint(self):
        """The canonical race query: two distinct ids in one 4x4 tile
        cannot produce the same (row, col) pair — UNSAT by congruence."""
        bounds = {
            "idA": (0, 15), "qA": (0, 3), "rA": (0, 3),
            "idB": (0, 15), "qB": (0, 3), "rB": (0, 3),
        }
        system = [
            Constraint({"idA": 1, "qA": -4, "rA": -1}, 0, "=="),
            Constraint({"idB": 1, "qB": -4, "rB": -1}, 0, "=="),
            # same address: 16*q + r equal on both sides
            Constraint({"qA": 16, "rA": 1, "qB": -16, "rB": -1}, 0, "=="),
            # distinct work-items
            Constraint({"idA": 1, "idB": -1}, 0, "!="),
        ]
        assert solve_system(system, bounds).is_unsat

    def test_budget_starvation_is_unknown_not_wrong(self):
        bounds = {f"v{i}": (-30, 30) for i in range(6)}
        system = [Constraint({f"v{i}": 2 * i + 3 for i in range(6)}, -1,
                             "==")]
        verdict = solve_system(system, bounds, node_budget=2)
        assert verdict.status == "unknown"
        assert verdict.nodes >= 2
