"""The headline concurrency stress harness (ISSUE tentpole).

Barrier-synchronised clients hammer one :class:`DopiaServer` and the
suite proves the three serving guarantees:

1. **bit identity** — N concurrent clients produce buffers bit-identical
   to the same launches served one at a time, on both interpreter
   backends;
2. **exact coverage** — no work-group is lost or duplicated under
   concurrency (every launch's schedule trace covers exactly its
   ND-range);
3. **isolation** — per-client buffers never bleed into each other (each
   client's outputs equal its own serial reference, not a mixture).
"""

import threading

import pytest

from repro.serve import DopiaServer
from repro.sim import KAVERI
from repro.workloads import SCALED_REAL_FACTORIES

CLIENTS = 8
BACKENDS = ("vector", "scalar")


def buffer_bytes(args):
    """Bit-exact signature of every array argument, name-keyed."""
    return {
        name: (value.dtype.str, value.shape, value.tobytes())
        for name, value in args.items()
        if hasattr(value, "tobytes")
    }


def serve_serially(model, backend, client_ids):
    """Oracle: every (client, workload) launch served one at a time.

    Returns ``{(client_id, kernel_key): buffer signature after launch}``.
    """
    reference = {}
    with DopiaServer(KAVERI, model, workers=1, backend=backend) as server:
        for client in client_ids:
            session = server.session(f"serial-{client}")
            for key, factory in SCALED_REAL_FACTORIES.items():
                workload = factory()
                args = workload.full_args(rng=client)
                result = session.launch(workload, args=args).result(timeout=120)
                assert result.trace is not None
                reference[(client, key)] = buffer_bytes(args)
    return reference


@pytest.mark.parametrize("backend", BACKENDS)
def test_concurrent_clients_bit_identical_to_serial(trained_model, backend):
    """8 barrier-synced clients x all 14 registry kernels == serial run."""
    client_ids = list(range(CLIENTS))
    reference = serve_serially(trained_model, backend, client_ids)

    barrier = threading.Barrier(CLIENTS)
    outputs = {}
    coverage = {}
    errors = []
    lock = threading.Lock()

    def client_loop(client):
        try:
            session = server.session(f"stress-{client}")
            launches = []
            for key, factory in SCALED_REAL_FACTORIES.items():
                workload = factory()
                launches.append((key, workload, workload.full_args(rng=client)))
            barrier.wait()  # all clients submit at the same instant
            handles = [(key, workload, args,
                        session.launch(workload, args=args))
                       for key, workload, args in launches]
            for key, workload, args, handle in handles:
                result = handle.result(timeout=120)
                with lock:
                    outputs[(client, key)] = buffer_bytes(args)
                    coverage[(client, key)] = (
                        sorted(result.trace.cpu_groups + result.trace.gpu_groups),
                        workload.num_work_groups,
                    )
        except BaseException as error:  # noqa: BLE001 - re-raised below
            with lock:
                errors.append(error)
            try:
                barrier.abort()
            except threading.BrokenBarrierError:
                pass

    with DopiaServer(KAVERI, trained_model, workers=CLIENTS,
                     backend=backend) as server:
        threads = [threading.Thread(target=client_loop, args=(client,))
                   for client in client_ids]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    if errors:
        raise errors[0]

    # guarantee 2: every launch covered its ND-range exactly once
    assert len(coverage) == CLIENTS * len(SCALED_REAL_FACTORIES)
    for (client, key), (claimed, num_groups) in coverage.items():
        assert claimed == list(range(num_groups)), (client, key)

    # guarantees 1 + 3: bit-identical to each client's own serial reference
    assert outputs.keys() == reference.keys()
    for launch_key in reference:
        assert outputs[launch_key] == reference[launch_key], launch_key

    # server-side accounting survived the stampede
    with server.stats._lock:
        assert server.stats.completed == CLIENTS * len(SCALED_REAL_FACTORIES)
        assert server.stats.failed == 0
    assert server.ledger.in_flight == 0


def test_concurrent_sessions_unique_names(trained_model):
    """Racing session() calls never hand out duplicate auto-names."""
    with DopiaServer(KAVERI, trained_model, workers=1) as server:
        names = []
        lock = threading.Lock()
        barrier = threading.Barrier(CLIENTS)

        def open_session():
            barrier.wait()
            session = server.session()
            with lock:
                names.append(session.name)

        threads = [threading.Thread(target=open_session) for _ in range(CLIENTS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(set(names)) == CLIENTS
        with pytest.raises(ValueError):
            server.session(names[0])


def test_closed_server_rejects_launches(trained_model):
    from repro.serve.server import ServeError

    server = DopiaServer(KAVERI, trained_model, workers=1)
    session = server.session()
    server.close()
    workload = SCALED_REAL_FACTORIES["GESUMMV"]()
    with pytest.raises(ServeError):
        session.launch(workload)
