"""Shared-memory lifecycle: round-trips, aliasing, and leak-freedom.

Three promises from :mod:`repro.serve.shm` get locked down here:

1. **bit identity** — an argument dict shared through an arena and
   re-attached (in-process or across a fork) is byte-for-byte the
   original, scalars included;
2. **aliasing survives the wire** — overlapping views of one buffer map
   to overlapping ranges of one segment, so a write through any view is
   visible through every other (the shard-local hazard matcher depends
   on exactly this);
3. **nothing leaks** — ``/dev/shm`` is clean after a clean shutdown,
   after a dropped (never-closed) arena, and after a SIGKILLed worker;
   and the whole data path stays silent on stderr: any resource-tracker
   noise ("leaked shared_memory", KeyError tracebacks) fails the suite.
"""

import gc
import os
import signal
import subprocess
import sys
import time
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.serve import ShardedServer
from repro.serve.shm import (
    SegmentCache,
    ShmArena,
    attach_args,
    list_segments,
    sweep_orphans,
)
from repro.sim import KAVERI
from repro.workloads import SCALED_REAL_FACTORIES

REPO_SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


# ---------------------------------------------------------------------------
# Round-trips and aliasing
# ---------------------------------------------------------------------------


def test_share_attach_round_trip_bit_identity():
    arena = ShmArena()
    rng = np.random.default_rng(7)
    args = {
        "a": rng.uniform(-1, 1, 257),                 # odd size: padding
        "b": rng.integers(0, 1 << 30, 64, dtype=np.int32),
        "c": rng.uniform(-1, 1, (8, 8)).astype(np.float32),
        "n": 42,
        "scale": 0.75,
    }
    shared, live = arena.share(args)
    cache = SegmentCache(owner=False)
    try:
        attached = attach_args(shared, cache)
        assert set(attached) == set(args)
        for name in ("a", "b", "c"):
            assert attached[name].dtype == args[name].dtype
            assert attached[name].shape == args[name].shape
            assert attached[name].tobytes() == args[name].tobytes()
            assert live[name].tobytes() == args[name].tobytes()
        assert attached["n"] == 42
        assert attached["scale"] == 0.75
        # the descriptor is tiny: one segment, O(1) in buffer size
        assert len(shared.segment_names) == 1
    finally:
        cache.close_all()
        arena.close()
    assert list_segments(arena.prefix) == []


def test_view_aliasing_round_trip():
    """Overlapping views share bytes on both sides of the attach."""
    arena = ShmArena()
    cache = SegmentCache(owner=False)
    try:
        base = arena.share_buffers(
            {"base": np.arange(64, dtype=np.float32)})["base"]
        args = {"whole": base, "head": base[:16], "tail": base[48:]}
        shared, live = arena.share(args)
        # already-owned views are referenced in place: no second segment
        assert len(arena) == 1
        attached = attach_args(shared, cache)
        assert attached["whole"].tobytes() == base.tobytes()

        # write through the attached head -> visible through the
        # attached whole AND through the owner's original view
        attached["head"][:] = -1.0
        np.testing.assert_array_equal(attached["whole"][:16], -1.0)
        np.testing.assert_array_equal(base[:16], -1.0)
        np.testing.assert_array_equal(live["head"], -1.0)

        # and the other direction: owner writes, attacher observes
        base[48:] = 9.0
        np.testing.assert_array_equal(attached["tail"], 9.0)
    finally:
        cache.close_all()
        arena.close()


def test_segment_cache_maps_each_segment_once():
    arena = ShmArena()
    cache = SegmentCache(owner=False)
    try:
        shared, _ = arena.share({"a": np.zeros(8), "b": np.ones(8)})
        first = attach_args(shared, cache)
        second = attach_args(shared, cache)
        assert len(cache) == 1
        # one mapping -> one base address -> views alias across attaches
        first["a"][0] = 5.0
        assert second["a"][0] == 5.0
    finally:
        cache.close_all()
        arena.close()


# ---------------------------------------------------------------------------
# Lifecycle: /dev/shm stays clean
# ---------------------------------------------------------------------------


def test_dropped_arena_finalizer_unlinks_segments():
    arena = ShmArena()
    prefix = arena.prefix
    arena.share({"a": np.zeros(128)})
    assert len(list_segments(prefix)) == 1
    del arena                      # never closed: the finalizer's job
    gc.collect()
    assert list_segments(prefix) == []


def test_sweep_orphans_removes_only_the_given_prefix():
    orphan = shared_memory.SharedMemory(
        name=f"dopia-orphan-{os.getpid()}", create=True, size=64)
    bystander = shared_memory.SharedMemory(
        name=f"dopia-bystander-{os.getpid()}", create=True, size=64)
    try:
        # simulate the owner dying without cleanup: the /dev/shm entry
        # persists but no live tracker knows the name
        swept = sweep_orphans(f"dopia-orphan-{os.getpid()}")
        assert swept == [f"dopia-orphan-{os.getpid()}"]
        assert list_segments(f"dopia-orphan-{os.getpid()}") == []
        # a second sweep finds nothing; the bystander is untouched
        assert sweep_orphans(f"dopia-orphan-{os.getpid()}") == []
        assert list_segments(f"dopia-bystander-{os.getpid()}") \
            == [f"dopia-bystander-{os.getpid()}"]
    finally:
        from multiprocessing import resource_tracker
        orphan.close()
        # this process created the "orphan" (to simulate a dead owner),
        # so balance its tracker registration by hand — the swept file
        # is gone and ``unlink()`` would raise before unregistering
        try:
            resource_tracker.unregister(f"/{orphan.name}", "shared_memory")
        except Exception:  # noqa: BLE001 - tracker absent on some platforms
            pass
        bystander.close()
        try:
            bystander.unlink()
        except FileNotFoundError:
            pass


def test_sharded_server_clean_shutdown_leaves_shm_clean(trained_model):
    workload = SCALED_REAL_FACTORIES["GESUMMV"]()
    server = ShardedServer(KAVERI, trained_model, shards=2,
                           workers_per_shard=2, backend="scalar",
                           functional=True, simulate=False,
                           warm_start=False)
    prefix = server.arena.prefix
    try:
        session = server.session("clean")
        for seed in range(3):
            session.launch(workload,
                           workload.full_args(rng=seed)).result(timeout=120.0)
        assert len(list_segments(prefix)) > 0       # buffers really shared
    finally:
        server.close()
    assert list_segments(prefix) == []


def test_killed_worker_leaves_no_orphans(trained_model):
    """SIGKILL a shard mid-service: the router still owns every segment,
    so closing it must leave ``/dev/shm`` exactly as found."""
    workload = SCALED_REAL_FACTORIES["GESUMMV"]()
    server = ShardedServer(KAVERI, trained_model, shards=2,
                           workers_per_shard=2, backend="scalar",
                           functional=True, simulate=False,
                           warm_start=False)
    prefix = server.arena.prefix
    try:
        session = server.session("kill")
        session.launch(workload, workload.full_args(rng=0)).result(timeout=120)
        victim = server._shards[0].proc
        os.kill(victim.pid, signal.SIGKILL)
        victim.join(timeout=30.0)
        assert not victim.is_alive()
        deadline = time.monotonic() + 30.0
        while server._shards[0].alive and time.monotonic() < deadline:
            time.sleep(0.01)
        assert not server._shards[0].alive
    finally:
        server.close()
    assert list_segments(prefix) == []


# ---------------------------------------------------------------------------
# Regression: any resource-tracker noise fails the suite
# ---------------------------------------------------------------------------

TRACKER_SCRIPT = """
import numpy as np
from multiprocessing import get_context
from repro.serve.shm import ShmArena, SegmentCache, attach_args, list_segments


def child(shared):
    cache = SegmentCache(owner=False)
    args = attach_args(shared, cache)
    args["a"][:] = 7.0
    cache.close_all()


arena = ShmArena()
shared, live = arena.share({"a": np.zeros(32), "n": 1})
ctx = get_context("fork")
proc = ctx.Process(target=child, args=(shared,))
proc.start()
proc.join()
assert proc.exitcode == 0
assert float(live["a"][0]) == 7.0          # the fork really wrote shm
arena.close()
assert list_segments(arena.prefix) == []

# the full sharded data path: fork pool, real kernels, warm shutdown
from repro.core import collect_dataset
from repro.ml import make_model
from repro.serve import ShardedServer
from repro.sim import KAVERI
from repro.workloads import SCALED_REAL_FACTORIES
from repro.workloads.synthetic import training_workloads

dataset = collect_dataset(training_workloads(sizes=(16384,), wg_sizes=(256,)),
                          KAVERI, cache=False)
model = make_model("dt")
model.fit(dataset.feature_matrix(), dataset.targets())
server = ShardedServer(KAVERI, model, shards=2, workers_per_shard=2,
                       backend="scalar", functional=True, simulate=False,
                       warm_start=False)
prefix = server.arena.prefix
session = server.session("tracker")
workload = SCALED_REAL_FACTORIES["GESUMMV"]()
for seed in range(4):
    session.launch(workload, workload.full_args(rng=seed)).result(timeout=120)
server.close()
assert list_segments(prefix) == []
print("TRACKER-CLEAN")
"""

#: stderr substrings that mean the resource tracker saw something wrong
TRACKER_NOISE = ("leaked shared_memory", "resource_tracker",
                 "KeyError", "Traceback", "UserWarning")


def test_resource_tracker_warnings_fail_the_suite():
    """End-to-end subprocess: attach across a fork, run the sharded
    server, shut down — with a byte-clean stderr.  Tracker complaints
    print at interpreter exit, which is why this must be a subprocess
    rather than an in-process assertion."""
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", TRACKER_SCRIPT],
        capture_output=True, text=True, timeout=600, env=env)
    assert proc.returncode == 0, proc.stderr
    assert "TRACKER-CLEAN" in proc.stdout
    for marker in TRACKER_NOISE:
        assert marker not in proc.stderr, (
            f"resource-tracker noise on stderr ({marker!r}):\n{proc.stderr}")
