"""Shared fixtures for the serving suite: one small trained model.

Same reduced synthetic slice as the core suite — trains in well under a
second and exercises the full prediction path.
"""

import pytest

from repro.core import collect_dataset
from repro.ml import make_model
from repro.sim import KAVERI
from repro.workloads.synthetic import training_workloads


@pytest.fixture(scope="session")
def trained_model():
    workloads = training_workloads(sizes=(16384,), wg_sizes=(256,))
    dataset = collect_dataset(workloads, KAVERI, cache=False)
    model = make_model("dt")
    model.fit(dataset.feature_matrix(), dataset.targets())
    return model
