"""Cross-process prediction store: warm starts, corruption, isolation.

The store is the sharded server's answer to cold forks: DoP decisions
are a pure function of (platform, model), so a shard can load its
predecessors' cache from disk instead of paying model inference again.
These tests pin the storage contract — atomic idempotent writes,
corruption-safe reads, namespace isolation — and the end-to-end warm
start: a second sharded server over the same store boots with the
first one's decisions already cached.
"""

import multiprocessing

import numpy as np
import pytest

from repro.ml import make_model
from repro.serve import (
    PredictionCache,
    PredictionStore,
    ShardedServer,
    store_namespace,
)
from repro.serve.predstore import atomic_replace
from repro.sim import KAVERI
from repro.workloads import SCALED_REAL_FACTORIES


def test_put_entries_round_trip(tmp_path):
    store = PredictionStore("ns", root=tmp_path)
    key = (("feat", 1.5), (64,), 3)
    store.put(key, {"dop": 7})
    store.put(("other",), {"dop": 2})
    assert len(store) == 2
    entries = dict(store.entries())
    assert entries[key] == {"dop": 7}
    assert entries[("other",)] == {"dop": 2}


def test_persist_is_idempotent(tmp_path):
    cache = PredictionCache(capacity=16)
    for i in range(5):
        cache.put(("k", i), i * i)
    store = PredictionStore("ns", root=tmp_path)
    assert store.persist(cache) == 5
    assert len(store) == 5
    # re-persisting the same cache replaces in place: no growth, no loss
    assert store.persist(cache) == 5
    assert len(store) == 5
    assert dict(store.entries()) == {("k", i): i * i for i in range(5)}


def test_load_into_warms_a_cold_cache(tmp_path):
    store = PredictionStore("ns", root=tmp_path)
    for i in range(4):
        store.put(("k", i), i)
    cache = PredictionCache(capacity=16)
    assert store.load_into(cache) == 4
    assert store.loaded == 4
    # warm loads count as neither hits nor misses...
    assert cache.hits == 0 and cache.misses == 0
    # ...but subsequent traffic hits
    assert cache.get(("k", 2)) == 2
    assert cache.hits == 1


def test_corrupt_entries_are_skipped_and_removed(tmp_path):
    store = PredictionStore("ns", root=tmp_path)
    store.put(("good",), 1)
    truncated = store.dir / "00deadbeef.pkl"
    truncated.write_bytes(b"\x80\x04not a pickle")
    empty = store.dir / "ffcafe.pkl"
    empty.write_bytes(b"")
    assert len(store) == 3
    entries = store.entries()
    assert entries == [(("good",), 1)]
    assert store.skipped == 2
    assert not truncated.exists() and not empty.exists()
    # the store heals: a later read sees only the good entry
    assert len(store) == 1


def test_namespaces_are_isolated(tmp_path):
    first = PredictionStore("ns-a", root=tmp_path)
    second = PredictionStore("ns-b", root=tmp_path)
    first.put(("k",), "a-value")
    assert second.entries() == []
    assert len(second) == 0
    second.put(("k",), "b-value")
    assert dict(first.entries()) == {("k",): "a-value"}


def test_store_namespace_digests_platform_and_model(trained_model):
    trained = store_namespace(KAVERI, trained_model)
    untrained = store_namespace(KAVERI, make_model("dt"))
    assert trained.startswith(KAVERI.name)
    # a different model pickle -> a different (empty) namespace, so a
    # retrained model can never read a stale model's decisions
    assert trained != untrained
    # and the digest is stable for the same pair
    assert trained == store_namespace(KAVERI, trained_model)


def test_clear_empties_the_namespace(tmp_path):
    store = PredictionStore("ns", root=tmp_path)
    store.put(("k",), 1)
    store.clear()
    assert len(store) == 0
    store.clear()                    # idempotent on a missing dir too


def test_atomic_replace_publishes_complete_files(tmp_path):
    target = atomic_replace(tmp_path / "dir", "entry.bin", b"first")
    assert target.read_bytes() == b"first"
    # replacing is atomic and in place: same path, new bytes
    assert atomic_replace(tmp_path / "dir", "entry.bin", b"second") == target
    assert target.read_bytes() == b"second"
    # no temp files survive a successful publish
    assert sorted(p.name for p in (tmp_path / "dir").iterdir()) == ["entry.bin"]


def _race_writer(root, keys, value_of, rounds):
    store = PredictionStore("ns", root=root)
    for _ in range(rounds):
        for key in keys:
            store.put(key, value_of(key))


def _value_of(key):
    return {"dop": key[1] * 2}


def test_concurrent_writers_racing_the_same_namespace(tmp_path):
    """Two processes rewriting the same keys: last rename wins, and both
    renames carried the same deterministic value — readers never see a
    torn or foreign entry."""
    keys = [("k", i) for i in range(10)]
    ctx = multiprocessing.get_context("fork")
    workers = [ctx.Process(target=_race_writer,
                           args=(tmp_path, keys, _value_of, 20))
               for _ in range(2)]
    for proc in workers:
        proc.start()
    for proc in workers:
        proc.join(timeout=120)
        assert proc.exitcode == 0

    store = PredictionStore("ns", root=tmp_path)
    assert len(store) == len(keys)
    assert dict(store.entries()) == {key: _value_of(key) for key in keys}
    assert store.skipped == 0
    # the atomic-publish discipline leaves no temp droppings behind
    assert not list(store.dir.glob("*.tmp"))


def test_corrupt_entry_healing_under_concurrent_writers(tmp_path):
    """A reader healing corrupt entries while writers race stays sound."""
    keys = [("k", i) for i in range(10)]
    store = PredictionStore("ns", root=tmp_path)
    # plant corruption the concurrent writers will never rewrite
    store.dir.mkdir(parents=True, exist_ok=True)
    for name in ("00bad.pkl", "ffbad.pkl"):
        (store.dir / name).write_bytes(b"\x80\x04 torn")

    ctx = multiprocessing.get_context("fork")
    workers = [ctx.Process(target=_race_writer,
                           args=(tmp_path, keys, _value_of, 10))
               for _ in range(2)]
    for proc in workers:
        proc.start()
    try:
        # read (and heal) repeatedly while the writers are still racing:
        # every snapshot must parse, and good entries carry good values
        while any(proc.is_alive() for proc in workers):
            for key, value in store.entries():
                assert value == _value_of(key)
    finally:
        for proc in workers:
            proc.join(timeout=120)
            assert proc.exitcode == 0

    entries = dict(store.entries())
    assert entries == {key: _value_of(key) for key in keys}
    assert store.skipped == 2
    assert not (store.dir / "00bad.pkl").exists()
    assert not (store.dir / "ffbad.pkl").exists()


def test_sharded_warm_start_round_trip(trained_model, tmp_path):
    """Shards persist on shutdown; a fresh pool loads those decisions."""
    workloads = [factory() for factory in
                 list(SCALED_REAL_FACTORIES.values())[:6]]

    def run_pool():
        server = ShardedServer(KAVERI, trained_model, shards=2,
                               workers_per_shard=2, backend="scalar",
                               functional=False, simulate=True,
                               warm_start=True, store_root=tmp_path)
        try:
            session = server.session("warm")
            for workload in workloads:
                args = workload.full_args(rng=0)
                session.launch(workload, args=args).result(timeout=120.0)
        finally:
            server.close()
        return server.shard_reports

    cold_reports = run_pool()
    assert len(cold_reports) == 2
    assert sum(report["warm_loaded"] for report in cold_reports) == 0
    persisted = sum(report["persisted"] for report in cold_reports)
    assert persisted > 0

    store = PredictionStore.for_model(KAVERI, trained_model, root=tmp_path)
    # workloads sharing a (features, geometry, load) key collapse to one
    # file — idempotent concurrent writes, never duplicates
    assert 0 < len(store) <= persisted

    warm_reports = run_pool()
    assert len(warm_reports) == 2
    # every shard of the new pool booted with the full decision set
    for report in warm_reports:
        assert report["warm_loaded"] == len(store)
