"""The server's admission-report endpoint.

``DopiaServer.admission_report`` answers *why* a launch handle was (or
would be) refused by the admission legality gate: it returns the same
schema-versioned JSON document ``dopia lint --json`` emits, for the
exact launch the gate verifies.  The endpoint is a diagnostic query —
it runs regardless of the ``DOPIA_VERIFY`` policy — so these tests pin
the document shape, the RACE001 refusal round-trip under ``raise``, and
agreement between gate and report.
"""

import numpy as np
import pytest

from repro.analysis.diagnostics import SCHEMA_VERSION
from repro.analysis.verify import VerifyError
from repro.serve import DopiaServer
from repro.sim import KAVERI
from repro.workloads import Workload, scaled_real_workloads

RACY_SRC = """
__kernel void racy(__global float* c, int n)
{
    int i = get_global_id(0);
    if (i < n) c[0] = (float)i;
}
"""


def racy_workload():
    return Workload(
        key="racy-test", source=RACY_SRC, kernel_name="racy",
        global_size=(64,), local_size=(16,), scalar_args={"n": 64},
        buffer_builder=lambda w, rng: {"c": np.zeros(64)},
    )


def clean_2d_workload():
    return {w.key: w for w in scaled_real_workloads()}["2DCONV/12/wg4x4"]


class TestAdmissionReport:
    def test_refused_launch_and_report_agree(self, trained_model,
                                             monkeypatch):
        """A RACE001 launch fails its handle under ``raise``; the report
        endpoint then explains the refusal in the lint JSON shape."""
        monkeypatch.setenv("DOPIA_VERIFY", "raise")
        workload = racy_workload()
        with DopiaServer(KAVERI, trained_model, workers=1) as server:
            session = server.session("legal")
            handle = session.launch(workload, args=workload.full_args(0))
            with pytest.raises(VerifyError):
                handle.result(timeout=60)

            document = server.admission_report(workload)
            assert document["schema_version"] == SCHEMA_VERSION
            (report,) = document["reports"]
            assert report["verdicts"]["races"] == "diagnosed"
            races = [d for d in report["diagnostics"]
                     if d["code"] == "RACE001"]
            assert races
            assert races[0]["severity"] == "error"

    def test_report_runs_even_with_policy_off(self, trained_model,
                                              monkeypatch):
        monkeypatch.delenv("DOPIA_VERIFY", raising=False)
        with DopiaServer(KAVERI, trained_model, workers=1) as server:
            document = server.admission_report(racy_workload())
            (report,) = document["reports"]
            assert report["verdicts"]["races"] == "diagnosed"

    def test_clean_2d_workload_reports_proven_verdicts(self, trained_model,
                                                       monkeypatch):
        """The div/mod solver's registry payoff, visible at the serving
        surface: the 2-D workload admits with *proved* verdicts."""
        monkeypatch.setenv("DOPIA_VERIFY", "raise")
        workload = clean_2d_workload()
        with DopiaServer(KAVERI, trained_model, workers=1) as server:
            session = server.session("legal-2d")
            result = session.launch(
                workload, args=workload.full_args(0)).result(timeout=120)
            assert result is not None

            document = server.admission_report(workload)
            (report,) = document["reports"]
            assert report["verdicts"]["races"] == "clean"
            assert report["verdicts"]["oob"] == "clean"
            assert report["diagnostics"] == []
