"""Unit suite for the LRU prediction cache."""

import threading

import pytest

from repro.serve import PredictionCache


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        PredictionCache(0)


def test_hit_miss_counters():
    cache = PredictionCache(4)
    assert cache.get("a") is None
    cache.put("a", 1)
    assert cache.get("a") == 1
    assert cache.hits == 1 and cache.misses == 1
    assert cache.hit_rate == pytest.approx(0.5)


def test_lru_evicts_least_recently_used():
    cache = PredictionCache(2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1     # refresh "a"; "b" is now oldest
    cache.put("c", 3)              # evicts "b"
    assert cache.get("b") is None
    assert cache.get("a") == 1 and cache.get("c") == 3
    assert cache.evictions == 1
    assert len(cache) == 2


def test_get_or_compute_computes_once_per_key():
    cache = PredictionCache(4)
    calls = []
    value, hit = cache.get_or_compute("k", lambda: calls.append(1) or 42)
    assert (value, hit) == (42, False)
    value, hit = cache.get_or_compute("k", lambda: calls.append(1) or 42)
    assert (value, hit) == (42, True)
    assert len(calls) == 1


def test_stats_shape():
    cache = PredictionCache(2)
    cache.put("a", 1)
    cache.get("a")
    cache.get("zzz")
    stats = cache.stats()
    assert stats == {"size": 1, "capacity": 2, "hits": 1, "misses": 1,
                     "evictions": 0, "hit_rate": 0.5}


def test_concurrent_mixed_workload_stays_consistent():
    """Racing get/put/get_or_compute never corrupts the LRU structure."""
    cache = PredictionCache(32)
    threads_n, ops = 8, 500
    barrier = threading.Barrier(threads_n)
    errors = []

    def worker(index):
        try:
            barrier.wait()
            for op in range(ops):
                key = (index * op) % 64
                value, _ = cache.get_or_compute(key, lambda: key * 2)
                # values are deterministic functions of the key, so any
                # racing computes agree — a mismatch means corruption
                assert value == key * 2
        except BaseException as error:  # noqa: BLE001
            errors.append(error)

    workers = [threading.Thread(target=worker, args=(i,))
               for i in range(threads_n)]
    for thread in workers:
        thread.start()
    for thread in workers:
        thread.join()
    assert not errors
    assert len(cache) <= 32
    stats = cache.stats()
    assert stats["hits"] + stats["misses"] == threads_n * ops
