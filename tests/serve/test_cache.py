"""Unit suite for the LRU prediction cache."""

import threading

import pytest

from repro.serve import PredictionCache


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        PredictionCache(0)


def test_hit_miss_counters():
    cache = PredictionCache(4)
    assert cache.get("a") is None
    cache.put("a", 1)
    assert cache.get("a") == 1
    assert cache.hits == 1 and cache.misses == 1
    assert cache.hit_rate == pytest.approx(0.5)


def test_lru_evicts_least_recently_used():
    cache = PredictionCache(2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1     # refresh "a"; "b" is now oldest
    cache.put("c", 3)              # evicts "b"
    assert cache.get("b") is None
    assert cache.get("a") == 1 and cache.get("c") == 3
    assert cache.evictions == 1
    assert len(cache) == 2


def test_get_or_compute_computes_once_per_key():
    cache = PredictionCache(4)
    calls = []
    value, hit = cache.get_or_compute("k", lambda: calls.append(1) or 42)
    assert (value, hit) == (42, False)
    value, hit = cache.get_or_compute("k", lambda: calls.append(1) or 42)
    assert (value, hit) == (42, True)
    assert len(calls) == 1


def test_stats_shape():
    cache = PredictionCache(2)
    cache.put("a", 1)
    cache.get("a")
    cache.get("zzz")
    stats = cache.stats()
    assert stats == {"size": 1, "capacity": 2, "generation": 0, "hits": 1,
                     "misses": 1, "evictions": 0, "invalidations": 0,
                     "hit_rate": 0.5}


class TestGenerationInvalidation:
    """The promote-then-invalidate contract of the online retraining loop."""

    def test_advance_returns_the_superseded_generation(self):
        cache = PredictionCache(4)
        assert cache.generation == 0
        assert cache.advance_generation() == 0
        assert cache.generation == 1
        assert cache.advance_generation() == 1

    def test_clear_by_generation_spares_newer_entries(self):
        cache = PredictionCache(8)
        cache.put("gen0", "stale")
        stale = cache.advance_generation()
        cache.put("gen1", "fresh")
        cache.clear(stale)
        assert cache.get("gen0") is None
        assert cache.get("gen1") == "fresh"
        assert cache.invalidations == 1

    def test_clear_drops_the_given_generation_and_older(self):
        cache = PredictionCache(8)
        cache.put("g0", 0)
        first = cache.advance_generation()
        cache.put("g1", 1)
        second = cache.advance_generation()
        cache.put("g2", 2)
        assert (first, second) == (0, 1)
        cache.clear(second)                 # drops generations 0 and 1
        assert cache.get("g0") is None and cache.get("g1") is None
        assert cache.get("g2") == 2
        assert cache.invalidations == 2

    def test_clear_preserves_traffic_counters(self):
        cache = PredictionCache(8)
        cache.put("a", 1)
        cache.get("a")                      # hit
        cache.get("zzz")                    # miss
        hits, misses = cache.hits, cache.misses
        cache.clear(cache.advance_generation())
        assert (cache.hits, cache.misses) == (hits, misses)
        assert len(cache) == 0
        stats = cache.stats()
        assert stats["invalidations"] == 1 and stats["generation"] == 1

    def test_full_clear_still_counts_invalidations(self):
        cache = PredictionCache(8)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.clear()
        assert len(cache) == 0 and cache.invalidations == 2

    def test_rewritten_entry_adopts_the_current_generation(self):
        cache = PredictionCache(8)
        cache.put("k", "old")
        stale = cache.advance_generation()
        cache.put("k", "new")               # recomputed post-promotion
        cache.clear(stale)
        assert cache.get("k") == "new"

    def test_eviction_keeps_generation_tags_consistent(self):
        cache = PredictionCache(1)
        cache.put("a", 1)
        cache.put("b", 2)                   # evicts "a"
        cache.clear(cache.advance_generation())
        assert len(cache) == 0 and cache.invalidations == 1

    def test_concurrent_readers_during_invalidation(self):
        """Readers racing clear() see either the old value or a miss."""
        cache = PredictionCache(64)
        threads_n, ops = 6, 400
        barrier = threading.Barrier(threads_n + 1)
        errors = []

        def reader(index):
            try:
                barrier.wait()
                for op in range(ops):
                    key = (index + op) % 16
                    value, _ = cache.get_or_compute(key, lambda: key * 3)
                    # deterministic values: invalidation may force a
                    # recompute but can never surface a wrong entry
                    assert value == key * 3
            except BaseException as error:  # noqa: BLE001
                errors.append(error)

        def invalidator():
            try:
                barrier.wait()
                for _ in range(50):
                    cache.clear(cache.advance_generation())
            except BaseException as error:  # noqa: BLE001
                errors.append(error)

        workers = [threading.Thread(target=reader, args=(i,))
                   for i in range(threads_n)]
        workers.append(threading.Thread(target=invalidator))
        for thread in workers:
            thread.start()
        for thread in workers:
            thread.join()
        assert not errors
        stats = cache.stats()
        assert stats["hits"] + stats["misses"] >= threads_n * ops
        assert stats["generation"] == 50


def test_concurrent_mixed_workload_stays_consistent():
    """Racing get/put/get_or_compute never corrupts the LRU structure."""
    cache = PredictionCache(32)
    threads_n, ops = 8, 500
    barrier = threading.Barrier(threads_n)
    errors = []

    def worker(index):
        try:
            barrier.wait()
            for op in range(ops):
                key = (index * op) % 64
                value, _ = cache.get_or_compute(key, lambda: key * 2)
                # values are deterministic functions of the key, so any
                # racing computes agree — a mismatch means corruption
                assert value == key * 2
        except BaseException as error:  # noqa: BLE001
            errors.append(error)

    workers = [threading.Thread(target=worker, args=(i,))
               for i in range(threads_n)]
    for thread in workers:
        thread.start()
    for thread in workers:
        thread.join()
    assert not errors
    assert len(cache) <= 32
    stats = cache.stats()
    assert stats["hits"] + stats["misses"] == threads_n * ops
