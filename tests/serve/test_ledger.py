"""Unit suite for the device-load ledger (occupancy accounting)."""

import threading

import pytest

from repro.serve import DeviceLoadLedger, LoadSnapshot
from repro.sim import DopSetting, KAVERI


def test_empty_ledger_is_idle():
    ledger = DeviceLoadLedger(KAVERI)
    snap = ledger.snapshot()
    assert snap.idle
    assert snap == LoadSnapshot(cpu_util=0.0, gpu_util=0.0, in_flight=0)
    assert ledger.in_flight == 0


def test_acquire_release_roundtrip():
    ledger = DeviceLoadLedger(KAVERI)
    lease = ledger.acquire(DopSetting(cpu_threads=2, gpu_fraction=0.5))
    snap = ledger.snapshot()
    assert snap.in_flight == 1
    assert snap.cpu_util == pytest.approx(2 / KAVERI.cpu.threads)
    assert snap.gpu_util == pytest.approx(0.5)
    ledger.release(lease)
    assert ledger.snapshot().idle
    assert ledger.total_leases == 1


def test_double_release_raises():
    ledger = DeviceLoadLedger(KAVERI)
    lease = ledger.acquire(DopSetting(cpu_threads=1, gpu_fraction=0.0))
    ledger.release(lease)
    with pytest.raises(KeyError):
        ledger.release(lease)


def test_snapshot_caps_but_peaks_do_not():
    """Oversubscription is capped in snapshots, visible in the peaks."""
    ledger = DeviceLoadLedger(KAVERI)
    leases = [ledger.acquire(DopSetting(cpu_threads=KAVERI.cpu.threads,
                                        gpu_fraction=1.0))
              for _ in range(3)]
    snap = ledger.snapshot()
    assert snap.cpu_util == 1.0 and snap.gpu_util == 1.0  # capped
    assert ledger.peak_cpu_util == pytest.approx(3.0)     # un-capped
    assert ledger.peak_gpu_util == pytest.approx(3.0)
    for lease in leases:
        ledger.release(lease)
    assert ledger.snapshot().idle


def test_empty_ledger_clamps_float_drift():
    """Many fractional acquire/release cycles leave an exactly-zero ledger."""
    ledger = DeviceLoadLedger(KAVERI)
    for _ in range(1000):
        lease = ledger.acquire(DopSetting(cpu_threads=0, gpu_fraction=0.125))
        other = ledger.acquire(DopSetting(cpu_threads=1, gpu_fraction=0.375))
        ledger.release(lease)
        ledger.release(other)
    snap = ledger.snapshot()
    assert snap.cpu_util == 0.0 and snap.gpu_util == 0.0


def test_bucketing_quantises_for_cache_keys():
    snap = LoadSnapshot(cpu_util=0.3, gpu_util=0.8, in_flight=2)
    assert snap.bucket(8) == (2, 6)
    rounded = snap.bucketed(8)
    assert rounded.cpu_util == pytest.approx(0.25)
    assert rounded.gpu_util == pytest.approx(0.75)
    assert rounded.in_flight == 2
    # idempotent: a bucketed snapshot is its own bucket representative
    assert rounded.bucketed(8) == rounded


def test_concurrent_acquire_release_balances():
    """N threads x K cycles: counters return exactly to zero."""
    ledger = DeviceLoadLedger(KAVERI)
    threads_n, cycles = 8, 200
    barrier = threading.Barrier(threads_n)
    errors = []

    def worker(index):
        try:
            barrier.wait()
            setting = DopSetting(cpu_threads=(index % 4) + 1,
                                 gpu_fraction=(index % 8) / 8)
            for _ in range(cycles):
                lease = ledger.acquire(setting)
                ledger.release(lease)
        except BaseException as error:  # noqa: BLE001
            errors.append(error)

    workers = [threading.Thread(target=worker, args=(i,))
               for i in range(threads_n)]
    for thread in workers:
        thread.start()
    for thread in workers:
        thread.join()
    assert not errors
    assert ledger.snapshot().idle
    assert ledger.total_leases == threads_n * cycles
    assert ledger.peak_cpu_util > 0.0
