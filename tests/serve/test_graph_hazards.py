"""Hazard matching, failure propagation, and the stale-read regression.

Unit-level coverage of the dependency-aware graph runtime: read/write
set derivation (:func:`launch_rw_summary` and declared-intent override),
the RAW/WAW/WAR classifier over host byte ranges, ``then()`` chaining,
and the chaos path — a mid-graph launch that raises must fail its
output-dependents with :class:`DependencyFailedError` carrying the root
cause while independent branches and pure-WAR dependents proceed.

Every test that asserts an edge *formed* runs the server with a small
lease dwell, so the predecessor is still in flight when the dependent is
admitted — edge formation is then deterministic, not a race against the
worker pool.
"""

import numpy as np
import pytest

from repro.analysis.accessmodel import launch_rw_summary
from repro.serve import DependencyFailedError, DopiaServer
from repro.serve.graph import RAW, WAR, WAW, buffer_ranges, hazard_kind
from repro.sim import KAVERI
from repro.workloads import Workload
from repro.workloads.polybench import make_atax1, make_fdtd2

N = 64
WG = 16
GEOM = dict(global_size=(N,), local_size=(WG,))

WRITER_SRC = (
    "__kernel void writer(__global float* dst, __global float* src)"
    "{ int i = get_global_id(0); dst[i] = src[i] * 2.0f; }"
)
READER_SRC = (
    "__kernel void reader(__global float* out, __global float* dst)"
    "{ int i = get_global_id(0); out[i] = dst[i] + 1.0f; }"
)
#: fails at runtime (data-dependent out-of-bounds store), not at build:
#: reads ``idx``, writes ``dst`` — so WAR dependents can target ``idx``
BROKEN_SRC = (
    "__kernel void broken(__global float* dst, __global float* idx)"
    "{ int i = get_global_id(0); dst[(int)idx[i]] = 1.0f; }"
)

WRITER = Workload(key="graph/writer", source=WRITER_SRC,
                  kernel_name="writer", **GEOM)
READER = Workload(key="graph/reader", source=READER_SRC,
                  kernel_name="reader", **GEOM)
BROKEN = Workload(key="graph/broken", source=BROKEN_SRC,
                  kernel_name="broken", **GEOM)


def make_server(model, *, dwell_cap_s=0.0, **kw):
    """Scalar-backend test server; a positive dwell pins every completed
    launch in the ledger/graph for that long, making edge formation
    against it deterministic for a client submitting microseconds later."""
    kw.setdefault("workers", 4)
    kw.setdefault("backend", "scalar")
    if dwell_cap_s > 0.0:
        kw.update(dwell_scale=1e6, dwell_cap_s=dwell_cap_s)
    return DopiaServer(KAVERI, model, **kw)


def event_index(server, what, node):
    return list(server.graph.events).index((what, node.id, node.label))


# -- read/write set derivation ----------------------------------------------


def test_rw_summary_classifies_atax1():
    """ATAX1 (tmp = A x): A and x are read-only, tmp is accumulated —
    a read-modify-write, so it lands in both sets."""
    summary = launch_rw_summary(make_atax1(n=8, wg=4).kernel_info())
    assert {"A", "x"} <= summary.reads
    assert summary.writes == {"tmp"}
    assert "A" not in summary.writes and "x" not in summary.writes


def test_rw_summary_drops_untouched_params():
    """FDTD2 declares ``ey`` but never touches it — neither set.

    This is what lets FDTD's s1 (writes ey) and s2 (writes ex) run
    concurrently inside one timestep: a declared-params fallback would
    serialise them on a phantom conflict.
    """
    summary = launch_rw_summary(make_fdtd2().kernel_info())
    assert "ey" not in summary.reads
    assert "ey" not in summary.writes


def test_buffer_ranges_views_overlap_distinct_allocations_do_not():
    base = np.zeros(N)
    view = base[10:30]
    other = np.zeros(N)
    (base_range,) = buffer_ranges({"b": base}, ["b"])
    (view_range,) = buffer_ranges({"v": view}, ["v"])
    (other_range,) = buffer_ranges({"o": other}, ["o"])
    assert base_range[0] <= view_range[0] < view_range[1] <= base_range[1]

    class Node:
        def __init__(self, reads, writes):
            self.read_ranges = reads
            self.write_ranges = writes

    writer_view = Node((), (view_range,))
    reader_base = Node((base_range,), ())
    assert hazard_kind(reader_base, writer_view) == RAW
    assert hazard_kind(Node((), (other_range,)), writer_view) is None
    assert hazard_kind(Node((), (base_range,)), writer_view) == WAW
    assert hazard_kind(writer_view, reader_base) == WAR


# -- implicit hazards through the server ------------------------------------


def test_raw_dependent_sees_writer_output_no_client_wait(trained_model):
    """Stale-read regression: reader submitted right behind its writer.

    Before hazard matching, both launches went straight to the worker
    pool and the reader could execute against the pre-writer bytes of
    ``dst``.  Now the reader parks on a RAW edge, so its output must be
    computed from the writer's result on every iteration.
    """
    rounds = 10
    with make_server(trained_model, dwell_cap_s=0.01) as server:
        session = server.session("raw")
        for round_ in range(rounds):
            src = np.full(N, float(round_ + 1))
            dst = np.zeros(N)
            out = np.zeros(N)
            writer = session.launch(WRITER, {"dst": dst, "src": src})
            reader = session.launch(READER, {"out": out, "dst": dst})
            reader.result(timeout=60.0)
            writer.result(timeout=60.0)
            np.testing.assert_array_equal(dst, src * 2.0)
            np.testing.assert_array_equal(out, src * 2.0 + 1.0)
        assert server.graph.snapshot()["hazards_raw"] >= rounds
        assert server.drain(timeout=30.0)


def test_war_writer_waits_for_reader(trained_model):
    """A writer of ``dst`` submitted behind a reader of ``dst`` parks.

    The events log gives a deterministic ordering proof: the reader's
    ``done`` precedes the writer's ``start`` on every round, so the
    reader always saw the pre-writer bytes.
    """
    with make_server(trained_model, dwell_cap_s=0.01) as server:
        session = server.session("war")
        for round_ in range(5):
            shared = np.full(N, float(round_))
            out = np.zeros(N)
            src = np.full(N, 7.0)
            reader = session.launch(READER, {"out": out, "dst": shared})
            writer = session.launch(WRITER, {"dst": shared, "src": src})
            writer.result(timeout=60.0)
            reader.result(timeout=60.0)
            assert (event_index(server, "done", reader.node)
                    < event_index(server, "start", writer.node))
            np.testing.assert_array_equal(out, float(round_) + 1.0)
            np.testing.assert_array_equal(shared, 14.0)
        assert server.graph.snapshot()["hazards_war"] >= 5


def test_declared_intents_override_derived_sets(trained_model):
    """``reads``/``writes`` declarations replace the summary per side."""
    with make_server(trained_model, dwell_cap_s=0.02) as server:
        session = server.session("intents")
        src, dst, out = np.ones(N), np.zeros(N), np.zeros(N)
        # natural RAW on `dst`... but the reader declares itself free
        blocked = session.launch(WRITER, {"dst": dst, "src": src})
        free = session.launch(READER, {"out": out, "dst": dst},
                              reads=(), writes=("out",))
        assert free.node.deps == 0
        blocked.result(timeout=60.0)
        free.result(timeout=60.0)

        # declared write on `src` manufactures an edge the kernel's own
        # summary (writer never writes src) would not produce
        phantom = session.launch(WRITER, {"dst": np.zeros(N), "src": src},
                                 writes=("dst", "src"))
        dependent = session.launch(READER, {"out": np.zeros(N), "dst": src})
        assert dependent.node.deps == 1
        assert dependent.node.pending.get(phantom.node.id) == RAW
        phantom.result(timeout=60.0)
        dependent.result(timeout=60.0)
        assert server.drain(timeout=30.0)


def test_then_chains_pipeline_in_order(trained_model):
    """``h.then(...)`` hops run server-side, in submission order."""
    with make_server(trained_model) as server:
        session = server.session("then")
        buffers = [np.full(N, 1.0)] + [np.zeros(N) for _ in range(3)]
        first = session.launch(
            WRITER, {"dst": buffers[1], "src": buffers[0]})
        second = first.then(WRITER, {"dst": buffers[2], "src": buffers[1]})
        third = second.then(WRITER, {"dst": buffers[3], "src": buffers[2]})
        third.result(timeout=60.0)
        np.testing.assert_array_equal(buffers[3], 8.0)
        for earlier, later in ((first, second), (second, third)):
            assert (event_index(server, "done", earlier.node)
                    < event_index(server, "start", later.node))
        assert server.drain(timeout=30.0)


# -- chaos: mid-graph failure ------------------------------------------------


def test_failure_poisons_output_dependents_only(trained_model):
    """A raising launch fails RAW dependents transitively, spares WAR
    dependents and independent branches; the server fully drains."""
    with make_server(trained_model, dwell_cap_s=0.15) as server:
        session = server.session("chaos")
        oob = np.full(N, 1e9)           # every store lands out of bounds
        poisoned_dst = np.zeros(N)
        out = np.zeros(N)
        side_src = np.ones(N)
        side_dst = np.zeros(N)

        # the gate's 150ms dwell keeps `bad` parked while the rest of
        # the graph is admitted against it
        gate = session.launch(WRITER, {"dst": np.zeros(N), "src": side_src})
        bad = session.launch(BROKEN, {"dst": poisoned_dst, "idx": oob},
                             after=(gate,))
        # RAW on the failed write -> poisoned, transitively via `then`
        victim = session.launch(READER, {"out": out, "dst": poisoned_dst})
        grand = victim.then(WRITER, {"dst": np.zeros(N), "src": out})
        # WAR only: overwrites the failed launch's *input* — released
        war_only = session.launch(WRITER, {"dst": oob, "src": side_src})
        assert war_only.node.pending.get(bad.node.id) == WAR
        # independent branch: untouched buffers
        branch = session.launch(WRITER, {"dst": side_dst, "src": side_src})

        with pytest.raises(Exception) as bad_error:
            bad.result(timeout=60.0)
        assert not isinstance(bad_error.value, DependencyFailedError)

        for dependent in (victim, grand):
            with pytest.raises(DependencyFailedError) as excinfo:
                dependent.result(timeout=60.0)
            assert excinfo.value.root_cause is bad_error.value
            assert "broken" in excinfo.value.failed_task
            assert excinfo.value.__cause__ is bad_error.value

        war_only.result(timeout=60.0)
        branch.result(timeout=60.0)
        np.testing.assert_array_equal(oob, 2.0)
        np.testing.assert_array_equal(side_dst, 2.0)
        np.testing.assert_array_equal(out, 0.0)   # victim never ran
        np.testing.assert_array_equal(poisoned_dst, 0.0)

        assert server.drain(timeout=30.0)
        assert server.ledger.in_flight == 0
        assert server.ledger.waiting == 0
        assert server.graph.drained
        assert server.graph.snapshot()["poisoned"] == 2
        with server.stats._lock:
            assert server.stats.dep_failed == 2
            assert server.stats.failed == 3   # the root + two poisoned
