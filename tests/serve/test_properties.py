"""Property suite: no work-group is lost or duplicated under concurrency.

Hypothesis drives two surfaces over the client-count x DoP grid:

* the scheduler itself — concurrent ``run_dynamic`` launches on every
  explicit (CPU threads, GPU fraction) configuration, each hammering its
  own :class:`AtomicWorklist` from many OS threads;
* the serving layer — concurrent clients through :class:`DopiaServer`,
  where the configuration is the predictor's (load-dependent) choice.

In both cases every launch must cover exactly its ND-range: the count
buffer ends at all-ones (a lost group leaves a 0, a duplicate leaves a 2)
and the schedule trace claims each group exactly once.
"""

import threading

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import run_dynamic
from repro.frontend import analyze_kernel, parse_kernel
from repro.interp import NDRange
from repro.serve import DopiaServer
from repro.sim import DopSetting, KAVERI
from repro.transform import make_malleable
from repro.workloads import SCALED_REAL_FACTORIES

COUNT_SRC = (
    "__kernel void count(__global float* C, int n)"
    "{ C[get_global_id(0)] += 1.0f; }"
)

INFO = analyze_kernel(parse_kernel(COUNT_SRC))
MALLEABLE = make_malleable(COUNT_SRC, work_dim=1)

#: the Table-3 axes the server can pick from (a representative sub-grid)
CPU_LEVELS = (0, 1, 2, 4)
GPU_FRACTIONS = (0.0, 0.125, 0.5, 1.0)


def run_one(n_items, wg, setting, backend):
    counts = np.zeros(n_items)
    ndrange = NDRange((n_items,), (wg,))
    trace = run_dynamic(INFO, MALLEABLE, {"C": counts, "n": n_items},
                        ndrange, setting, backend=backend)
    return counts, trace


@settings(max_examples=20, deadline=None)
@given(
    clients=st.integers(min_value=2, max_value=6),
    cpu_threads=st.sampled_from(CPU_LEVELS),
    gpu_fraction=st.sampled_from(GPU_FRACTIONS),
    groups=st.integers(min_value=1, max_value=40),
    wg=st.sampled_from([16, 64, 256]),
)
def test_concurrent_launches_cover_exactly(clients, cpu_threads,
                                           gpu_fraction, groups, wg):
    """Client-count x DoP grid: concurrent run_dynamic never loses work."""
    if cpu_threads == 0 and gpu_fraction == 0.0:
        gpu_fraction = 0.125  # (0, 0) is not a configuration (Table 3)
    setting = DopSetting(cpu_threads=cpu_threads, gpu_fraction=gpu_fraction)
    n_items = groups * wg
    results = [None] * clients
    errors = []
    barrier = threading.Barrier(clients)

    def launch(slot):
        try:
            barrier.wait()
            results[slot] = run_one(n_items, wg, setting, "vector")
        except BaseException as error:  # noqa: BLE001
            errors.append(error)
            barrier.abort()

    threads = [threading.Thread(target=launch, args=(slot,))
               for slot in range(clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]

    for counts, trace in results:
        assert np.array_equal(counts, np.ones(n_items))
        claimed = sorted(trace.cpu_groups + trace.gpu_groups)
        assert claimed == list(range(groups))


@settings(max_examples=10, deadline=None)
@given(
    clients=st.integers(min_value=1, max_value=5),
    launches=st.integers(min_value=1, max_value=4),
    names=st.lists(st.sampled_from(sorted(SCALED_REAL_FACTORIES)),
                   min_size=1, max_size=3, unique=True),
)
def test_server_never_loses_or_duplicates_work(trained_model, clients,
                                               launches, names):
    """Through the full serving path, whatever DoP the predictor picks."""
    expected = clients * launches * len(names)
    errors = []
    coverages = []
    lock = threading.Lock()
    barrier = threading.Barrier(clients)

    def client_loop(client):
        try:
            session = server.session(f"prop-{client}")
            barrier.wait()
            handles = []
            for _ in range(launches):
                for name in names:
                    workload = SCALED_REAL_FACTORIES[name]()
                    handles.append((workload,
                                    session.launch(workload, rng_seed=client)))
            for workload, handle in handles:
                result = handle.result(timeout=120)
                with lock:
                    coverages.append((
                        sorted(result.trace.cpu_groups + result.trace.gpu_groups),
                        workload.num_work_groups,
                    ))
        except BaseException as error:  # noqa: BLE001
            with lock:
                errors.append(error)
            barrier.abort()

    with DopiaServer(KAVERI, trained_model, workers=clients,
                     backend="vector") as server:
        threads = [threading.Thread(target=client_loop, args=(client,))
                   for client in range(clients)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    if errors:
        raise errors[0]
    assert len(coverages) == expected
    for claimed, num_groups in coverages:
        assert claimed == list(range(num_groups))
    with server.stats._lock:
        assert server.stats.completed == expected
        assert server.stats.submitted == expected
        assert server.stats.failed == 0
    assert server.ledger.in_flight == 0
