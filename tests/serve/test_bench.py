"""The serve-bench harness: report shape, accounting, and scaling knobs."""

import json

import pytest

from repro.serve import run_serve_bench
from repro.serve.bench import percentiles
from repro.sim import KAVERI


def test_percentiles_empty():
    assert percentiles([]) == {"p50_ms": 0.0, "p90_ms": 0.0, "p99_ms": 0.0,
                               "mean_ms": 0.0, "max_ms": 0.0}


def test_percentiles_are_milliseconds_and_ordered():
    stats = percentiles([0.001, 0.002, 0.010])
    assert stats["p50_ms"] == pytest.approx(2.0)
    assert stats["max_ms"] == pytest.approx(10.0)
    assert stats["p50_ms"] <= stats["p90_ms"] <= stats["p99_ms"] <= stats["max_ms"]


def test_bench_rejects_degenerate_runs(trained_model):
    with pytest.raises(ValueError):
        run_serve_bench(KAVERI, trained_model, clients=0)
    with pytest.raises(ValueError):
        run_serve_bench(KAVERI, trained_model, clients=1, launches_per_client=0)


def test_bench_report_shape_and_accounting(trained_model):
    report = run_serve_bench(
        KAVERI, trained_model,
        clients=3, launches_per_client=4,
        workload_names=["GESUMMV", "ATAX1"],
        dwell_scale=0.0,
    )
    assert report["total_launches"] == 12
    assert report["clients"] == 3
    assert report["workloads"] == ["GESUMMV", "ATAX1"]
    assert report["throughput_lps"] > 0.0
    assert set(report["latency"]) == {"p50_ms", "p90_ms", "p99_ms",
                                      "mean_ms", "max_ms"}
    assert report["cache"]["hits"] + report["cache"]["misses"] > 0
    assert report["ledger"]["total_leases"] == 12
    assert report["predictions"]["under_load"] >= 0
    json.dumps(report)  # the report is committed as BENCH_serve.json


def test_bench_ledger_fills_under_dwell(trained_model):
    """With a dwell, concurrent clients see each other in the ledger."""
    report = run_serve_bench(
        KAVERI, trained_model,
        clients=4, launches_per_client=6,
        workload_names=["GESUMMV"],
        dwell_scale=2e3, dwell_cap_s=0.002,
    )
    assert report["predictions"]["under_load"] > 0
    assert report["ledger"]["peak_gpu_util"] > 0.0 \
        or report["ledger"]["peak_cpu_util"] > 0.0


def test_chained_bench_report_shape_and_bit_identity(trained_model):
    """Small chained run: both modes serve every launch, bit-identically."""
    from repro.serve.bench import run_chained_serve_bench

    report = run_chained_serve_bench(
        KAVERI, trained_model,
        clients=2, steps=2, grid=8, chains_per_client=1,
    )
    assert report["mode"] == "chained"
    assert report["chain"] == "FDTD"
    assert report["total_launches"] == 2 * 2 * 3   # clients x steps x kernels
    assert report["bit_identical"] is True
    for mode in ("sync", "graph"):
        run = report[mode]
        assert run["throughput_lps"] > 0.0
        assert run["verified"] is True
        assert run["drained"] is True
    # the graph mode actually exercised the scheduler: FDTD's s3@t
    # parks on s1/s2 and s1/s2@t+1 park on s3@t
    assert report["graph"]["graph"]["parked"] > 0
    assert report["speedup_graph_over_sync"] > 0.0
    json.dumps(report)   # merged into BENCH_serve.json under "chained"


def test_chained_bench_rejects_degenerate_runs(trained_model):
    from repro.serve.bench import run_chained_serve_bench

    with pytest.raises(ValueError):
        run_chained_serve_bench(KAVERI, trained_model, clients=0)
    with pytest.raises(ValueError):
        run_chained_serve_bench(KAVERI, trained_model, clients=1,
                                chains_per_client=0)
