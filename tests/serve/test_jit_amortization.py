"""The jit program cache amortizes across serving-layer launches.

The server analyses each distinct kernel once (``_prepare``) and reuses
that :class:`KernelInfo` for every subsequent launch; the jit cache is
keyed on exactly that object plus the launch shape.  Repeat launches of
one workload must therefore compile once and hit the program cache for
the rest — the steady state ``dopia serve-bench`` measures.
"""

from repro.interp import execution_stats
from repro.serve import DopiaServer
from repro.sim import KAVERI
from repro.workloads import SCALED_REAL_FACTORIES

LAUNCHES = 4


def test_repeat_launches_compile_once(trained_model):
    workload = SCALED_REAL_FACTORIES["GESUMMV"]()
    kernel = workload.kernel_name
    execution_stats.reset()
    try:
        with DopiaServer(KAVERI, trained_model, workers=1,
                         backend="jit") as server:
            session = server.session()
            for seed in range(LAUNCHES):
                result = session.launch(workload, rng_seed=seed) \
                    .result(timeout=120)
                assert result.trace is not None  # executed functionally
        compiles = execution_stats.jit_compiles.get(kernel, 0)
        hits = execution_stats.jit_cache_hits.get(kernel, 0)
        # every launch has the same shape: one compile, the rest hit the
        # cache (the scheduler may consult the cache more than once per
        # launch, so `hits` can exceed LAUNCHES - 1)
        assert compiles == 1, (compiles, hits)
        assert hits >= LAUNCHES - 1, (compiles, hits)
        assert ("gesummv", "jit") in execution_stats.runs
    finally:
        execution_stats.reset()
