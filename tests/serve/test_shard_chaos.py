"""Chaos harness: shard death and SIGTERM retirement, without hangs.

Two failure stories the sharded server must survive:

* **SIGKILL mid-graph** — a shard dies with a launch dispatched to it
  and a cross-shard dependent parked at the router.  The dispatched
  launch must fail with :class:`ShardCrashError`, the parked dependent
  must poison with :class:`DependencyFailedError` (never hang), and the
  surviving shards must keep serving — including the dead shard's keys,
  which the ring rehomes.

  SIGSTOP-then-SIGKILL makes the race deterministic: the victim shard
  is frozen before the launch is written to its pipe, so the kill is
  guaranteed to land mid-flight.

* **SIGTERM graceful drain** — a terminated shard first serves every
  launch already written to its pipe (releasing leases as they retire),
  then sends its "bye" report and exits; nothing dispatched to it is
  lost, and the router treats the retirement as graceful.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.serve import (
    DependencyFailedError,
    ShardCrashError,
    ShardedServer,
)
from repro.serve.shard import workload_ring_key
from repro.sim import KAVERI
from repro.workloads import SCALED_REAL_FACTORIES

from .test_shard_router import N, kernels_on_distinct_shards


def _wait_dead(server, index, timeout=30.0):
    deadline = time.monotonic() + timeout
    while server._shards[index].alive and time.monotonic() < deadline:
        time.sleep(0.01)
    assert not server._shards[index].alive


def test_sigkill_mid_graph_poisons_dependents_not_hangs(trained_model):
    a, b = kernels_on_distinct_shards(2)
    buf = np.arange(N, dtype=np.float32)
    with ShardedServer(KAVERI, trained_model, shards=2, workers_per_shard=2,
                       backend="scalar", functional=True, simulate=False,
                       warm_start=False) as server:
        session = server.session("chaos")
        victim = server._shards[0].proc
        # freeze shard 0 first: the launch sits unread in its pipe, so
        # the SIGKILL below is guaranteed to land mid-flight
        os.kill(victim.pid, signal.SIGSTOP)
        try:
            first = session.launch(a, {"w": buf})      # dispatched, shard 0
            second = session.launch(b, {"w": buf})     # parked: cross-shard
            time.sleep(0.1)
            assert not first.done()
            assert not second.done()
        finally:
            os.kill(victim.pid, signal.SIGKILL)
        with pytest.raises(ShardCrashError):
            first.result(timeout=60.0)
        with pytest.raises(DependencyFailedError):
            second.result(timeout=60.0)
        _wait_dead(server, 0)
        stats = server.stats.snapshot()
        assert stats["escalated"] >= 1
        assert stats["failed"] == 2
        assert stats["dep_failed"] == 1

        # the survivor keeps serving its own keys...
        out = np.zeros(N, dtype=np.float32)
        session.launch(b, {"w": out}).result(timeout=120.0)
        step = np.float32(float(b.kernel_name.removeprefix("step")))
        np.testing.assert_array_equal(out, step)

        # ...and adopts the dead shard's: the ring rehomes kernel `a`
        rehomed = session.launch(a, {"w": np.zeros(N, dtype=np.float32)})
        result = rehomed.result(timeout=120.0)
        assert result.shard == 1
        assert server.ring.lookup(workload_ring_key(a)) == 1
        assert server.stats.snapshot()["rerouted"] >= 1
        assert server.drain(timeout=60.0)


def test_sigterm_drains_dispatched_launches(trained_model):
    """Everything written to the pipe before the SIGTERM is served —
    the retirement is graceful, with a full "bye" report."""
    workload = SCALED_REAL_FACTORIES["GESUMMV"]()
    launches = 6
    with ShardedServer(KAVERI, trained_model, shards=1, workers_per_shard=2,
                       backend="scalar", functional=True, simulate=False,
                       warm_start=False) as server:
        session = server.session("drain")
        handles = [session.launch(workload, workload.full_args(rng=seed))
                   for seed in range(launches)]
        # the first result proves the shard is fully booted (a SIGTERM
        # before the handler is installed would be plain process death)
        handles[0].result(timeout=120.0)
        proc = server._shards[0].proc
        os.kill(proc.pid, signal.SIGTERM)
        for handle in handles:
            handle.result(timeout=120.0)       # nothing lost, no errors
        _wait_dead(server, 0)
        assert server._shards[0].bye           # graceful, not a crash
        report = server._shards[0].report
        stats = server.stats.snapshot()

        # the pool is gone: a post-retirement launch fails fast, no hang
        late = session.launch(workload, workload.full_args(rng=99))
        with pytest.raises(ShardCrashError):
            late.result(timeout=60.0)

    assert stats["completed"] == launches
    assert stats["failed"] == 0
    assert report["launches"] == launches
    assert report["completed"] == launches
    assert report["failed"] == 0
    # leases were released as the drain retired each launch
    assert report["ledger"]["total_leases"] >= launches
    assert report["graph"]["submitted"] == launches


def test_sigterm_releases_router_parked_dependents(trained_model):
    """A cross-shard dependent parked behind a launch on the terminated
    shard dispatches once the drain completes its predecessor."""
    a, b = kernels_on_distinct_shards(2)
    buf = np.arange(N, dtype=np.float32)
    with ShardedServer(KAVERI, trained_model, shards=2, workers_per_shard=2,
                       backend="scalar", functional=True, simulate=False,
                       warm_start=False) as server:
        session = server.session("park")
        # prove shard 0 is fully booted before freezing it
        session.launch(a, {"w": np.zeros(N, dtype=np.float32)}) \
            .result(timeout=120.0)
        victim = server._shards[0].proc
        os.kill(victim.pid, signal.SIGSTOP)
        first = session.launch(a, {"w": buf})       # in shard 0's pipe
        second = session.launch(b, {"w": buf})      # parked at the router
        time.sleep(0.1)
        assert not second.done()
        os.kill(victim.pid, signal.SIGCONT)
        os.kill(victim.pid, signal.SIGTERM)
        first.result(timeout=120.0)                 # drained, not lost
        second.result(timeout=120.0)                # unparked and served
        _wait_dead(server, 0)
        assert server._shards[0].bye
        stats = server.stats.snapshot()
        assert stats["escalated"] >= 1
        assert stats["failed"] == 0

    # both steps applied in order: w = (w*0.5 + a) * 0.5 + b
    step_a = np.float32(float(a.kernel_name.removeprefix("step")))
    step_b = np.float32(float(b.kernel_name.removeprefix("step")))
    expected = np.arange(N, dtype=np.float32)
    expected = expected * np.float32(0.5) + step_a
    expected = expected * np.float32(0.5) + step_b
    np.testing.assert_array_equal(buf, expected)
