"""The cross-process stress harness (ISSUE tentpole lock-down).

Barrier-synchronised clients hammer a 4-shard :class:`ShardedServer`
and the suite proves the sharded layer gives the same three guarantees
the in-process server's harness (``test_stress.py``) established —
now across process boundaries, shared-memory buffers, and the router's
hazard escalation:

1. **bit identity** — 8 concurrent clients over every registry kernel
   produce buffers byte-identical to the serial interpreter, and the
   FDTD / ATAX chains cross shard boundaries without divergence;
2. **exactly-once** — the router's scheduler log shows one ``start``
   and one ``done`` per launch, and the shard "bye" reports account
   for every launch with zero failures;
3. **graph correctness under randomness** — hypothesis-generated
   random task DAGs through the sharded fixture match the one-at-a-time
   serial oracle bit for bit (ordering is split between router
   escalation and shard-local scheduling, so bit identity — not the
   router log — is the invariant here).
"""

import itertools
import os
import threading

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.runtime import execute_chain_serial, execute_workload_serial
from repro.serve import ShardedServer
from repro.sim import KAVERI
from repro.workloads import (
    SCALED_REAL_FACTORIES,
    Workload,
    make_atax_chain,
    make_fdtd_chain,
)
from repro.workloads.chains import ChainTask, KernelChain

CLIENTS = 8
SHARDS = 4
BACKEND = "vector"
EXAMPLES = int(os.environ.get("DOPIA_SHARD_GRAPH_EXAMPLES", "15"))


def buffer_bytes(args):
    return {
        name: (value.dtype.str, value.shape, value.tobytes())
        for name, value in args.items()
        if hasattr(value, "tobytes")
    }


def serial_reference(client_ids):
    """Oracle: every (client, workload) launch on the serial interpreter."""
    reference = {}
    for client in client_ids:
        for key, factory in SCALED_REAL_FACTORIES.items():
            workload = factory()
            args = workload.full_args(rng=client)
            execute_workload_serial(workload, args, backend=BACKEND)
            reference[(client, key)] = buffer_bytes(args)
    return reference


def test_sharded_clients_bit_identical_to_serial(trained_model):
    """8 barrier-synced clients x 4 shards x all 14 registry kernels."""
    client_ids = list(range(CLIENTS))
    reference = serial_reference(client_ids)

    barrier = threading.Barrier(CLIENTS)
    outputs = {}
    errors = []
    lock = threading.Lock()

    def client_loop(client):
        try:
            session = server.session(f"stress-{client}")
            launches = []
            for key, factory in SCALED_REAL_FACTORIES.items():
                workload = factory()
                launches.append((key, workload,
                                 workload.full_args(rng=client)))
            barrier.wait()  # all clients submit at the same instant
            handles = [(key, args, session.launch(workload, args=args))
                       for key, workload, args in launches]
            for key, args, handle in handles:
                handle.result(timeout=300.0)
                with lock:
                    outputs[(client, key)] = buffer_bytes(args)
        except BaseException as error:  # noqa: BLE001 - re-raised below
            with lock:
                errors.append(error)
            try:
                barrier.abort()
            except threading.BrokenBarrierError:
                pass

    with ShardedServer(KAVERI, trained_model, shards=SHARDS,
                       workers_per_shard=2, backend=BACKEND,
                       functional=True, simulate=False,
                       warm_start=False) as server:
        threads = [threading.Thread(target=client_loop, args=(client,))
                   for client in client_ids]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]
        assert server.drain(timeout=60.0)
        events = list(server.graph.events)
        stats = server.stats.snapshot()
    reports = server.shard_reports

    total = CLIENTS * len(SCALED_REAL_FACTORIES)

    # guarantee 1: bit-identical to the serial interpreter, per client
    assert outputs.keys() == reference.keys()
    for launch_key in reference:
        assert outputs[launch_key] == reference[launch_key], launch_key

    # guarantee 2: exactly-once, at the router and in the shards
    assert stats["submitted"] == total
    assert stats["completed"] == total
    assert stats["failed"] == 0 and stats["dep_failed"] == 0
    starts = [e for e in events if e[0] == "start"]
    dones = [e for e in events if e[0] == "done"]
    assert len(starts) == total and len(dones) == total
    assert len({e[1] for e in starts}) == total     # no node started twice
    assert len({e[1] for e in dones}) == total
    assert len(reports) == SHARDS
    assert sum(report["launches"] for report in reports) == total
    assert sum(report["completed"] for report in reports) == total
    assert all(report["failed"] == 0 for report in reports)
    # the ring spread the kernel space: no shard sat idle
    assert all(report["launches"] > 0 for report in reports)


@pytest.mark.parametrize("make_chain", [make_fdtd_chain, make_atax_chain],
                         ids=["FDTD", "ATAX"])
def test_chains_cross_shards_bit_identical(trained_model, make_chain):
    served = make_chain()
    oracle = make_chain()
    with ShardedServer(KAVERI, trained_model, shards=SHARDS,
                       workers_per_shard=2, backend=BACKEND,
                       functional=True, simulate=False,
                       warm_start=False) as server:
        session = server.session("chain")
        results = server.submit_chain(session, served).result(timeout=300.0)
        assert server.drain(timeout=60.0)
    assert set(results) == {task.key for task in served.tasks}
    execute_chain_serial(oracle, backend=BACKEND)
    assert served.buffer_bytes() == oracle.buffer_bytes()


# ---------------------------------------------------------------------------
# Hypothesis: random task graphs through the sharded fixture
# ---------------------------------------------------------------------------

N = 64
WG = 16
NUM_BUFFERS = 4
MAX_READS = 3


def _task_source(n_reads: int) -> str:
    params = "".join(f"__global float* r{k}, " for k in range(n_reads))
    reads = " + ".join(f"r{k}[i]" for k in range(n_reads)) or "0.0f"
    return (
        f"__kernel void task(__global float* w, {params}float c)"
        f"{{ int i = get_global_id(0); "
        f"w[i] = 0.5f * w[i] + 0.25f * ({reads}) + c; }}"
    )


#: one workload per read-arity — distinct sources, so the ring may pin
#: them to *different* shards and conflicts exercise both escalation
#: (cross-shard) and shard-local ordering (same-shard chains)
TASKS = {
    k: Workload(key=f"shardprop/{k}", source=_task_source(k),
                kernel_name="task", global_size=(N,), local_size=(WG,))
    for k in range(MAX_READS + 1)
}

task_st = st.tuples(
    st.integers(0, NUM_BUFFERS - 1),
    st.lists(st.integers(0, NUM_BUFFERS - 1),
             max_size=MAX_READS, unique=True).map(tuple),
    st.integers(-4, 4),
)
graph_st = st.lists(task_st, min_size=3, max_size=8)

_INITIAL = np.random.default_rng(20260808).uniform(-1, 1, (NUM_BUFFERS, N))
_session_ids = itertools.count()


def fresh_buffers() -> list[np.ndarray]:
    return [_INITIAL[b].copy() for b in range(NUM_BUFFERS)]


def task_args(task, buffers) -> dict:
    write, reads, c = task
    args = {"w": buffers[write]}
    for k, b in enumerate(reads):
        args[f"r{k}"] = buffers[b]
    args["c"] = float(c)
    return args


def conflicts(earlier, later) -> bool:
    w_a, reads_a, _ = earlier
    w_b, reads_b, _ = later
    return w_a in {w_b, *reads_b} or w_b in {w_a, *reads_a}


def serial_oracle(tasks) -> list[bytes]:
    buffers = fresh_buffers()
    chain_tasks = []
    for j, task in enumerate(tasks):
        deps = tuple(f"t{i}" for i in range(j) if conflicts(tasks[i], task))
        chain_tasks.append(ChainTask(
            key=f"t{j}", workload=TASKS[len(task[1])],
            args=task_args(task, buffers), deps=deps))
    chain = KernelChain(name="prop", tasks=chain_tasks,
                        buffers={str(b): buffers[b]
                                 for b in range(NUM_BUFFERS)})
    execute_chain_serial(chain, backend="scalar")
    return [buffers[b].tobytes() for b in range(NUM_BUFFERS)]


@pytest.fixture(scope="module")
def sharded_server(trained_model):
    """One pool for every hypothesis example: forking per example would
    swamp the property with process start-up."""
    with ShardedServer(KAVERI, trained_model, shards=2, workers_per_shard=2,
                       backend="scalar", functional=True, simulate=False,
                       warm_start=False) as server:
        yield server


@settings(max_examples=EXAMPLES, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(tasks=graph_st)
def test_random_graphs_match_serial_through_shards(sharded_server, tasks):
    server = sharded_server
    buffers = fresh_buffers()
    session = server.session(f"prop-{next(_session_ids)}")
    before = len(server.graph.events)
    handles = [session.launch(TASKS[len(task[1])], task_args(task, buffers))
               for task in tasks]
    for handle in handles:
        handle.result(timeout=300.0)
    assert server.drain(timeout=60.0)
    events = list(server.graph.events)[before:]

    # exactly-once at the router, even with shard-local chaining in play
    for handle in handles:
        node = handle.node
        assert events.count(("start", node.id, node.label)) == 1
        assert events.count(("done", node.id, node.label)) == 1

    # bit-identical to the one-at-a-time run of the same sequence
    expected = serial_oracle(tasks)
    for b in range(NUM_BUFFERS):
        assert buffers[b].tobytes() == expected[b], f"buffer {b} diverged"
