"""Online adaptation: predictions demonstrably shift as the ledger fills.

The regression anchor for the serving layer's whole reason to exist —
feeding live ``CPU_util``/``GPU_util`` into the Table-1 feature vector
(and masking infeasible configurations) must *change the chosen DoP*
when the device is occupied, and must change nothing when it is idle.
"""

import numpy as np
import pytest

from repro.analysis.features import extract_static_features
from repro.core.predictor import DopPredictor
from repro.serve import DopiaServer
from repro.sim import DopSetting, KAVERI
from repro.workloads import SCALED_REAL_FACTORIES


@pytest.fixture()
def predictor(trained_model):
    return DopPredictor(trained_model, KAVERI)


def static_of(name="GESUMMV"):
    workload = SCALED_REAL_FACTORIES[name]()
    return workload, extract_static_features(workload.kernel_info())


def test_idle_load_is_offline_prediction(predictor):
    """Zero load reduces exactly to the single-client (offline) selection."""
    workload, static = static_of()
    idle = predictor.select(static, 1, workload.total_work_items,
                            workload.work_group_items)
    explicit = predictor.select(static, 1, workload.total_work_items,
                                workload.work_group_items,
                                cpu_load=0.0, gpu_load=0.0)
    assert idle.config == explicit.config
    assert np.array_equal(idle.scores, explicit.scores)


def test_load_shifts_feature_rows(predictor):
    """Live load lands in the Table-1 CPU_util/GPU_util columns, capped."""
    workload, static = static_of()
    geometry = (1, workload.total_work_items, workload.work_group_items)
    idle_rows = predictor.feature_rows(static, *geometry)
    loaded_rows = predictor.feature_rows(static, *geometry,
                                         cpu_load=0.5, gpu_load=0.875)
    assert np.array_equal(
        np.minimum(idle_rows[:, 9] + 0.5, 1.0), loaded_rows[:, 9])
    assert np.array_equal(
        np.minimum(idle_rows[:, 10] + 0.875, 1.0), loaded_rows[:, 10])
    # everything that is not a util column is load-independent
    assert np.array_equal(idle_rows[:, :9], loaded_rows[:, :9])
    assert loaded_rows[:, 9:].max() <= 1.0


def test_saturated_device_forces_different_config(predictor):
    """Saturating the device the idle choice uses must move the choice."""
    workload, static = static_of()
    geometry = (1, workload.total_work_items, workload.work_group_items)
    idle = predictor.select(static, *geometry)
    if idle.config.setting.uses_gpu:
        loaded = predictor.select(static, *geometry, gpu_load=1.0)
        assert not loaded.config.setting.uses_gpu
    else:
        loaded = predictor.select(static, *geometry, cpu_load=1.0)
        assert loaded.config.setting.cpu_threads == 0
    assert loaded.config != idle.config


def test_all_infeasible_falls_back_to_unmasked_argmax(predictor):
    """A fully saturated machine oversubscribes instead of deadlocking."""
    workload, static = static_of()
    geometry = (1, workload.total_work_items, workload.work_group_items)
    assert not predictor.feasible_mask(1.0, 1.0).any()
    saturated = predictor.select(static, *geometry, cpu_load=1.0, gpu_load=1.0)
    # no masking applied: the choice is the plain argmax of the loaded scores
    assert saturated.config is predictor.configs[int(np.argmax(saturated.scores))]


def test_server_adapts_under_ledger_load(trained_model):
    """End to end: a held lease changes the *served* prediction."""
    workload = SCALED_REAL_FACTORIES["GESUMMV"]()
    with DopiaServer(KAVERI, trained_model, workers=1,
                     backend="vector") as server:
        session = server.session()
        idle_result = session.launch(workload, rng_seed=0).result(timeout=120)
        idle_setting = idle_result.prediction.config.setting

        # occupy whichever device the idle choice wants, then serve again
        if idle_setting.uses_gpu:
            occupying = DopSetting(cpu_threads=0, gpu_fraction=1.0)
        else:
            occupying = DopSetting(
                cpu_threads=server.platform.cpu.threads, gpu_fraction=0.0)
        lease = server.ledger.acquire(occupying)
        try:
            loaded_result = session.launch(workload, rng_seed=0).result(timeout=120)
        finally:
            server.ledger.release(lease)

        assert not loaded_result.load.idle
        assert loaded_result.prediction.config != idle_result.prediction.config
        with server.stats._lock:
            assert server.stats.loaded_predictions >= 1
            assert server.stats.adapted_predictions >= 1


def test_prediction_cache_is_per_load_bucket(trained_model):
    """Identical launches under different loads hit different cache lines."""
    workload = SCALED_REAL_FACTORIES["GESUMMV"]()
    with DopiaServer(KAVERI, trained_model, workers=1,
                     backend="vector") as server:
        session = server.session()
        session.launch(workload, rng_seed=0).result(timeout=120)
        repeat = session.launch(workload, rng_seed=0).result(timeout=120)
        assert repeat.cache_hit  # same bucket -> LRU hit

        lease = server.ledger.acquire(DopSetting(cpu_threads=0, gpu_fraction=1.0))
        try:
            loaded = session.launch(workload, rng_seed=0).result(timeout=120)
        finally:
            server.ledger.release(lease)
        assert not loaded.cache_hit  # new bucket -> distinct entry
        loaded_again_lease = server.ledger.acquire(
            DopSetting(cpu_threads=0, gpu_fraction=1.0))
        try:
            loaded_repeat = session.launch(workload, rng_seed=0).result(timeout=120)
        finally:
            server.ledger.release(loaded_again_lease)
        assert loaded_repeat.cache_hit  # same loaded bucket -> hit
