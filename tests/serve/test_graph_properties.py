"""Property harness: random task graphs through the server == serial run.

Hypothesis generates random launch sequences over a small shared buffer
pool — every task does an order-sensitive update ``w = 0.5*w +
0.25*(sum of reads) + c`` — and submits them to :class:`DopiaServer`
back-to-back with **no client-side waits**, so ordering is entirely the
graph scheduler's job.  For every generated graph:

* **hazard order** — for each pair of conflicting tasks (one writes a
  buffer the other touches), the earlier submission's ``done`` event
  precedes the later's ``start`` event;
* **no lost or duplicated launches** — every task starts exactly once
  and finishes exactly once;
* **serial equivalence** — the final bytes of every buffer are
  bit-identical to a fresh copy of the same task sequence executed one
  task at a time in submission order
  (:func:`repro.core.runtime.execute_chain_serial`), on the scalar
  interpreter and the jit tier alike.

``DOPIA_GRAPH_EXAMPLES`` scales the example count (default 100 per
backend — 200 graphs per run; CI's stress lane runs a faster subset).
"""

import os

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.runtime import execute_chain_serial
from repro.serve import DopiaServer, GraphCycleError, TaskSpace
from repro.sim import KAVERI
from repro.workloads import Workload
from repro.workloads.chains import ChainTask, KernelChain

N = 64
WG = 16
NUM_BUFFERS = 4
MAX_READS = 3
EXAMPLES = int(os.environ.get("DOPIA_GRAPH_EXAMPLES", "100"))
BACKENDS = ("scalar", "jit")


def _task_source(n_reads: int) -> str:
    params = "".join(f"__global float* r{k}, " for k in range(n_reads))
    reads = " + ".join(f"r{k}[i]" for k in range(n_reads)) or "0.0f"
    return (
        f"__kernel void task(__global float* w, {params}float c)"
        f"{{ int i = get_global_id(0); "
        f"w[i] = 0.5f * w[i] + 0.25f * ({reads}) + c; }}"
    )


#: one workload per read-arity; the update reads ``w`` too, so ordering
#: matters for every pair that shares a written buffer
TASKS = {
    k: Workload(key=f"graph/prop{k}", source=_task_source(k),
                kernel_name="task", global_size=(N,), local_size=(WG,))
    for k in range(MAX_READS + 1)
}

#: (write buffer, read buffers, scalar) — one generated launch
task_st = st.tuples(
    st.integers(0, NUM_BUFFERS - 1),
    st.lists(st.integers(0, NUM_BUFFERS - 1),
             max_size=MAX_READS, unique=True).map(tuple),
    st.integers(-4, 4),
)
graph_st = st.lists(task_st, min_size=3, max_size=8)

_INITIAL = np.random.default_rng(20260808).uniform(-1, 1, (NUM_BUFFERS, N))


def fresh_buffers() -> list[np.ndarray]:
    return [_INITIAL[b].copy() for b in range(NUM_BUFFERS)]


def task_args(task, buffers) -> dict:
    write, reads, c = task
    args = {"w": buffers[write]}
    for k, b in enumerate(reads):
        args[f"r{k}"] = buffers[b]
    args["c"] = float(c)
    return args


def conflicts(earlier, later) -> bool:
    """Ground truth, from buffer indices alone: do the two tasks need an
    order?  (One's write is touched by the other; ``w`` is also read.)"""
    w_a, reads_a, _ = earlier
    w_b, reads_b, _ = later
    touched_a = {w_a, *reads_a}
    touched_b = {w_b, *reads_b}
    return w_a in touched_b or w_b in touched_a


def serial_oracle(tasks, backend) -> list[bytes]:
    """The same task sequence on fresh buffers, one launch at a time."""
    buffers = fresh_buffers()
    chain_tasks = []
    for j, task in enumerate(tasks):
        deps = tuple(f"t{i}" for i in range(j) if conflicts(tasks[i], task))
        chain_tasks.append(ChainTask(
            key=f"t{j}", workload=TASKS[len(task[1])],
            args=task_args(task, buffers), deps=deps))
    chain = KernelChain(name="prop", tasks=chain_tasks,
                        buffers={str(b): buffers[b]
                                 for b in range(NUM_BUFFERS)})
    execute_chain_serial(chain, backend=backend)
    return [buffers[b].tobytes() for b in range(NUM_BUFFERS)]


@pytest.mark.parametrize("backend", BACKENDS)
@settings(max_examples=EXAMPLES, deadline=None)
@given(tasks=graph_st)
def test_random_graphs_match_serial_execution(trained_model, backend, tasks):
    buffers = fresh_buffers()
    with DopiaServer(KAVERI, trained_model, workers=4,
                     backend=backend) as server:
        session = server.session("prop")
        handles = [session.launch(TASKS[len(task[1])],
                                  task_args(task, buffers))
                   for task in tasks]
        for handle in handles:
            handle.result(timeout=120.0)
        assert server.drain(timeout=30.0)
        events = list(server.graph.events)

    # no lost or duplicated launches: one start + one done per task
    for handle in handles:
        node = handle.node
        assert events.count(("start", node.id, node.label)) == 1
        assert events.count(("done", node.id, node.label)) == 1

    # hazard pairs execute in submission order
    position = {
        (what, node_id): at for at, (what, node_id, _) in enumerate(events)
    }
    for j, later in enumerate(tasks):
        for i in range(j):
            if not conflicts(tasks[i], later):
                continue
            done_i = position[("done", handles[i].node.id)]
            start_j = position[("start", handles[j].node.id)]
            assert done_i < start_j, (
                f"task {i} conflicts with task {j} but finished after "
                f"it started: {tasks[i]} vs {later}")

    # bit-identical to the one-at-a-time run of the same sequence
    expected = serial_oracle(tasks, backend)
    for b in range(NUM_BUFFERS):
        assert buffers[b].tobytes() == expected[b], f"buffer {b} diverged"


@settings(max_examples=max(10, EXAMPLES // 4), deadline=None)
@given(
    deps_picks=st.lists(st.integers(0, 2 ** 8 - 1), min_size=2, max_size=7),
)
def test_explicit_random_dags_respect_declared_order(trained_model,
                                                     deps_picks):
    """submit_graph over private buffers: only declared edges order tasks.

    Each task gets its own buffers (no hazards at all), and depends on a
    random subset of earlier tasks encoded by ``deps_picks`` bitmasks —
    so any ordering the events log shows is the explicit machinery's.
    """
    space = TaskSpace("rand")
    deps_of = {}
    for j, mask in enumerate(deps_picks):
        deps = tuple(f"n{i}" for i in range(min(j, 8)) if mask & (1 << i))
        deps_of[f"n{j}"] = deps
        space.add(f"n{j}", TASKS[0],
                  {"w": np.zeros(N), "c": float(j)}, deps=deps)
    with DopiaServer(KAVERI, trained_model, workers=4,
                     backend="scalar") as server:
        handle = server.submit_graph(server.session("explicit"), space)
        results = handle.result(timeout=120.0)
        assert server.drain(timeout=30.0)
        events = list(server.graph.events)

    assert set(results) == set(deps_of)
    assert all(r.graph_id == handle.graph_id for r in results.values())
    position = {
        (what, node_id): at for at, (what, node_id, _) in enumerate(events)
    }
    for key, deps in deps_of.items():
        node = handle[key].node
        for dep in deps:
            assert (position[("done", handle[dep].node.id)]
                    < position[("start", node.id)])


def test_cycle_rejected_before_anything_runs(trained_model):
    space = TaskSpace("cycle")
    space.add("a", TASKS[0], {"w": np.zeros(N), "c": 0.0}, deps=["c"])
    space.add("b", TASKS[0], {"w": np.zeros(N), "c": 0.0}, deps=["a"])
    space.add("c", TASKS[0], {"w": np.zeros(N), "c": 0.0}, deps=["b"])
    with DopiaServer(KAVERI, trained_model, workers=2,
                     backend="scalar") as server:
        session = server.session("cycle")
        with pytest.raises(GraphCycleError):
            server.submit_graph(session, space)
        with server.stats._lock:
            assert server.stats.submitted == 0   # rejected whole
        # the server is unharmed: a well-formed graph still serves
        ok = TaskSpace("ok")
        out = np.zeros(N)
        ok.add("only", TASKS[0], {"w": out, "c": 1.0})
        server.submit_graph(session, ok).result(timeout=60.0)
        np.testing.assert_allclose(out, 1.0)
