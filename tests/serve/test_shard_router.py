"""Consistent-hash router: key stability, rebalancing bounds, escalation.

The unit half pins down :class:`repro.serve.shard.ConsistentHashRing`
(the routing substrate the sharded server's crash-recovery story leans
on): lookups are deterministic, removing a shard moves *only* that
shard's keys, and adding one steals about ``1/n`` of the space — never
a full reshuffle.

The integration half proves the router's **cross-shard hazard
escalation** ordering from its own scheduler event log: two kernels
pinned to *different* shards write the same buffer, so the dependent
launch must park at the router and its ``start`` event can only appear
after its predecessor's ``done`` — that log order *is* the proof the
escalation machinery provides (same-shard chains are ordered inside
the shard instead and make no such router-level promise).
"""

import numpy as np
import pytest

from repro.serve import ConsistentHashRing, ShardedServer
from repro.serve.shard import workload_ring_key
from repro.sim import KAVERI
from repro.workloads import Workload

KEYS = [f"kernel-{i}" for i in range(2000)]


def mapping(ring, keys=KEYS):
    return {key: ring.lookup(key) for key in keys}


# ---------------------------------------------------------------------------
# Ring unit tests
# ---------------------------------------------------------------------------


def test_lookup_deterministic_across_instances():
    first = ConsistentHashRing(range(4))
    second = ConsistentHashRing(range(4))
    assert mapping(first) == mapping(second)
    # and stable under repeated queries on one instance
    assert mapping(first) == mapping(first)


def test_empty_ring_and_membership():
    ring = ConsistentHashRing()
    assert ring.lookup("anything") is None
    assert len(ring) == 0
    ring.add(3)
    ring.add(3)                      # idempotent
    assert ring.nodes == frozenset({3})
    assert ring.lookup("anything") == 3
    ring.remove(3)
    ring.remove(3)                   # idempotent
    assert ring.lookup("anything") is None


def test_removal_moves_only_the_dead_shards_keys():
    ring = ConsistentHashRing(range(4))
    before = mapping(ring)
    ring.remove(2)
    after = mapping(ring)
    for key in KEYS:
        if before[key] == 2:
            assert after[key] != 2           # evacuated somewhere live
        else:
            assert after[key] == before[key]  # untouched


def test_adding_a_shard_steals_about_one_nth():
    ring = ConsistentHashRing(range(4))
    before = mapping(ring)
    ring.add(4)
    after = mapping(ring)
    moved = [key for key in KEYS if after[key] != before[key]]
    # every moved key moved TO the new shard — never between survivors
    assert all(after[key] == 4 for key in moved)
    # about 1/5 of the space, with generous slack for vnode variance
    assert 0.05 * len(KEYS) < len(moved) < 0.45 * len(KEYS)


def test_add_then_remove_restores_the_original_mapping():
    ring = ConsistentHashRing(range(4))
    before = mapping(ring)
    ring.add(7)
    ring.remove(7)
    assert mapping(ring) == before


def test_key_space_reasonably_balanced():
    ring = ConsistentHashRing(range(4))
    counts = {node: 0 for node in range(4)}
    for node in mapping(ring).values():
        counts[node] += 1
    for node, count in counts.items():
        assert count > 0.08 * len(KEYS), (node, counts)


def test_workload_ring_key_depends_only_on_source_and_kernel():
    source = "__kernel void k(__global float* w) { w[0] = 1.0f; }"
    a = Workload(key="a", source=source, kernel_name="k",
                 global_size=(64,), local_size=(16,))
    b = Workload(key="b", source=source, kernel_name="k",
                 global_size=(1024,), local_size=(64,))
    assert workload_ring_key(a) == workload_ring_key(b)
    other = Workload(key="c", source=source.replace("1.0f", "2.0f"),
                     kernel_name="k", global_size=(64,), local_size=(16,))
    assert workload_ring_key(other) != workload_ring_key(a)


# ---------------------------------------------------------------------------
# Cross-shard escalation: ordering proof from the event log
# ---------------------------------------------------------------------------

N = 64
WG = 16


def kernels_on_distinct_shards(shards: int = 2) -> tuple:
    """Two single-buffer write kernels whose ring keys map to different
    shards of a fresh ``shards``-ring (same construction the server
    uses), so every A->B hazard between them is cross-shard."""
    ring = ConsistentHashRing(range(shards))
    found: dict[int, Workload] = {}
    for i in range(256):
        source = (f"__kernel void step{i}(__global float* w) "
                  f"{{ int g = get_global_id(0); "
                  f"w[g] = w[g] * 0.5f + {i}.0f; }}")
        workload = Workload(key=f"chaos/step{i}", source=source,
                            kernel_name=f"step{i}",
                            global_size=(N,), local_size=(WG,))
        shard = ring.lookup(workload_ring_key(workload))
        if shard not in found:
            found[shard] = workload
        if len(found) == shards:
            return found[0], found[1]
    raise AssertionError("could not find kernels on distinct shards")


def test_cross_shard_hazard_escalation_orders_from_event_log(trained_model):
    """WAW chain alternating between two shards: every dependent parks at
    the router, and the scheduler event log shows each predecessor's
    ``done`` strictly before its dependent's ``start``."""
    a, b = kernels_on_distinct_shards(2)
    buf = np.arange(N, dtype=np.float32)
    expected = buf.copy()
    plan = [a, b, a, b, a, b]
    for workload in plan:           # serial oracle of w = w*0.5 + i
        step = float(workload.kernel_name.removeprefix("step"))
        expected = expected * np.float32(0.5) + np.float32(step)

    with ShardedServer(KAVERI, trained_model, shards=2, workers_per_shard=2,
                       backend="scalar", functional=True, simulate=False,
                       warm_start=False) as server:
        assert server.ring.lookup(workload_ring_key(a)) == 0
        assert server.ring.lookup(workload_ring_key(b)) == 1
        session = server.session("escalate")
        handles = [session.launch(workload, {"w": buf}) for workload in plan]
        for handle in handles:
            handle.result(timeout=120.0)
        assert server.drain(timeout=30.0)
        events = list(server.graph.events)
        stats = server.stats.snapshot()

    # every launch after the first is a cross-shard WAW -> escalated
    assert stats["escalated"] == len(plan) - 1
    assert stats["chained_same_shard"] == 0
    assert stats["completed"] == len(plan)
    assert stats["failed"] == 0

    # exactly-once, and done(dep) precedes start(dependent) in the log
    position = {}
    for at, (what, node_id, _) in enumerate(events):
        assert (what, node_id) not in position, "duplicate event"
        position[(what, node_id)] = at
    for earlier, later in zip(handles, handles[1:]):
        assert (position[("done", earlier.node.id)]
                < position[("start", later.node.id)])

    # and the escalated ordering produced the serial result
    np.testing.assert_array_equal(buf, expected)


def test_results_carry_their_shard_and_dep_counts(trained_model):
    a, b = kernels_on_distinct_shards(2)
    buf = np.zeros(N, dtype=np.float32)
    with ShardedServer(KAVERI, trained_model, shards=2, workers_per_shard=2,
                       backend="scalar", functional=True, simulate=False,
                       warm_start=False) as server:
        session = server.session("meta")
        first_handle = session.launch(a, {"w": buf})
        second_handle = session.launch(b, {"w": buf})
        first = first_handle.result(timeout=120.0)
        second = second_handle.result(timeout=120.0)
        escalated = server.stats.snapshot()["escalated"]
    assert first.shard == 0
    assert second.shard == 1
    assert first.deps == 0
    # the WAW edge exists iff the second launch was admitted before the
    # first completed; when it was, it must have parked (escalated)
    assert second.deps == escalated
    with pytest.raises(ValueError):
        ShardedServer(KAVERI, trained_model, shards=0)
