"""Graph stress harness: concurrent clients, interleaved real chains.

Eight barrier-synced clients each own a private FDTD-2D chain (two
timesteps — the s1∥s2 diamond twice over) *and* a private ATAX chain
(two strictly serial reps), submit both as whole graphs back-to-back,
and wait.  The suite proves, under a watchdog so a scheduling deadlock
fails fast instead of hanging CI:

* **bit identity** — every chain's final buffers equal a fresh same-seed
  chain executed one task at a time (the serial oracle), on the scalar
  interpreter and the jit tier alike;
* **numerical correctness** — each chain's NumPy reference still holds;
* **clean drain** — when every handle has resolved, the ledger holds no
  leases and no parked launches, and the graph scheduler is empty.
"""

import threading

import pytest

from repro.core.runtime import execute_chain_serial
from repro.serve import DopiaServer
from repro.sim import KAVERI
from repro.workloads.chains import make_atax_chain, make_fdtd_chain

CLIENTS = 8
WATCHDOG_S = 120.0
BACKENDS = ("scalar", "jit")


def make_chains(client: int):
    """One FDTD + one ATAX chain, seeded per client (disjoint buffers)."""
    return [
        make_fdtd_chain(steps=2, grid=8, seed=client),
        make_atax_chain(reps=2, seed=client),
    ]


@pytest.mark.parametrize("backend", BACKENDS)
def test_interleaved_chains_bit_identical_and_drained(trained_model, backend):
    chains = {client: make_chains(client) for client in range(CLIENTS)}
    errors = []
    errors_lock = threading.Lock()
    barrier = threading.Barrier(CLIENTS)

    with DopiaServer(KAVERI, trained_model, workers=2 * CLIENTS,
                     backend=backend) as server:

        def client_loop(client: int) -> None:
            try:
                session = server.session(f"stress-{client}")
                barrier.wait(timeout=WATCHDOG_S)
                handles = [server.submit_chain(session, chain)
                           for chain in chains[client]]
                for handle in handles:
                    results = handle.result(timeout=WATCHDOG_S)
                    assert all(r.trace is not None for r in results.values())
            except BaseException as error:  # noqa: BLE001 - collected below
                with errors_lock:
                    errors.append(error)

        threads = [threading.Thread(target=client_loop, args=(client,),
                                    name=f"stress-{client}")
                   for client in range(CLIENTS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=WATCHDOG_S)
            assert not thread.is_alive(), "stress client wedged (deadlock?)"
        if errors:
            raise errors[0]

        # every lease and parked launch released at drain
        assert server.drain(timeout=30.0)
        assert server.ledger.in_flight == 0
        assert server.ledger.waiting == 0
        assert server.graph.drained
        snapshot = server.graph.snapshot()
        total = sum(len(chain) for client in chains.values()
                    for chain in client)
        assert snapshot["submitted"] == total
        assert snapshot["poisoned"] == 0
        with server.stats._lock:
            assert server.stats.completed == total
            assert server.stats.failed == 0

    # bit identity + numerical correctness, per client and per chain
    for client in range(CLIENTS):
        for served, oracle in zip(chains[client], make_chains(client)):
            execute_chain_serial(oracle, backend=backend)
            assert served.buffer_bytes() == oracle.buffer_bytes(), (
                f"client {client} chain {served.name} diverged from the "
                f"serial oracle on backend {backend}")
            assert served.verify(), (
                f"client {client} chain {served.name} fails its NumPy "
                f"reference on backend {backend}")
