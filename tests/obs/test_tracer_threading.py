"""Regression: the tracer under many threads (serving-layer workers).

Multi-thread guarantees: thread ordinals are unique, per-session context
flows into every event a worker records, the JSONL export reconstructs
each thread's span nesting exactly, and the bounded ring's drop counter
stays consistent with what survived.
"""

import threading
from collections import defaultdict

from repro.obs import read_jsonl, write_jsonl
from repro.obs.tracer import Tracer

THREADS = 6


def worker_trace(tracer, name):
    with tracer.context(session=name):
        with tracer.span("outer", "serve", who=name):
            tracer.instant("tick", "serve")
            with tracer.span("inner", "serve"):
                tracer.counter("work", 1.0)


def run_threads(tracer):
    barrier = threading.Barrier(THREADS)

    def run(name):
        barrier.wait()
        for _ in range(3):
            worker_trace(tracer, name)

    threads = [threading.Thread(target=run, args=(f"session-{i}",))
               for i in range(THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


def test_thread_ordinals_are_unique_and_dense():
    tracer = Tracer()
    tracer.enable()
    run_threads(tracer)
    tids = {event.tid for event in tracer.events()}
    assert len(tids) == THREADS
    assert tids == set(range(THREADS))  # small dense ordinals, no duplicates


def test_context_tags_every_event_with_its_session():
    tracer = Tracer()
    tracer.enable()
    run_threads(tracer)
    by_tid = defaultdict(set)
    for event in tracer.events():
        assert "session" in event.args, event.name
        by_tid[event.tid].add(event.args["session"])
    # a thread's events all carry that thread's session, never a neighbour's
    assert all(len(sessions) == 1 for sessions in by_tid.values())
    assert len(set().union(*by_tid.values())) == THREADS


def test_jsonl_roundtrip_reconstructs_per_thread_nesting(tmp_path):
    tracer = Tracer()
    tracer.enable()
    run_threads(tracer)
    path = tmp_path / "serve-trace.jsonl"
    write_jsonl(tracer.events(), path)
    events = read_jsonl(path)
    assert len(events) == len(tracer.events())

    spans_by_tid = defaultdict(list)
    for event in events:
        if event.phase == "X":
            spans_by_tid[event.tid].append(event)
    assert len(spans_by_tid) == THREADS
    for tid, spans in spans_by_tid.items():
        inners = [s for s in spans if s.name == "inner"]
        outers = [s for s in spans if s.name == "outer"]
        assert len(inners) == len(outers) == 3
        # chronological pairing: each inner nests inside one outer
        inners.sort(key=lambda s: s.ts_us)
        outers.sort(key=lambda s: s.ts_us)
        for inner, outer in zip(inners, outers):
            assert inner.depth == outer.depth + 1
            assert outer.ts_us <= inner.ts_us
            assert inner.ts_us + inner.dur_us <= outer.ts_us + outer.dur_us + 1e-3


def test_ring_drop_counter_is_consistent_under_threads():
    tracer = Tracer(capacity=32)
    tracer.enable()
    emitted_per_thread = 50
    barrier = threading.Barrier(THREADS)

    def flood(index):
        barrier.wait()
        for j in range(emitted_per_thread):
            tracer.instant("flood", "serve", index=index, j=j)

    threads = [threading.Thread(target=flood, args=(i,))
               for i in range(THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    events = tracer.events()
    total = THREADS * emitted_per_thread
    assert len(events) == 32                      # ring stayed bounded
    assert tracer.total_events == total           # nothing went uncounted
    assert tracer.dropped == total - len(events)  # drops = emitted - kept
    tracer.clear()
    assert tracer.dropped == 0
