"""Zero-perturbation proof: tracing must never change what a run computes.

For every Table-4 registry kernel (scaled) on both interpreter backends,
one launch is driven through the full interposed path twice — tracer off,
then tracer on — and the two runs must be **bit-identical**: every output
buffer byte-for-byte, and the recorded :class:`LaunchRecord` equal field
for field (same selected configuration, same 44 scores, same simulated
time).  The simulator's noise model is keyed deterministically, so any
divergence here would be the tracer's fault.
"""

import numpy as np
import pytest

from repro import cl
from repro.obs import tracer
from repro.workloads import SCALED_REAL_FACTORIES


@pytest.fixture(autouse=True)
def clean_tracer():
    tracer.disable()
    tracer.clear()
    yield
    tracer.disable()
    tracer.clear()


def run_launch(runtime, workload, backend, traced):
    """One interposed launch; returns (buffer bytes, LaunchRecord)."""
    runtime.backend = backend
    runtime.clear()
    tracer.clear()
    if traced:
        tracer.enable()
    try:
        with cl.interposed(runtime):
            context = cl.create_context("kaveri")
            program = context.create_program_with_source(workload.source).build()
            kernel = program.create_kernel(workload.kernel_name)
            buffers = {}
            for name, value in workload.full_args(rng=0).items():
                if isinstance(value, np.ndarray):
                    buffers[name] = context.create_buffer(value)
                    kernel.set_arg(name, buffers[name])
                else:
                    kernel.set_arg(name, value)
            queue = cl.create_command_queue(context)
            queue.enqueue_nd_range_kernel(
                kernel, workload.global_size, workload.local_size,
                irregular_trip_hint=workload.irregular_trip_hint,
            )
        assert len(runtime.launches) == 1
        record = runtime.launches[0]
        contents = {name: buf.array.tobytes() for name, buf in buffers.items()}
        if traced:
            assert tracer.events(), "traced run recorded no events"
        else:
            assert tracer.events() == []
        return contents, record
    finally:
        tracer.disable()
        runtime.backend = None


def assert_records_equal(plain, traced):
    assert traced.kernel == plain.kernel
    assert traced.prediction.config == plain.prediction.config
    assert (traced.prediction.scores.tobytes()
            == plain.prediction.scores.tobytes())
    assert traced.prediction.inference_cost_s == plain.prediction.inference_cost_s
    assert traced.result == plain.result
    assert traced.time_s == plain.time_s


@pytest.mark.parametrize("backend", ["scalar", "auto"])
@pytest.mark.parametrize("name", list(SCALED_REAL_FACTORIES))
def test_traced_run_bit_identical(trained_runtime, name, backend):
    workload = SCALED_REAL_FACTORIES[name]()

    plain_buffers, plain_record = run_launch(
        trained_runtime, workload, backend, traced=False
    )
    traced_buffers, traced_record = run_launch(
        trained_runtime, workload, backend, traced=True
    )

    assert traced_buffers.keys() == plain_buffers.keys()
    for buf, content in plain_buffers.items():
        assert traced_buffers[buf] == content, (
            f"{name} [{backend}]: buffer {buf!r} differs under tracing"
        )
    assert_records_equal(plain_record, traced_record)


def test_traced_run_emits_the_advertised_events(trained_runtime):
    """The ISSUE acceptance check: predictor (all 44 scored configs),
    scheduler activity, and backend selection all present in one trace."""
    workload = SCALED_REAL_FACTORIES["GESUMMV"]()
    runtime = trained_runtime
    runtime.clear()
    tracer.clear()
    tracer.enable()
    try:
        with cl.interposed(runtime):
            context = cl.create_context("kaveri")
            program = context.create_program_with_source(workload.source).build()
            kernel = program.create_kernel(workload.kernel_name)
            for arg, value in workload.full_args(rng=0).items():
                kernel.set_arg(
                    arg,
                    context.create_buffer(value)
                    if isinstance(value, np.ndarray) else value,
                )
            queue = cl.create_command_queue(context)
            queue.enqueue_nd_range_kernel(
                kernel, workload.global_size, workload.local_size
            )
        events = tracer.events()
    finally:
        tracer.disable()

    names = {event.name for event in events}
    assert "predictor.select" in names
    assert "backend.choice" in names
    assert "sim.execute" in names
    assert names & {"schedule.cpu_pull", "schedule.gpu_chunk"}

    select = next(e for e in events if e.name == "predictor.select")
    assert len(select.args["configs"]) == 44
    record = next(e for e in events if e.name == "dopia.launch_record")
    chosen = runtime.launches[0].prediction.config.setting
    assert record.args["cpu_threads"] == chosen.cpu_threads
    assert record.args["gpu_fraction"] == chosen.gpu_fraction
