"""Solver-effort observability: the verifier exports its search cost.

Every traced ``verify_launch`` emits ``verify.solver_nodes`` (cumulative
branch-and-prune nodes), ``verify.solver_budget_exhausted`` when a query
hit the node budget, and one ``verify.solver_unknown_total.<pass>``
counter per pass that ends at ``unknown`` — the inputs to ``dopia
stats`` and the CI ratchet's denominator.
"""

import numpy as np
import pytest

from repro.analysis.verify import LaunchSpec, verify_launch
from repro.frontend.parser import parse, parse_kernel
from repro.frontend.semantics import analyze_kernel
from repro.interp.ndrange import NDRange
from repro.obs import tracer

TILED = """
__kernel void tiled(__global float* A, int nx)
{
    int id = get_global_id(0);
    A[(id / nx) * nx + (id % nx)] = 1.0f;
}
"""

INDIRECT = """
__kernel void gather(__global float* out, __global int* col, int n)
{
    int i = get_global_id(0);
    if (i < n) out[i] = (float)col[col[i]];
}
"""


@pytest.fixture(autouse=True)
def clean_tracer():
    tracer.disable()
    tracer.clear()
    yield
    tracer.disable()
    tracer.clear()


def info_of(source):
    return analyze_kernel(parse_kernel(source), parse(source))


def traced_verify(source, **args):
    tracer.enable()
    info = info_of(source)
    report = verify_launch(
        info, LaunchSpec.from_args(NDRange((64,), (16,)), args))
    return report, dict(tracer.counters)


class TestSolverMetrics:
    def test_solver_nodes_counted_for_divmod_proof(self):
        report, counters = traced_verify(TILED, A=np.zeros(64), nx=8)
        assert report.verdicts["races"] == "clean"
        # the (q, r) defining system forces real search work
        assert counters.get("verify.solver_nodes", 0) > 0
        assert "verify.solver_budget_exhausted" not in counters

    def test_unknown_verdicts_counted_per_pass(self):
        report, counters = traced_verify(
            INDIRECT, out=np.zeros(64),
            col=np.zeros(64, dtype=np.int32), n=64)
        assert report.verdicts["oob"] == "unknown"
        assert counters.get("verify.solver_unknown_total.oob") == 1.0
        # races resolved: no race-pass unknown counter
        assert "verify.solver_unknown_total.races" not in counters

    def test_disabled_tracer_records_nothing(self):
        info = info_of(TILED)
        verify_launch(info, LaunchSpec.from_args(
            NDRange((64,), (16,)), {"A": np.zeros(64), "nx": 8}))
        assert tracer.counters == {}
