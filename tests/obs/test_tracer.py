"""Unit tests for the tracer core, exports, and summaries."""

import dataclasses
import json

import pytest

from repro.obs import (
    JSONL_KEYS,
    Histogram,
    Tracer,
    env_trace_request,
    event_from_json,
    event_to_json,
    format_summary,
    read_jsonl,
    summarize,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.tracer import NULL_SPAN


def make_tracer(capacity=64) -> Tracer:
    tracer = Tracer(capacity=capacity)
    tracer.enable()
    return tracer


class TestRecording:
    def test_disabled_records_nothing(self):
        tracer = Tracer()
        with tracer.span("work", "test", detail=1):
            tracer.instant("point", "test")
            tracer.counter("n")
            tracer.observe("v", 1.0)
        assert tracer.events() == []
        assert tracer.counters == {}
        assert tracer.histograms == {}
        assert tracer.total_events == 0

    def test_disabled_span_is_the_shared_null_span(self):
        tracer = Tracer()
        assert tracer.span("anything") is NULL_SPAN

    def test_span_records_complete_event(self):
        tracer = make_tracer()
        with tracer.span("work", "test", kernel="k"):
            pass
        (event,) = tracer.events()
        assert event.name == "work"
        assert event.category == "test"
        assert event.phase == "X"
        assert event.dur_us >= 0.0
        assert event.args == {"kernel": "k"}

    def test_span_nesting_depth(self):
        tracer = make_tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                tracer.instant("leaf")
        by_name = {e.name: e for e in tracer.events()}
        assert by_name["outer"].depth == 0
        assert by_name["inner"].depth == 1
        assert by_name["leaf"].depth == 2
        # inner closes before outer, so it is recorded first
        assert [e.name for e in tracer.events()] == ["leaf", "inner", "outer"]

    def test_span_recorded_on_exception(self):
        tracer = make_tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        assert [e.name for e in tracer.events()] == ["doomed"]

    def test_ring_buffer_bounds_and_drop_count(self):
        tracer = make_tracer(capacity=8)
        for i in range(20):
            tracer.instant(f"e{i}")
        events = tracer.events()
        assert len(events) == 8
        assert tracer.total_events == 20
        assert tracer.dropped == 12
        # the ring keeps the newest window
        assert [e.name for e in events] == [f"e{i}" for i in range(12, 20)]

    def test_counters_accumulate_and_emit_running_total(self):
        tracer = make_tracer()
        tracer.counter("launches")
        tracer.counter("launches", 2.0)
        assert tracer.counters == {"launches": 3.0}
        totals = [e.args["launches"] for e in tracer.events()]
        assert totals == [1.0, 3.0]

    def test_clear_resets_everything(self):
        tracer = make_tracer(capacity=4)
        for _ in range(6):
            tracer.instant("e")
        tracer.counter("n")
        tracer.observe("v", 2.0)
        tracer.clear()
        assert tracer.events() == []
        assert tracer.counters == {}
        assert tracer.histograms == {}
        assert tracer.dropped == 0
        assert tracer.enabled  # clear does not toggle recording

    def test_enable_can_resize_the_ring(self):
        tracer = make_tracer(capacity=4)
        for i in range(4):
            tracer.instant(f"e{i}")
        tracer.enable(capacity=2)
        assert len(tracer.events()) == 2
        assert tracer.capacity == 2


class TestHistogram:
    def test_observe_tracks_distribution(self):
        h = Histogram()
        for v in (0.5, 1.0, 3.0, 5.0):
            h.observe(v)
        assert h.count == 4
        assert h.total == pytest.approx(9.5)
        assert h.min == 0.5
        assert h.max == 5.0
        assert h.mean == pytest.approx(9.5 / 4)
        # 0.5 and 1.0 -> bucket 0; 3.0 -> 2; 5.0 -> 3
        assert h.buckets == {0: 2, 2: 1, 3: 1}

    def test_tracer_observe_feeds_named_histogram(self):
        tracer = make_tracer()
        tracer.observe("time_s", 0.25)
        tracer.observe("time_s", 0.75)
        assert tracer.histograms["time_s"].count == 2
        assert tracer.events() == []  # histograms do not emit events


class TestEnvToggle:
    @pytest.mark.parametrize("value", ["", "0", "false", "OFF", "no"])
    def test_falsy_means_disabled(self, value):
        assert env_trace_request({"DOPIA_TRACE": value}) is None

    @pytest.mark.parametrize("value", ["1", "true", "ON", "yes"])
    def test_truthy_means_in_memory(self, value):
        assert env_trace_request({"DOPIA_TRACE": value}) == "1"

    def test_anything_else_is_an_export_path(self):
        assert env_trace_request({"DOPIA_TRACE": "/tmp/t.jsonl"}) == "/tmp/t.jsonl"

    def test_unset_means_disabled(self):
        assert env_trace_request({}) is None


class TestExport:
    def events(self):
        tracer = make_tracer()
        with tracer.span("work", "test", kernel="k", n=3):
            tracer.instant("point", "test", groups=[1, 2])
        tracer.counter("n", 2.0)
        return tracer.events(), dict(tracer.counters)

    @staticmethod
    def rounded(event):
        # timestamps are rounded to nanosecond precision on export
        return dataclasses.replace(
            event, ts_us=round(event.ts_us, 3), dur_us=round(event.dur_us, 3)
        )

    def test_jsonl_round_trip(self, tmp_path):
        events, _ = self.events()
        path = write_jsonl(events, tmp_path / "t.jsonl")
        for line in path.read_text().splitlines():
            record = json.loads(line)
            assert tuple(record) == JSONL_KEYS
        assert read_jsonl(path) == [self.rounded(e) for e in events]

    def test_event_json_round_trip(self):
        events, _ = self.events()
        for event in events:
            assert event_from_json(event_to_json(event)) == self.rounded(event)

    def test_chrome_trace_is_loadable_and_complete(self, tmp_path):
        events, counters = self.events()
        path = write_chrome_trace(events, tmp_path / "t.json", counters)
        data = json.loads(path.read_text())
        assert isinstance(data["traceEvents"], list)
        assert len(data["traceEvents"]) == len(events)
        phases = {e["ph"] for e in data["traceEvents"]}
        assert phases == {"X", "i", "C"}
        span = next(e for e in data["traceEvents"] if e["ph"] == "X")
        assert span["dur"] >= 0
        assert data["otherData"]["counters"] == counters

    def test_chrome_trace_counters_optional(self):
        events, _ = self.events()
        data = to_chrome_trace(events)
        assert len(data["traceEvents"]) == len(events)


class TestSummary:
    def test_summarize_aggregates_by_kind(self):
        tracer = make_tracer()
        for _ in range(3):
            with tracer.span("work", "test"):
                tracer.instant("point", "test")
        tracer.counter("n", 5.0)
        summary = summarize(tracer.events())
        assert summary.spans[("test", "work")].count == 3
        assert summary.instants[("test", "point")] == 3
        assert summary.counters == {"n": 5.0}
        assert summary.n_events == 7

    def test_format_summary_is_readable(self):
        tracer = make_tracer()
        with tracer.span("work", "test"):
            pass
        text = format_summary(summarize(tracer.events()))
        assert "events    : 1" in text
        assert "work" in text
