"""Shared fixture: one small trained runtime for the observability suite."""

import pytest

from repro.core import DopiaRuntime, collect_dataset
from repro.ml import make_model
from repro.sim import KAVERI
from repro.workloads.synthetic import training_workloads


@pytest.fixture(scope="session")
def trained_runtime():
    workloads = training_workloads(sizes=(16384,), wg_sizes=(256,))
    dataset = collect_dataset(workloads, KAVERI, cache=False)
    model = make_model("dt")
    model.fit(dataset.feature_matrix(), dataset.targets())
    return DopiaRuntime(KAVERI, model)
