"""Unit tests for the functional kernel interpreter."""

import numpy as np
import pytest

from repro.interp import KernelRuntimeError, NDRange, execute_kernel
from repro.interp.builtins import c_div, c_mod


class TestCSemantics:
    def test_division_truncates_toward_zero(self):
        assert c_div(7, 2) == 3
        assert c_div(-7, 2) == -3
        assert c_div(7, -2) == -3

    def test_modulo_has_dividend_sign(self):
        assert c_mod(7, 3) == 1
        assert c_mod(-7, 3) == -1

    def test_float_division_is_exact(self):
        assert c_div(7.0, 2.0) == 3.5


class TestBasicExecution:
    def test_vector_add(self):
        a = np.arange(32, dtype=np.float64)
        b = np.full(32, 2.0)
        c = np.zeros(32)
        execute_kernel(
            "__kernel void f(__global float* A, __global float* B,"
            "                __global float* C, int n)"
            "{ int i = get_global_id(0); if (i < n) C[i] = A[i] + B[i]; }",
            {"A": a, "B": b, "C": c, "n": 32},
            NDRange(32, 8),
        )
        assert np.allclose(c, a + b)

    def test_guard_prevents_out_of_range(self):
        a = np.zeros(8)
        execute_kernel(
            "__kernel void f(__global float* A, int n)"
            "{ int i = get_global_id(0); if (i < n) A[i] = 1.0f; }",
            {"A": a, "n": 5},
            NDRange(8, 4),
        )
        assert a.sum() == 5.0

    def test_loop_accumulation(self):
        out = np.zeros(4)
        execute_kernel(
            "__kernel void f(__global float* O, int m)"
            "{ int i = get_global_id(0); float s = 0.0f;"
            "  for (int j = 0; j < m; j++) s = s + j;"
            "  O[i] = s; }",
            {"O": out, "m": 5},
            NDRange(4, 2),
        )
        assert np.all(out == 10.0)

    def test_break_and_continue(self):
        out = np.zeros(1)
        execute_kernel(
            "__kernel void f(__global float* O, int m)"
            "{ float s = 0.0f;"
            "  for (int j = 0; j < m; j++) {"
            "    if (j == 2) continue;"
            "    if (j == 5) break;"
            "    s = s + 1.0f; }"
            "  O[0] = s; }",
            {"O": out, "m": 100},
            NDRange(1, 1),
        )
        assert out[0] == 4.0  # j in {0,1,3,4}

    def test_return_ends_work_item(self):
        out = np.zeros(4)
        execute_kernel(
            "__kernel void f(__global float* O)"
            "{ int i = get_global_id(0);"
            "  if (i > 1) return;"
            "  O[i] = 1.0f; }",
            {"O": out},
            NDRange(4, 4),
        )
        assert list(out) == [1.0, 1.0, 0.0, 0.0]

    def test_while_and_do_while(self):
        out = np.zeros(2)
        execute_kernel(
            "__kernel void f(__global float* O)"
            "{ int i = 0; while (i < 3) i++;"
            "  int j = 0; do { j++; } while (j < 5);"
            "  O[0] = i; O[1] = j; }",
            {"O": out},
            NDRange(1, 1),
        )
        assert list(out) == [3.0, 5.0]

    def test_ternary_and_builtins(self):
        out = np.zeros(4)
        execute_kernel(
            "__kernel void f(__global float* O)"
            "{ int i = get_global_id(0);"
            "  O[i] = (i % 2 == 0) ? sqrt(4.0f) : fmax(1.0f, 7.0f); }",
            {"O": out},
            NDRange(4, 2),
        )
        assert list(out) == [2.0, 7.0, 2.0, 7.0]

    def test_int_truncation_on_store(self):
        out = np.zeros(1)
        execute_kernel(
            "__kernel void f(__global float* O)"
            "{ int x = 7 / 2; O[0] = x; }",
            {"O": out},
            NDRange(1, 1),
        )
        assert out[0] == 3.0


class TestWorkItemFunctions:
    def test_global_local_group_id_relationship(self):
        n, wg = 64, 16
        gids = np.zeros(n)
        lids = np.zeros(n)
        grps = np.zeros(n)
        execute_kernel(
            "__kernel void f(__global float* G, __global float* L, __global float* W)"
            "{ int i = get_global_id(0);"
            "  G[i] = get_global_id(0); L[i] = get_local_id(0); W[i] = get_group_id(0); }",
            {"G": gids, "L": lids, "W": grps},
            NDRange(n, wg),
        )
        for i in range(n):
            assert gids[i] == i
            assert lids[i] == i % wg
            assert grps[i] == i // wg

    def test_global_offset(self):
        out = np.zeros(32)
        execute_kernel(
            "__kernel void f(__global float* O)"
            "{ O[get_global_id(0)] = 1.0f; }",
            {"O": out},
            NDRange(8, 8, offset=(16,)),
        )
        assert out[16:24].sum() == 8.0
        assert out.sum() == 8.0

    def test_sizes_and_num_groups(self):
        out = np.zeros(4)
        execute_kernel(
            "__kernel void f(__global float* O)"
            "{ O[0] = get_global_size(0); O[1] = get_local_size(0);"
            "  O[2] = get_num_groups(0); O[3] = get_work_dim(); }",
            {"O": out},
            NDRange(32, 8),
        )
        assert list(out) == [32.0, 8.0, 4.0, 1.0]

    def test_2d_ids(self):
        out = np.zeros(8 * 4)
        execute_kernel(
            "__kernel void f(__global float* O, int w)"
            "{ int x = get_global_id(0); int y = get_global_id(1);"
            "  O[y * w + x] = x * 100 + y; }",
            {"O": out, "w": 8},
            NDRange((8, 4), (4, 2)),
        )
        for y in range(4):
            for x in range(8):
                assert out[y * 8 + x] == x * 100 + y


class TestSynchronisation:
    def test_barrier_with_local_memory(self):
        # work-item 0 seeds local memory; others read it after the barrier
        out = np.zeros(16)
        execute_kernel(
            "__kernel void f(__global float* O)"
            "{ __local int s[1];"
            "  if (get_local_id(0) == 0) s[0] = get_group_id(0) + 7;"
            "  barrier(1);"
            "  O[get_global_id(0)] = s[0]; }",
            {"O": out},
            NDRange(16, 8),
        )
        assert np.all(out[:8] == 7.0)
        assert np.all(out[8:] == 8.0)

    def test_atomic_inc_counts_all_items(self):
        counter = np.zeros(1, dtype=np.int64)
        execute_kernel(
            "__kernel void f(__global int* C)"
            "{ atomic_inc(C); }",
            {"C": counter},
            NDRange(64, 16),
        )
        assert counter[0] == 64

    def test_atomic_add_and_max(self):
        cell = np.zeros(2, dtype=np.int64)
        execute_kernel(
            "__kernel void f(__global int* C)"
            "{ int i = get_global_id(0);"
            "  atomic_add(C, 2); atomic_max(&C[1], i); }",
            {"C": cell},
            NDRange(8, 4),
        )
        assert cell[0] == 16
        assert cell[1] == 7

    def test_divergent_barrier_detected(self):
        with pytest.raises(KernelRuntimeError):
            execute_kernel(
                "__kernel void f(__global float* O)"
                "{ if (get_local_id(0) == 0) barrier(1); O[0] = 1.0f; }",
                {"O": np.zeros(1)},
                NDRange(4, 4),
            )


class TestErrors:
    def test_out_of_bounds_raises(self):
        with pytest.raises(KernelRuntimeError):
            execute_kernel(
                "__kernel void f(__global float* A)"
                "{ A[99] = 1.0f; }",
                {"A": np.zeros(4)},
                NDRange(1, 1),
            )

    def test_missing_argument_raises(self):
        with pytest.raises(KernelRuntimeError):
            execute_kernel(
                "__kernel void f(__global float* A, int n) { }",
                {"A": np.zeros(4)},
                NDRange(1, 1),
            )

    def test_scalar_passed_for_buffer_raises(self):
        with pytest.raises(KernelRuntimeError):
            execute_kernel(
                "__kernel void f(__global float* A) { A[0] = 1.0f; }",
                {"A": 3.0},
                NDRange(1, 1),
            )


class TestNDRange:
    def test_local_must_divide_global(self):
        with pytest.raises(ValueError):
            NDRange(10, 3)

    def test_linearisation_roundtrip(self):
        nd = NDRange((8, 4), (2, 2))
        for linear in range(nd.total_groups):
            assert nd.linear_group_id(nd.group_from_linear(linear)) == linear

    def test_local_ids_dimension0_fastest(self):
        nd = NDRange((4, 4), (2, 2))
        ids = list(nd.local_ids())
        assert ids[0] == (0, 0)
        assert ids[1] == (1, 0)

    def test_group_subset_execution(self):
        out = np.zeros(32)
        execute_kernel(
            "__kernel void f(__global float* O)"
            "{ O[get_global_id(0)] = 1.0f; }",
            {"O": out},
            NDRange(32, 8),
            group_ids=[(1,), (3,)],
        )
        assert out[8:16].sum() == 8 and out[24:32].sum() == 8
        assert out.sum() == 16


class TestPointerBounds:
    """Pointer arithmetic forms unchecked refs (as C allows); *using* an
    out-of-range ref — load, store, or atomic — is a kernel error rather
    than NumPy's silent negative-index wraparound."""

    def test_pointer_offset_deref(self):
        args = {"A": np.zeros(8), "S": np.zeros(2), "n": 8}
        execute_kernel(
            """
            __kernel void f(__global float* A, __global float* S, int n)
            {
                __global float* p = A + 2;
                *p = 7.0f;
                __global float* q = A + 5;
                S[0] = (float)(q - p);
            }
            """,
            args,
            NDRange(1, 1),
        )
        assert args["A"][2] == 7.0
        assert args["S"][0] == 3.0

    def test_store_past_end_raises(self):
        with pytest.raises(KernelRuntimeError, match="out-of-bounds pointer"):
            execute_kernel(
                "__kernel void f(__global float* A, int n)"
                "{ *(A + n) = 1.0f; }",
                {"A": np.zeros(4), "n": 4},
                NDRange(1, 1),
            )

    def test_negative_offset_load_raises(self):
        """The critical case: NumPy would happily serve ``A[-1]``."""
        with pytest.raises(KernelRuntimeError, match="offset -1"):
            execute_kernel(
                "__kernel void f(__global float* A)"
                "{ float v = *(A - 1); A[0] = v; }",
                {"A": np.zeros(4)},
                NDRange(1, 1),
            )

    def test_buffer_not_clobbered_before_error(self):
        args = {"A": np.zeros(4)}
        with pytest.raises(KernelRuntimeError):
            execute_kernel(
                "__kernel void f(__global float* A)"
                "{ float v = *(A - 1); A[3] = v + 1.0f; }",
                args,
                NDRange(1, 1),
            )
        assert args["A"][3] == 0.0

    def test_cross_buffer_subtraction_raises(self):
        with pytest.raises(KernelRuntimeError, match="different buffers"):
            execute_kernel(
                "__kernel void f(__global float* A, __global float* B,"
                " __global float* S)"
                "{ S[0] = (float)((B + 1) - (A + 0)); }",
                {"A": np.zeros(4), "B": np.zeros(4), "S": np.zeros(1)},
                NDRange(1, 1),
            )

    def test_atomic_through_oob_pointer_raises(self):
        with pytest.raises(KernelRuntimeError, match="out-of-bounds pointer"):
            execute_kernel(
                "__kernel void f(__global int* C, int n)"
                "{ atomic_add(C + n, 1); }",
                {"C": np.zeros(2, dtype=np.int64), "n": 2},
                NDRange(1, 1),
            )

    def test_vector_backend_oob_raises_too(self):
        with pytest.raises(KernelRuntimeError, match="out-of-bounds"):
            execute_kernel(
                "__kernel void f(__global float* A, int n)"
                "{ A[get_global_id(0) + n] = 1.0f; }",
                {"A": np.zeros(4), "n": 1},
                NDRange(4, 4),
                backend="vector",
            )
