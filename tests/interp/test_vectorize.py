"""Unit tests for the vectorized backend's machinery.

The end-to-end bit-identity evidence lives in ``test_differential``;
this file pins down the pieces: the eligibility pass, backend
resolution, the transparent runtime fallback, and the execution-stats
counters.
"""

import numpy as np
import pytest

from repro.frontend import analyze_kernel, parse
from repro.interp import (
    AUTO_MIN_WORK_ITEMS,
    KernelExecutor,
    NDRange,
    VectorizedExecutor,
    check_vectorizable,
    execution_stats,
    make_executor,
    resolve_backend,
)
from repro.interp import vectorize
from repro.interp.stats import ExecutionStats

SAXPY = """
__kernel void saxpy(__global float* X, __global float* Y, float a, int n)
{
    int i = get_global_id(0);
    if (i < n) Y[i] = a * X[i] + Y[i];
}
"""


def info_of(source):
    unit = parse(source)
    return analyze_kernel(unit.kernels()[0], unit)


def saxpy_args(n=128):
    rng = np.random.default_rng(7)
    return {"X": rng.standard_normal(n), "Y": rng.standard_normal(n),
            "a": 2.5, "n": n}


class TestEligibility:
    def test_plain_kernel_eligible(self):
        assert check_vectorizable(info_of(SAXPY)).eligible

    @pytest.mark.parametrize("body,needle", [
        ("barrier(1); A[get_global_id(0)] = 1.0f;", "barrier"),
        ("atomic_inc(&A[0]);", "atomic"),
        ("__local float tile[4]; A[0] = 1.0f;", "tile"),
        ("float scratch[4]; scratch[0] = 1.0f; A[0] = scratch[0];",
         "private array"),
        ("__global float* p = A; *p = 1.0f;", "pointer"),
        ("*(A + 1) = 1.0f;", "pointer indirection"),
    ])
    def test_rejections(self, body, needle):
        source = "__kernel void f(__global float* A) { %s }" % body
        eligibility = check_vectorizable(info_of(source))
        assert not eligibility.eligible
        assert needle in eligibility.reason

    def test_pointer_reassignment_in_helper_rejected(self):
        source = """
        float head(__global float* p) { p = p + 1; return p[0]; }
        __kernel void f(__global float* A) { A[0] = head(A); }
        """
        eligibility = check_vectorizable(info_of(source))
        assert not eligibility.eligible
        assert "helper" in eligibility.reason

    def test_result_is_memoized(self):
        info = info_of(SAXPY)
        assert check_vectorizable(info) is check_vectorizable(info)


class TestBackendResolution:
    def test_default_is_auto(self, monkeypatch):
        monkeypatch.delenv("DOPIA_BACKEND", raising=False)
        assert resolve_backend() == "auto"

    def test_environment_default(self, monkeypatch):
        monkeypatch.setenv("DOPIA_BACKEND", "scalar")
        assert resolve_backend() == "scalar"

    def test_explicit_beats_environment(self, monkeypatch):
        monkeypatch.setenv("DOPIA_BACKEND", "scalar")
        assert resolve_backend("vector") == "vector"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("simd")

    def test_scalar_forced(self):
        executor = make_executor(info_of(SAXPY), saxpy_args(), NDRange(128, 32),
                                 backend="scalar")
        assert isinstance(executor, KernelExecutor)

    def test_vector_for_eligible(self):
        executor = make_executor(info_of(SAXPY), saxpy_args(), NDRange(128, 32),
                                 backend="vector")
        assert isinstance(executor, VectorizedExecutor)

    def test_auto_keeps_small_launches_scalar(self):
        n = AUTO_MIN_WORK_ITEMS // 2
        executor = make_executor(info_of(SAXPY), saxpy_args(n), NDRange(n, 1),
                                 backend="auto")
        assert isinstance(executor, KernelExecutor)

    def test_auto_compiles_large_launches(self):
        from repro.interp import JitExecutor

        n = AUTO_MIN_WORK_ITEMS * 2
        executor = make_executor(info_of(SAXPY), saxpy_args(n), NDRange(n, 32),
                                 backend="auto")
        assert isinstance(executor, JitExecutor)

    def test_jit_backend_for_eligible(self):
        from repro.interp import JitExecutor

        executor = make_executor(info_of(SAXPY), saxpy_args(), NDRange(128, 32),
                                 backend="jit")
        assert isinstance(executor, JitExecutor)

    def test_jit_declines_to_vector(self):
        # A lane-varying loop bound is outside the JIT subset but fine
        # for the masked interpreter: jit must hand over, not fail.
        source = """
        __kernel void lanes(__global float* A)
        {
            int i = get_global_id(0);
            float acc = 0.0f;
            for (int j = 0; j < i; j++) acc = acc + A[j];
            A[i] = acc;
        }
        """
        execution_stats.reset()
        try:
            executor = make_executor(
                info_of(source), {"A": np.zeros(128)}, NDRange(128, 32),
                backend="jit")
            assert isinstance(executor, VectorizedExecutor)
            assert execution_stats.backend_for("lanes") == "vector"
            assert execution_stats.fallback_count("lanes", tier="jit") == 1
            assert execution_stats.fallback_count("lanes", tier="vector") == 0
        finally:
            execution_stats.reset()

    def test_ineligible_runs_scalar_under_vector(self):
        source = ("__kernel void f(__global int* C)"
                  "{ atomic_inc(&C[0]); }")
        executor = make_executor(info_of(source), {"C": np.zeros(1, np.int64)},
                                 NDRange(128, 32), backend="vector")
        assert isinstance(executor, KernelExecutor)


class TestRuntimeFallback:
    def test_fallback_restores_buffers_and_reruns_scalar(self, monkeypatch):
        """A mid-batch bail-out must leave no trace of partial stores."""
        real_run = vectorize._BatchRun.run
        tripped = {"count": 0}

        def sabotaged(self):
            if tripped["count"] == 0:
                tripped["count"] += 1
                # Mutate an output first so the snapshot restore is load-
                # bearing, then bail as an unsupported construct would.
                self.env["Y"][...] = -1.0
                raise vectorize.VectorizeFallback("synthetic trip")
            return real_run(self)

        monkeypatch.setattr(vectorize._BatchRun, "run", sabotaged)
        args = saxpy_args()
        expected = args["a"] * args["X"] + args["Y"]
        executor = VectorizedExecutor(info_of(SAXPY), args, NDRange(128, 32))
        execution_stats.reset()
        try:
            executor.run()
            assert executor.used_fallback
            assert execution_stats.fallbacks.get(("saxpy", "vector")) == 1
        finally:
            execution_stats.reset()
        np.testing.assert_array_equal(args["Y"], expected)

    def test_genuine_kernel_error_propagates(self):
        """Out-of-bounds is a kernel bug, not a vectorization gap — it must
        surface identically instead of silently retrying on the oracle."""
        source = ("__kernel void f(__global float* A)"
                  "{ A[get_global_id(0) + 1] = 1.0f; }")
        from repro.interp import KernelRuntimeError

        executor = VectorizedExecutor(info_of(source), {"A": np.zeros(4)},
                                      NDRange(4, 4))
        with pytest.raises(KernelRuntimeError):
            executor.run()
        assert not executor.used_fallback


def run_on_both_backends(source, make_args, ndrange):
    """Run a kernel on both backends; return (vector_args, scalar_args,
    vector_exc, scalar_exc, vector_executor) for parity assertions."""
    unit = parse(source)
    info = analyze_kernel(unit.kernels()[0], unit)
    vec_args, ref_args = make_args(), make_args()
    scalar_exc = vector_exc = None
    try:
        KernelExecutor(info, ref_args, ndrange).run()
    except Exception as exc:  # noqa: BLE001 - parity includes the crash
        scalar_exc = exc
    executor = VectorizedExecutor(info, vec_args, ndrange)
    try:
        executor.run()
    except Exception as exc:  # noqa: BLE001
        vector_exc = exc
    return vec_args, ref_args, vector_exc, scalar_exc, executor


class TestOracleParity:
    """Regression tests for divergences between the backends (REVIEW fixes):
    each case must match the scalar oracle bit-for-bit, including which
    exception is raised and the buffer state left behind by a crash."""

    N = 128

    def test_masked_lanes_never_evaluate_math(self):
        """log() under a guard must not raise for the guarded-out lanes —
        and the kernel must stay on the vector path, not fall back."""
        source = """
        __kernel void guarded_log(__global float* A, __global float* out)
        {
            int i = get_global_id(0);
            float x = A[i];
            if (x > 0.0f) out[i] = log(x);
        }
        """
        make = lambda: {"A": np.linspace(-2, 2, self.N), "out": np.zeros(self.N)}
        vec, ref, vexc, sexc, executor = run_on_both_backends(
            source, make, NDRange(self.N, 32))
        assert vexc is None and sexc is None
        assert not executor.used_fallback
        np.testing.assert_array_equal(vec["out"], ref["out"])

    def test_masked_lanes_never_overflow_exp(self):
        source = """
        __kernel void guarded_exp(__global float* A, __global float* out)
        {
            int i = get_global_id(0);
            float x = A[i];
            if (x < 100.0f) out[i] = exp(x);
        }
        """
        huge = np.where(np.arange(self.N) % 2 == 0, 1.5, 800.0)
        make = lambda: {"A": huge.copy(), "out": np.zeros(self.N)}
        vec, ref, vexc, sexc, executor = run_on_both_backends(
            source, make, NDRange(self.N, 32))
        assert vexc is None and sexc is None
        assert not executor.used_fallback
        np.testing.assert_array_equal(vec["out"], ref["out"])

    def test_active_lane_domain_error_matches_oracle(self):
        """An *unguarded* log of a negative is a kernel bug: both backends
        must raise the same error and leave the same partial stores."""
        source = """
        __kernel void bad_log(__global float* A, __global float* out)
        {
            int i = get_global_id(0);
            out[i] = log(A[i]);
        }
        """
        make = lambda: {"A": np.linspace(-2, 2, self.N), "out": np.zeros(self.N)}
        vec, ref, vexc, sexc, _ = run_on_both_backends(
            source, make, NDRange(self.N, 32))
        assert type(vexc) is type(sexc) is ValueError
        np.testing.assert_array_equal(vec["out"], ref["out"])

    def test_native_math_domain_error_matches_oracle(self):
        """np.sqrt would silently yield NaN where math.sqrt raises."""
        source = """
        __kernel void bad_sqrt(__global float* A, __global float* out)
        {
            int i = get_global_id(0);
            out[i] = sqrt(A[i]);
        }
        """
        make = lambda: {"A": np.linspace(-2, 2, self.N), "out": np.zeros(self.N)}
        vec, ref, vexc, sexc, _ = run_on_both_backends(
            source, make, NDRange(self.N, 32))
        assert type(vexc) is type(sexc) is ValueError
        np.testing.assert_array_equal(vec["out"], ref["out"])

    def test_mixed_type_ternary_matches_oracle(self):
        """np.where would promote the int branch to float64; the oracle
        divides the int lanes with C truncation instead."""
        source = """
        __kernel void tern(__global int* A, __global float* out)
        {
            int i = get_global_id(0);
            out[i] = (A[i] > 0 ? 5 : 4.0f) / 2;
        }
        """
        flip = np.array([1, -1] * (self.N // 2), np.int64)
        make = lambda: {"A": flip.copy(), "out": np.zeros(self.N)}
        vec, ref, vexc, sexc, executor = run_on_both_backends(
            source, make, NDRange(self.N, 32))
        assert vexc is None and sexc is None
        assert executor.used_fallback
        np.testing.assert_array_equal(vec["out"], ref["out"])

    def test_divergent_unbound_read_matches_oracle(self):
        """Reading a variable only bound in the *other* branch is a kernel
        bug the oracle reports; it must not be masked by a zero default."""
        source = """
        __kernel void unbound(__global float* A, __global float* out)
        {
            int i = get_global_id(0);
            if (A[i] > 0.0f) { float t = A[i]; out[i] = t; }
            else { out[i] = t; }
        }
        """
        from repro.interp import KernelRuntimeError

        make = lambda: {"A": np.linspace(-2, 2, self.N), "out": np.zeros(self.N)}
        vec, ref, vexc, sexc, _ = run_on_both_backends(
            source, make, NDRange(self.N, 32))
        assert type(vexc) is type(sexc) is KernelRuntimeError
        assert "unbound identifier" in str(vexc)
        np.testing.assert_array_equal(vec["out"], ref["out"])

    def test_divergent_decl_stays_vectorized(self):
        """The bread-and-butter guard pattern must not pay the fallback."""
        source = """
        __kernel void guarded(__global float* A, __global float* out, int n)
        {
            int i = get_global_id(0);
            if (i < n) { float x = A[i]; out[i] = x * 2.0f; }
        }
        """
        make = lambda: {"A": np.linspace(-2, 2, self.N),
                        "out": np.zeros(self.N), "n": self.N - 28}
        vec, ref, vexc, sexc, executor = run_on_both_backends(
            source, make, NDRange(self.N, 32))
        assert vexc is None and sexc is None
        assert not executor.used_fallback
        np.testing.assert_array_equal(vec["out"], ref["out"])

    def test_oversized_shift_matches_oracle(self):
        """Shifts >= 64 are undefined for int64 lanes; the oracle computes
        them exactly (and overflows at the truncating store)."""
        source = """
        __kernel void shifty(__global int* A, __global int* out)
        {
            int i = get_global_id(0);
            int s = A[i] + 60;
            out[i] = (1 << s) / 2;
        }
        """
        make = lambda: {"A": np.arange(self.N, dtype=np.int64) % 8,
                        "out": np.zeros(self.N, np.int64)}
        vec, ref, vexc, sexc, executor = run_on_both_backends(
            source, make, NDRange(self.N, 32))
        assert type(vexc) is type(sexc)
        np.testing.assert_array_equal(vec["out"], ref["out"])

    def test_uniform_math_domain_error_matches_oracle(self):
        """Domain errors on a *uniform* (non-array) argument also revert."""
        source = """
        __kernel void uniform_log(__global float* out, float v)
        {
            int i = get_global_id(0);
            out[i] = log(v - 2.0f);
        }
        """
        make = lambda: {"out": np.zeros(self.N), "v": 1.0}
        vec, ref, vexc, sexc, _ = run_on_both_backends(
            source, make, NDRange(self.N, 32))
        assert type(vexc) is type(sexc) is ValueError
        np.testing.assert_array_equal(vec["out"], ref["out"])

    def test_mixed_type_helper_returns_match_oracle(self):
        """Divergent returns of different kinds would float-promote the int
        lanes under np.where; the oracle keeps each lane's own type."""
        source = """
        float pick(float x) { if (x > 0.0f) return 3; return 0.5f; }
        __kernel void ret(__global float* A, __global float* out)
        {
            int i = get_global_id(0);
            out[i] = pick(A[i]) / 2;
        }
        """
        make = lambda: {"A": np.linspace(-2, 2, self.N), "out": np.zeros(self.N)}
        vec, ref, vexc, sexc, executor = run_on_both_backends(
            source, make, NDRange(self.N, 32))
        assert vexc is None and sexc is None
        assert executor.used_fallback
        np.testing.assert_array_equal(vec["out"], ref["out"])

    def test_in_range_shift_stays_vectorized(self):
        source = """
        __kernel void shifty2(__global int* A, __global int* out)
        {
            int i = get_global_id(0);
            out[i] = (A[i] << 3) >> 1;
        }
        """
        make = lambda: {"A": np.arange(self.N, dtype=np.int64),
                        "out": np.zeros(self.N, np.int64)}
        vec, ref, vexc, sexc, executor = run_on_both_backends(
            source, make, NDRange(self.N, 32))
        assert vexc is None and sexc is None
        assert not executor.used_fallback
        np.testing.assert_array_equal(vec["out"], ref["out"])


class TestExecutionStats:
    def test_run_records_and_speedup(self):
        stats = ExecutionStats()
        stats.record_choice("k", "vector", "eligible")
        stats.record_run("k", "scalar", 1000, 2.0)
        stats.record_run("k", "vector", 1000, 0.1)
        assert stats.backend_for("k") == "vector"
        assert stats.speedup("k") == pytest.approx(20.0)
        assert stats.total_calls() == 2

    def test_speedup_needs_both_backends(self):
        stats = ExecutionStats()
        stats.record_run("k", "vector", 100, 0.5)
        assert stats.speedup("k") is None

    def test_summary_mentions_kernels_and_fallbacks(self):
        stats = ExecutionStats()
        stats.record_choice("k", "vector", "eligible")
        stats.record_run("k", "vector", 100, 0.5)
        stats.record_fallback("k", "synthetic trip")
        text = stats.summary()
        assert "k" in text and "vector" in text

    def test_global_stats_capture_launches(self):
        execution_stats.reset()
        try:
            make_executor(info_of(SAXPY), saxpy_args(), NDRange(128, 32),
                          backend="vector").run()
            assert execution_stats.backend_for("saxpy") == "vector"
            assert execution_stats.total_calls() == 1
        finally:
            execution_stats.reset()

    def test_reset_clears_everything(self):
        stats = ExecutionStats()
        stats.record_run("k", "vector", 100, 0.5)
        stats.record_fallback("k", "why")
        stats.reset()
        assert stats.total_calls() == 0
        assert not stats.fallbacks
        assert stats.kernels() == []
