"""Regression: the vector-eligibility memo is computed once under races.

Before the serving layer, ``check_vectorizable`` memoized with a plain
read-then-write on the :class:`KernelInfo`; two threads first-touching
the same kernel could both run the AST walk and interleave the write.
The double-checked lock must collapse a concurrent first touch to
exactly one walk with every caller seeing the same object.
"""

import threading

from repro.frontend import analyze_kernel, parse_kernel
from repro.interp import vectorize

SRC = (
    "__kernel void axpy(__global float* y, __global const float* x, float a)"
    "{ int i = get_global_id(0); y[i] += a * x[i]; }"
)


def test_concurrent_first_touch_walks_once(monkeypatch):
    info = analyze_kernel(parse_kernel(SRC))
    walks = []
    walk_lock = threading.Lock()
    real_walk = vectorize._check_vectorizable
    started = threading.Barrier(8)

    def counting_walk(target):
        with walk_lock:
            walks.append(threading.get_ident())
        return real_walk(target)

    monkeypatch.setattr(vectorize, "_check_vectorizable", counting_walk)

    results = []
    results_lock = threading.Lock()

    def first_touch():
        started.wait()  # maximise the overlap on the cold memo
        eligibility = vectorize.check_vectorizable(info)
        with results_lock:
            results.append(eligibility)

    threads = [threading.Thread(target=first_touch) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert len(walks) == 1              # the AST walk ran exactly once
    assert len(results) == 8
    assert all(r is results[0] for r in results)  # one shared memo object
    assert results[0].eligible


def test_memo_hit_skips_lock_and_walk(monkeypatch):
    info = analyze_kernel(parse_kernel(SRC))
    first = vectorize.check_vectorizable(info)

    def exploding_walk(target):
        raise AssertionError("memoized path must not re-walk")

    monkeypatch.setattr(vectorize, "_check_vectorizable", exploding_walk)
    assert vectorize.check_vectorizable(info) is first
