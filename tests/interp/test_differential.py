"""Differential testing: the compiled backends against the scalar oracle.

The scalar interpreter is the semantic ground truth; the batched NumPy
backend and the jit trace-compiler must produce **bit-identical**
buffers for every kernel they accept.  This suite drives all three
backends over

* the 14 real-world registry kernels (Table 4), scaled down,
* their malleable-transformed variants at several throttle settings
  (which exercise the transparent scalar fallback — the worklist
  transform introduces barriers and atomics),
* a sweep of Table-2 synthetic kernels over pattern/dim/dtype axes, and
* hypothesis-generated random launch geometries and kernel parameters,

comparing raw buffer bytes after each pair of runs.  The broad sweeps
carry ``@pytest.mark.slow`` so the fast CI lane (``-m "not slow"``)
keeps a representative subset.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.interp import (
    NDRange,
    check_vectorizable,
    execute_kernel,
    execution_stats,
)
from repro.transform import ALLOC_PARAM, MOD_PARAM, make_malleable
from repro.workloads import (
    REAL_WORKLOAD_FACTORIES,
    SCALED_REAL_FACTORIES,
    TABLE4_PATTERNS,
    SyntheticSpec,
    make_synthetic,
)

#: Backwards-compatible local alias; the dict now lives with the workloads
#: so that ``dopia trace`` can drive the same scaled launches.
SCALED_REAL = SCALED_REAL_FACTORIES


def _copy_args(args):
    return {
        name: value.copy() if isinstance(value, np.ndarray) else value
        for name, value in args.items()
    }


def assert_bit_identical(source, args, ndrange, kernel_name=None):
    """Run ``source`` under all three backends and compare buffer bytes.

    The jit leg goes through the ``jit`` entry point, which compiles the
    kernel when eligible and transparently runs the vector tier when the
    compile declines — either way the bytes must match the oracle.
    """
    scalar_args = _copy_args(args)
    execute_kernel(source, scalar_args, ndrange,
                   kernel_name=kernel_name, backend="scalar")
    compiled_args = {}
    for backend in ("vector", "jit"):
        compiled_args[backend] = _copy_args(args)
        execute_kernel(source, compiled_args[backend], ndrange,
                       kernel_name=kernel_name, backend=backend)
    for name, value in scalar_args.items():
        if not isinstance(value, np.ndarray):
            continue
        for backend, candidate in compiled_args.items():
            assert value.dtype == candidate[name].dtype, (backend, name)
            assert value.tobytes() == candidate[name].tobytes(), (
                f"buffer {name!r} differs between scalar and {backend}"
            )
    return scalar_args, compiled_args["vector"]


def assert_workload_bit_identical(workload, rng=0):
    return assert_bit_identical(
        workload.source, workload.full_args(rng), workload.ndrange(),
        kernel_name=workload.kernel_name,
    )


class TestRealKernels:
    def test_scaled_registry_is_complete(self):
        assert list(SCALED_REAL) == list(REAL_WORKLOAD_FACTORIES)

    def test_all_registry_kernels_eligible(self):
        for name, factory in SCALED_REAL.items():
            eligibility = check_vectorizable(factory().kernel_info())
            assert eligibility.eligible, f"{name}: {eligibility.reason}"

    @pytest.mark.parametrize("name", list(SCALED_REAL))
    def test_bit_identical(self, name):
        assert_workload_bit_identical(SCALED_REAL[name]())

    @pytest.mark.slow
    @pytest.mark.parametrize("name", list(SCALED_REAL))
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_bit_identical_across_seeds(self, name, seed):
        assert_workload_bit_identical(SCALED_REAL[name](), rng=seed)

    def test_fast_backends_were_actually_used(self):
        """The differential helper must exercise real compiled paths: the
        jit leg ends on the jit tier (no silent decline to vector), and
        no leg falls back mid-run."""
        execution_stats.reset()
        try:
            assert_workload_bit_identical(SCALED_REAL["GESUMMV"]())
            # the jit leg ran last, so the most recent choice is jit
            assert execution_stats.backend_for("gesummv") == "jit"
            assert ("gesummv", "vector") in execution_stats.runs
            assert ("gesummv", "jit") in execution_stats.runs
            assert not execution_stats.fallbacks
        finally:
            execution_stats.reset()


#: Throttle settings spanning full allocation, partial, and sparse.
THROTTLES = [(1, 1), (4, 2), (8, 3)]

#: Malleable-equivalence subjects: one 1-D regular, one 1-D irregular,
#: one 2-D kernel.  The full registry sweep is in the slow lane.
MALLEABLE_FAST = ["GESUMMV", "SpMV", "2DCONV"]


def _malleable_args(workload, malleable, mod, alloc, rng=0):
    args = workload.full_args(rng)
    args[MOD_PARAM] = mod
    args[ALLOC_PARAM] = alloc
    return args, malleable


def check_malleable(name, mod, alloc):
    """Transformed kernel, both backends, against the untouched original.

    The worklist transform adds a barrier and an atomic counter, so the
    jit compiler and the vectorizer must both *decline* it and fall back
    to the scalar interpreter — transparently, with identical results.
    """
    workload = SCALED_REAL[name]()
    malleable = make_malleable(workload.source, work_dim=workload.work_dim,
                               kernel_name=workload.kernel_name)
    eligibility = check_vectorizable(malleable.info)
    assert not eligibility.eligible

    baseline = _copy_args(workload.full_args(rng=0))
    execute_kernel(workload.source, baseline, workload.ndrange(),
                   kernel_name=workload.kernel_name, backend="scalar")

    for backend in ("scalar", "vector", "jit", "auto"):
        args = _copy_args(workload.full_args(rng=0))
        args[MOD_PARAM] = mod
        args[ALLOC_PARAM] = alloc
        from repro.interp import make_executor

        make_executor(malleable.info, args, workload.ndrange(),
                      backend=backend).run()
        for buf, value in baseline.items():
            if isinstance(value, np.ndarray):
                assert value.tobytes() == args[buf].tobytes(), (
                    f"{name} malleable(mod={mod}, alloc={alloc}) "
                    f"backend={backend}: buffer {buf!r} differs"
                )


class TestMalleableVariants:
    @pytest.mark.parametrize("name", MALLEABLE_FAST)
    def test_throttled_matches_original(self, name):
        check_malleable(name, 4, 2)

    @pytest.mark.slow
    @pytest.mark.parametrize("name", list(SCALED_REAL))
    @pytest.mark.parametrize("mod,alloc", THROTTLES)
    def test_full_registry_throttle_sweep(self, name, mod, alloc):
        check_malleable(name, mod, alloc)


# -- Table-2 synthetic sweep -------------------------------------------------

#: A pattern from each Table-2 modifier family for the fast lane.
FAST_SYNTH = ["1mat3d", "2mat3d1T", "2mat3d1C1R", "1mat4d1R"]

#: The full Table-4 pattern axis (17 names) for the nightly lane.
ALL_PATTERNS = list(TABLE4_PATTERNS)


def _synthetic_case(pattern, dim, dtype, gamma=1):
    spec = SyntheticSpec.from_pattern(pattern, gamma=gamma, dim=dim,
                                      dtype=dtype)
    return make_synthetic(spec, size=32, wg_items=16, extent=4)


class TestSyntheticSweep:
    @pytest.mark.parametrize("pattern", FAST_SYNTH)
    @pytest.mark.parametrize("dim", [1, 2])
    def test_fast_subset(self, pattern, dim):
        assert_workload_bit_identical(_synthetic_case(pattern, dim, "float"))

    def test_integer_dtype(self):
        assert_workload_bit_identical(_synthetic_case("2mat3d", 1, "int"))

    @pytest.mark.slow
    @pytest.mark.parametrize("pattern", ALL_PATTERNS)
    @pytest.mark.parametrize("dim", [1, 2])
    @pytest.mark.parametrize("dtype", ["float", "int"])
    def test_full_sweep(self, pattern, dim, dtype):
        assert_workload_bit_identical(_synthetic_case(pattern, dim, dtype))


# -- hypothesis: random parameters and launch geometries ---------------------

DIVERGENT_SRC = """
__kernel void mix(__global float* X, __global float* Y, float a, int n)
{
    int i = get_global_id(0);
    if (i < n) {
        float acc = 0.0f;
        for (int j = 0; j <= i % 5; j++) {
            acc = acc + X[(i + j) % n];
        }
        if (X[i] > 0.0f) {
            acc = acc * a;
        } else {
            acc = acc - a;
        }
        Y[i] = acc + Y[i] + (float)(i / 3);
    }
}
"""

GRID2D_SRC = """
__kernel void grid(__global float* A, int nx, int ny, float s)
{
    int x = get_global_id(0);
    int y = get_global_id(1);
    if ((x < nx) && (y < ny)) {
        int k = y * nx + x;
        float v = A[k];
        while (v > 1.0f) {
            v = v / 2.0f;
        }
        A[k] = v * s + (float)((x + y) % 3);
    }
}
"""


class TestRandomised:
    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=96),
        wg=st.sampled_from([1, 2, 4, 8]),
        a=st.floats(min_value=-8.0, max_value=8.0,
                    allow_nan=False, allow_infinity=False),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_divergent_1d(self, n, wg, a, seed):
        rng = np.random.default_rng(seed)
        padded = -(-n // wg) * wg
        args = {
            "X": rng.standard_normal(padded),
            "Y": rng.standard_normal(padded),
            "a": a,
            "n": n,
        }
        assert_bit_identical(DIVERGENT_SRC, args, NDRange(padded, wg))

    @settings(max_examples=25, deadline=None)
    @given(
        gx=st.integers(min_value=1, max_value=6),
        gy=st.integers(min_value=1, max_value=6),
        s=st.floats(min_value=-4.0, max_value=4.0,
                    allow_nan=False, allow_infinity=False),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_uniform_loop_2d(self, gx, gy, s, seed):
        rng = np.random.default_rng(seed)
        nx, ny = gx * 2, gy * 2
        args = {
            "A": rng.uniform(0.0, 16.0, size=nx * ny),
            "nx": nx,
            "ny": ny,
            "s": s,
        }
        assert_bit_identical(GRID2D_SRC, args, NDRange((nx, ny), (2, 2)))
