"""The jit tier: program-cache correctness and lowering quality.

The trace-compiler specializes a kernel on its launch (geometry, scalar
values, buffer extents and dtypes), so the cache key must separate
launches that need different programs and share the ones that don't —
and a *different* ``KernelInfo`` (e.g. an edited kernel whose verifier
verdicts changed) must never reuse a stale program.  The lowering-quality
tests pin down the paper-facing claims: uniform-control kernels become
whole-array programs with no masks, provable guards are elided, and the
masked tail appears only on ragged launches.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontend import analyze_kernel, parse_kernel
from repro.interp import (
    JitExecutor,
    JitUnsupported,
    KernelExecutor,
    NDRange,
    compile_cached,
    compile_kernel,
    execute_kernel,
    execution_stats,
    jit_cache_stats,
    make_executor,
)
from repro.workloads import TABLE4_PATTERNS, SyntheticSpec, make_synthetic

SAXPY = """
__kernel void saxpy(__global float* X, __global float* Y, float a, int n)
{
    int i = get_global_id(0);
    if (i < n) Y[i] = a * X[i] + Y[i];
}
"""

MUTATED = """
__kernel void saxpy(__global float* X, __global float* Y, float a, int n)
{
    int i = get_global_id(0);
    if (i < n) Y[i] = a * X[i] - Y[i];
}
"""


def _info(source=SAXPY):
    return analyze_kernel(parse_kernel(source))


def _args(n, a=2.0, rng=0):
    r = np.random.default_rng(rng)
    return {"X": r.standard_normal(n), "Y": r.standard_normal(n),
            "a": a, "n": n}


def _run_jit(info, args, ndrange):
    compiled = compile_cached(info, args, ndrange)
    JitExecutor(info, args, ndrange, compiled).run()
    return compiled


def _expected(info, args, ndrange):
    copy = {k: v.copy() if isinstance(v, np.ndarray) else v
            for k, v in args.items()}
    KernelExecutor(info, copy, ndrange).run()
    return copy


@pytest.fixture(autouse=True)
def _clean_stats():
    execution_stats.reset()
    yield
    execution_stats.reset()


class TestProgramCache:
    def test_two_launch_shapes_compile_two_programs(self):
        info = _info()
        for n in (64, 128):
            args = _args(n)
            expected = _expected(info, args, NDRange(n, 16))
            _run_jit(info, args, NDRange(n, 16))
            assert args["Y"].tobytes() == expected["Y"].tobytes(), n
        # one compile per shape, no cross-contamination between the
        # specialized programs
        assert execution_stats.jit_compiles["saxpy"] == 2

    def test_same_launch_hits_the_cache(self):
        info = _info()
        ndrange = NDRange(64, 16)
        first = compile_cached(info, _args(64), ndrange)
        second = compile_cached(info, _args(64, rng=7), ndrange)
        assert second is first  # buffer *contents* are not part of the key
        assert execution_stats.jit_compiles["saxpy"] == 1
        assert execution_stats.jit_cache_hits["saxpy"] == 1

    def test_scalar_values_are_part_of_the_key(self):
        """Scalars are constant-folded into the program source, so a
        different value must compile a different program."""
        info = _info()
        ndrange = NDRange(64, 16)
        for a in (2.0, 3.0):
            args = _args(64, a=a)
            expected = _expected(info, args, ndrange)
            _run_jit(info, args, ndrange)
            assert args["Y"].tobytes() == expected["Y"].tobytes(), a
        assert execution_stats.jit_compiles["saxpy"] == 2

    def test_buffer_dtype_is_part_of_the_key(self):
        info = _info()
        ndrange = NDRange(64, 16)
        a = compile_cached(info, _args(64), ndrange)
        args32 = _args(64)
        args32["X"] = args32["X"].astype(np.float32)
        b = compile_cached(info, args32, ndrange)
        assert b is not a

    def test_negative_results_are_cached(self):
        info = _info("""
            __kernel void irr(__global float* X, __global int* rows, int n)
            {
                int i = get_global_id(0);
                float acc = 0.0f;
                for (int j = 0; j < rows[i]; j++) acc = acc + 1.0f;
                if (i < n) X[i] = acc;
            }
        """)
        args = {"X": np.zeros(32), "rows": np.full(32, 3, dtype=np.int64),
                "n": 32}
        with pytest.raises(JitUnsupported):
            compile_cached(info, dict(args), NDRange(32, 8))
        with pytest.raises(JitUnsupported):
            compile_cached(info, dict(args), NDRange(32, 8))
        assert execution_stats.jit_compiles["irr"] == 1
        assert execution_stats.jit_cache_hits["irr"] == 1

    def test_mutated_kernel_gets_its_own_entry(self):
        """Editing a kernel produces a new KernelInfo whose verifier
        verdicts may differ — it must never reuse the old program."""
        import gc

        gc.collect()  # flush dead infos from earlier tests first
        clean = _info(SAXPY)
        ndrange = NDRange(64, 16)
        compile_cached(clean, _args(64), ndrange)
        before = jit_cache_stats()

        mutated = _info(MUTATED)
        args = _args(64)
        expected = _expected(mutated, args, ndrange)
        _run_jit(mutated, args, ndrange)
        assert args["Y"].tobytes() == expected["Y"].tobytes()

        after = jit_cache_stats()
        assert after["kernels"] == before["kernels"] + 1
        # the clean kernel's program is still cached and still valid
        fresh = _args(64)
        saxpy_expected = _expected(clean, fresh, ndrange)
        _run_jit(clean, fresh, ndrange)
        assert fresh["Y"].tobytes() == saxpy_expected["Y"].tobytes()
        assert execution_stats.jit_cache_hits["saxpy"] >= 1

    def test_dead_info_is_evicted(self):
        import gc

        gc.collect()  # flush dead infos from earlier tests first
        occupied = jit_cache_stats()["kernels"]
        info = _info()
        compile_cached(info, _args(64), NDRange(64, 16))
        assert jit_cache_stats()["kernels"] == occupied + 1
        del info
        gc.collect()
        assert jit_cache_stats()["kernels"] == occupied


class TestLoweringQuality:
    def test_uniform_control_has_no_masks(self):
        """gsize == n proves the guard: the program is a whole-array
        expression — no masks, no gather/scatter, no work-item loop."""
        compiled = compile_kernel(_info(), _args(64), NDRange(64, 16))
        assert not compiled.masked
        assert "where" not in compiled.source
        assert "rt.gather" not in compiled.source
        assert "rt.scatter" not in compiled.source

    def test_ragged_launch_masks_only_the_tail(self):
        """gsize > n leaves a ragged edge: the guard survives as a mask,
        Triton-style, instead of forcing the kernel off the jit path."""
        n = 100
        args = _args(128)
        args["n"] = n
        compiled = compile_kernel(_info(), args, NDRange(128, 16))
        assert compiled.masked

        expected = _expected(_info(), dict(args), NDRange(128, 16))
        run = dict(args)
        run["X"] = args["X"].copy()
        run["Y"] = args["Y"].copy()
        _run_jit(_info(), run, NDRange(128, 16))
        assert run["Y"].tobytes() == expected["Y"].tobytes()

    def test_provable_inner_loop_bounds_elide_gather(self):
        """The induction-range analysis proves A[i*n+j] in-bounds for a
        GESUMMV-style reduction, so the hot loop uses raw indexing."""
        info = _info("""
            __kernel void rowsum(__global float* A, __global float* x,
                                 __global float* y, int n)
            {
                int i = get_global_id(0);
                float acc = 0.0f;
                for (int j = 0; j < n; j++) {
                    acc = acc + A[i * n + j] * x[j];
                }
                y[i] = acc;
            }
        """)
        n = 32
        rng = np.random.default_rng(0)
        args = {"A": rng.standard_normal(n * n),
                "x": rng.standard_normal(n),
                "y": np.zeros(n), "n": n}
        compiled = compile_kernel(info, args, NDRange(n, 8))
        assert "rt.gather" not in compiled.source
        assert "rt.scatter" not in compiled.source


class TestTable2Family:
    """Hypothesis sweep: the jit entry point must stay byte-identical to
    the scalar oracle across the Table-2 synthetic kernel family."""

    @settings(max_examples=20, deadline=None)
    @given(
        pattern=st.sampled_from(list(TABLE4_PATTERNS)),
        dim=st.sampled_from([1, 2]),
        dtype=st.sampled_from(["float", "int"]),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_jit_matches_scalar(self, pattern, dim, dtype, seed):
        spec = SyntheticSpec.from_pattern(pattern, gamma=1, dim=dim,
                                          dtype=dtype)
        workload = make_synthetic(spec, size=32, wg_items=16, extent=4)
        base = workload.full_args(rng=seed)

        scalar_args = {k: v.copy() if isinstance(v, np.ndarray) else v
                       for k, v in base.items()}
        jit_args = {k: v.copy() if isinstance(v, np.ndarray) else v
                    for k, v in base.items()}
        execute_kernel(workload.source, scalar_args, workload.ndrange(),
                       kernel_name=workload.kernel_name, backend="scalar")
        execute_kernel(workload.source, jit_args, workload.ndrange(),
                       kernel_name=workload.kernel_name, backend="jit")
        for name, value in scalar_args.items():
            if isinstance(value, np.ndarray):
                assert value.tobytes() == jit_args[name].tobytes(), name


class TestExecutorFallback:
    def test_runtime_guard_reverts_to_vector_transparently(self):
        """A compiled program that trips a runtime guard must rerun on
        the vector tier with the pre-run buffer contents restored."""
        info = _info()
        args = _args(64)
        ndrange = NDRange(64, 16)
        compiled = compile_cached(info, args, ndrange)

        class Boom(Exception):
            pass

        def exploding(*_a, **_k):
            raise Boom("injected")

        sabotaged = type(compiled)(
            kernel_name=compiled.kernel_name, fn=exploding,
            source=compiled.source, key=compiled.key,
            buffer_params=compiled.buffer_params, id_spec=compiled.id_spec,
            masked=compiled.masked,
            oob_elided_by_verdict=compiled.oob_elided_by_verdict,
            verdicts=compiled.verdicts)
        expected = _expected(info, args, ndrange)
        JitExecutor(info, args, ndrange, sabotaged).run()
        assert args["Y"].tobytes() == expected["Y"].tobytes()
        assert execution_stats.fallback_count("saxpy", tier="jit") == 1

    def test_auto_routes_through_jit(self):
        info = _info()
        args = _args(256)
        executor = make_executor(info, args, NDRange(256, 16),
                                 backend="auto")
        assert isinstance(executor, JitExecutor)
