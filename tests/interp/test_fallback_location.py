"""Vectorize-fallback reasons carry source locations (ExecutionStats)."""

import numpy as np

from repro.frontend.parser import parse, parse_kernel
from repro.frontend.semantics import analyze_kernel
from repro.interp.executor import execute_kernel
from repro.interp.ndrange import NDRange
from repro.interp.stats import ExecutionStats, execution_stats
from repro.interp.vectorize import check_vectorizable


def info_of(source):
    return analyze_kernel(parse_kernel(source), parse(source))


def test_ineligibility_reason_has_location():
    source = (
        "__kernel void k(__global float* a) {\n"
        "    int i = get_global_id(0);\n"
        "    barrier(1);\n"
        "    a[i] = i;\n"
        "}\n"
    )
    eligibility = check_vectorizable(info_of(source))
    assert not eligibility.eligible
    assert eligibility.location is not None
    assert eligibility.location.line >= 1


def test_runtime_fallback_records_location():
    source = (
        "__kernel void sh(__global int* a, __global int* b, int s) {\n"
        "    int i = get_global_id(0);\n"
        "    a[i] = b[i] << s;\n"
        "}\n"
    )
    execution_stats.reset()
    a = np.zeros(8, dtype=np.int64)
    b = np.zeros(8, dtype=np.int64)
    # shift amount 70 is outside [0, 64): the vector path must fall back
    execute_kernel(source, {"a": a, "b": b, "s": 70},
                   NDRange((8,), (4,)), backend="vector")
    try:
        assert execution_stats.fallbacks.get(("sh", "vector")) == 1
        assert execution_stats.fallback_count("sh") == 1
        assert execution_stats.fallback_count("sh", tier="vector") == 1
        assert execution_stats.fallback_count("sh", tier="jit") == 0
        location = execution_stats.fallback_locations.get(("sh", "vector"))
        assert location == "3:17", location  # the << expression's span
        assert "at 3:17" in execution_stats.summary()
    finally:
        execution_stats.reset()


def test_record_fallback_without_location():
    stats = ExecutionStats()
    stats.record_fallback("k", "why")
    assert stats.fallback_locations[("k", "vector")] == ""
    stats.reset()
    assert stats.fallback_locations == {}


def test_fallbacks_keyed_per_tier():
    """Regression: jit and vector fallbacks must not aggregate (ISSUE 6)."""
    stats = ExecutionStats()
    stats.record_fallback("k", "lane loop", tier="jit")
    stats.record_fallback("k", "shift out of range", tier="vector")
    stats.record_fallback("k", "shift out of range", tier="vector")
    assert stats.fallback_count("k", tier="jit") == 1
    assert stats.fallback_count("k", tier="vector") == 2
    assert stats.fallback_count("k") == 3
    assert stats.fallback_tiers("k") == ["jit", "vector"]
    assert stats.fallback_reasons[("k", "jit")] == "lane loop"
    summary = stats.summary()
    assert "jit-fallbacks=1" in summary
    assert "vector-fallbacks=2" in summary
