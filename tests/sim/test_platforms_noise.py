"""Unit tests for platform descriptions, noise model, and pressure cap."""


import pytest

from repro.sim import KAVERI, PLATFORMS, SKYLAKE, get_platform, noise_factor
from repro.sim.contention import PRESSURE_CAP, allocate_bandwidth


class TestPlatforms:
    def test_paper_section81_core_counts(self):
        # AMD A10-7850K: quad-core CPU, 8 CUs x 64 PEs at 720 MHz
        assert KAVERI.cpu.cores == 4
        assert KAVERI.gpu.num_cus == 8
        assert KAVERI.gpu.pes_per_cu == 64
        assert KAVERI.gpu.total_pes == 512
        assert KAVERI.gpu.freq_ghz == pytest.approx(0.72)
        # Intel i7-6700: 4C/8T, 24 CUs x 32 PEs
        assert SKYLAKE.cpu.threads == 8
        assert SKYLAKE.gpu.total_pes == 768

    def test_registry_lookup(self):
        assert get_platform("KAVERI") is KAVERI
        assert set(PLATFORMS) == {"kaveri", "skylake"}
        with pytest.raises(KeyError):
            get_platform("llano")

    def test_skylake_gpu_sees_more_cache(self):
        assert SKYLAKE.gpu_effective_cache_bytes() > SKYLAKE.gpu.l2_bytes
        assert KAVERI.gpu_effective_cache_bytes() == KAVERI.gpu.l2_bytes

    def test_skylake_better_provisioned_memory_system(self):
        """§9.3: 'the Intel i7-6700 processor provides more memory
        bandwidth and contains a shared last-level cache'."""
        assert SKYLAKE.dram_bandwidth > KAVERI.dram_bandwidth
        assert SKYLAKE.arbitration_fairness > KAVERI.arbitration_fairness

    def test_frozen_dataclasses(self):
        with pytest.raises(Exception):
            KAVERI.dram_bandwidth_gbps = 100.0


class TestNoiseModel:
    def test_deterministic(self):
        assert noise_factor(("a", 1)) == noise_factor(("a", 1))

    def test_distinct_keys_distinct_noise(self):
        values = {noise_factor(("k", i)) for i in range(50)}
        assert len(values) == 50

    def test_zero_sigma_is_exact(self):
        assert noise_factor(("x",), sigma=0.0) == 1.0

    def test_magnitude_bounded(self):
        for i in range(200):
            factor = noise_factor(("bound", i), sigma=0.02)
            assert 0.85 < factor < 1.18

    def test_mean_near_one(self):
        factors = [noise_factor(("m", i), sigma=0.02) for i in range(500)]
        assert abs(sum(factors) / len(factors) - 1.0) < 0.01


class TestPressureCap:
    def test_huge_demand_cannot_starve_peer_completely(self):
        # a 1000x-over-capacity demand is capped at PRESSURE_CAP x capacity
        capacity = 10.0
        allocation = allocate_bandwidth([5.0, 10000.0], capacity, fairness=0.0)
        # the small agent's proportional share uses the capped pressure
        expected_small = 5.0 / (5.0 + PRESSURE_CAP * capacity) * capacity
        assert allocation[0] == pytest.approx(expected_small)
        assert allocation[0] > 0.2 * capacity  # not crushed to nothing

    def test_cap_inactive_below_capacity(self):
        allocation = allocate_bandwidth([2.0, 3.0], 10.0, fairness=0.0)
        assert allocation == [2.0, 3.0]

    def test_allocation_never_exceeds_true_demand(self):
        for fairness in (0.0, 0.35, 1.0):
            allocation = allocate_bandwidth([1.0, 50.0], 10.0, fairness)
            assert allocation[0] <= 1.0 + 1e-12
