"""Unit tests for the DRAM-traffic model."""

import pytest

from repro.analysis import profile_kernel
from repro.frontend import analyze_kernel, parse_kernel
from repro.sim import KAVERI, SKYLAKE, cpu_traffic, gpu_traffic
from repro.workloads.polybench import GESUMMV_SRC


def profile_of(source, args, gsz, lsz, **kw):
    return profile_kernel(analyze_kernel(parse_kernel(source)), args, gsz, lsz, **kw)


COALESCED = """
__kernel void copy(__global float* A, __global float* B, int n)
{ int i = get_global_id(0); if (i < n) B[i] = A[i]; }
"""

STRIDED = """
__kernel void gather(__global float* A, __global float* B, int n)
{ int i = get_global_id(0); if (i < n) B[i] = A[i * 64]; }
"""

RANDOM = """
__kernel void rgather(__global float* A, __global int* I, __global float* B, int n)
{ int i = get_global_id(0); if (i < n) B[i] = A[I[i]]; }
"""


class TestGpuTraffic:
    def test_coalesced_traffic_is_useful_bytes(self):
        profile = profile_of(COALESCED, {"n": 4096}, 4096, 64)
        estimate = gpu_traffic(profile, KAVERI, 1.0)
        # one load + one store of 4 bytes each
        assert estimate.bytes_per_item == pytest.approx(8.0, rel=0.05)

    def test_large_stride_costs_a_line_per_access(self):
        profile = profile_of(STRIDED, {"n": 4096}, 4096, 64)
        estimate = gpu_traffic(profile, KAVERI, 1.0)
        # load: 64-byte line per access; store: coalesced 4 bytes
        assert estimate.bytes_per_item == pytest.approx(68.0, rel=0.05)

    def test_random_traffic_costs_lines_when_thrashed(self):
        profile = profile_of(RANDOM, {"n": 1 << 20}, 1 << 20, 64)
        estimate = gpu_traffic(profile, KAVERI, 1.0)
        # 4 MiB random region >> 512 KiB L2: close to a line per access
        assert estimate.bytes_per_item > 40.0

    def test_gesummv_traffic_grows_with_utilisation(self):
        """The Figure-3b phenomenon: more active PEs, more DRAM traffic."""
        profile = profile_of(GESUMMV_SRC, {"n": 16384, "alpha": 1.0, "beta": 1.0},
                             16384, 256)
        bytes_by_util = [
            gpu_traffic(profile, KAVERI, u / 8).bytes_per_item for u in range(1, 9)
        ]
        assert bytes_by_util[-1] > 2.0 * bytes_by_util[0]
        # non-decreasing across the sweep
        # near-monotone: the broadcast (shared-x) term shrinks slightly
        # with more concurrent sharers, a negligible counter-effect
        assert all(b2 >= b1 * 0.995 for b1, b2 in zip(bytes_by_util, bytes_by_util[1:]))

    def test_survival_decreases_with_utilisation(self):
        profile = profile_of(GESUMMV_SRC, {"n": 16384, "alpha": 1.0, "beta": 1.0},
                             16384, 256)
        survivals = [
            gpu_traffic(profile, KAVERI, u / 8).l2_survival for u in range(1, 9)
        ]
        assert survivals[0] > survivals[-1]

    def test_shared_llc_softens_the_cliff(self):
        """Skylake's GPU sees part of the big LLC (§9.3)."""
        profile = profile_of(GESUMMV_SRC, {"n": 16384, "alpha": 1.0, "beta": 1.0},
                             16384, 256)
        kaveri = gpu_traffic(profile, KAVERI, 1.0)
        skylake = gpu_traffic(profile, SKYLAKE, 1.0)
        assert skylake.l2_survival > kaveri.l2_survival

    def test_compulsory_floor(self):
        """Traffic can never drop below the useful bytes of private streams."""
        profile = profile_of(GESUMMV_SRC, {"n": 8192, "alpha": 1.0, "beta": 1.0},
                             8192, 256)
        estimate = gpu_traffic(profile, KAVERI, 1 / 8)
        assert estimate.bytes_per_item >= 2 * 8192 * 4 * 0.99  # A and B rows


class TestCpuTraffic:
    def test_cpu_streams_at_useful_bytes(self):
        profile = profile_of(COALESCED, {"n": 4096}, 4096, 64)
        estimate = cpu_traffic(profile, KAVERI)
        assert estimate.bytes_per_item == pytest.approx(8.0, rel=0.05)

    def test_cpu_absorbs_fitting_random_region(self):
        # 64 KiB region fits the 4 MiB LLC: random gather is nearly free
        profile = profile_of(RANDOM, {"n": 16384}, 16384, 64)
        estimate = cpu_traffic(profile, KAVERI)
        assert estimate.l2_survival == 1.0
        assert estimate.bytes_per_item < 16.0

    def test_cpu_thrashes_on_huge_random_region(self):
        profile = profile_of(RANDOM, {"n": 1 << 22}, 1 << 22, 64)
        estimate = cpu_traffic(profile, KAVERI)
        assert estimate.l2_survival < 0.5
        assert estimate.bytes_per_item > 30.0

    def test_cpu_insensitive_to_gpu_utilisation_knob(self):
        profile = profile_of(GESUMMV_SRC, {"n": 4096, "alpha": 1.0, "beta": 1.0},
                             4096, 256)
        assert cpu_traffic(profile, KAVERI).bytes_per_item == pytest.approx(
            cpu_traffic(profile, KAVERI).bytes_per_item
        )

    def test_cpu_vs_gpu_on_irregular_kernel(self):
        """Irregular/random-heavy kernels are cheaper per item on the CPU."""
        profile = profile_of(RANDOM, {"n": 1 << 20}, 1 << 20, 64)
        cpu = cpu_traffic(profile, KAVERI)
        gpu = gpu_traffic(profile, KAVERI, 1.0)
        assert cpu.bytes_per_item < gpu.bytes_per_item
