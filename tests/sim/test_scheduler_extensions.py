"""Unit tests for the scheduler extensions (pull-based GPU, guided chunks)."""

import pytest

from repro.analysis import profile_kernel
from repro.frontend import analyze_kernel, parse_kernel
from repro.sim import KAVERI, DopSetting, SimulationError, simulate_execution
from repro.workloads.polybench import GESUMMV_SRC


@pytest.fixture(scope="module")
def profile():
    info = analyze_kernel(parse_kernel(GESUMMV_SRC))
    return profile_kernel(info, {"n": 16384, "alpha": 1.0, "beta": 1.0}, 16384, 256)


class TestPullScheduler:
    def test_accounts_for_all_items(self, profile):
        result = simulate_execution(
            profile, KAVERI, DopSetting(4, 0.5), scheduler="dynamic-pull"
        )
        assert result.cpu_items + result.gpu_items == pytest.approx(16384)
        assert result.scheduler == "dynamic-pull"

    def test_split_proportional_to_rates(self, profile):
        result = simulate_execution(
            profile, KAVERI, DopSetting(4, 0.25), scheduler="dynamic-pull"
        )
        # the faster device must take the larger share
        assert result.cpu_items != result.gpu_items

    def test_never_slower_than_push(self, profile):
        for fraction in (0.25, 0.5, 1.0):
            push = simulate_execution(
                profile, KAVERI, DopSetting(4, fraction),
                scheduler="dynamic", run_key=("cmp",), sigma=0.0,
            ).time_s
            pull = simulate_execution(
                profile, KAVERI, DopSetting(4, fraction),
                scheduler="dynamic-pull", run_key=("cmp",), sigma=0.0,
            ).time_s
            assert pull <= push * 1.01

    def test_single_device_degenerates_to_push(self, profile):
        pull = simulate_execution(
            profile, KAVERI, DopSetting(4, 0.0),
            scheduler="dynamic-pull", sigma=0.0,
        )
        push = simulate_execution(
            profile, KAVERI, DopSetting(4, 0.0),
            scheduler="dynamic", chunk_divisor=1, sigma=0.0,
        )
        assert pull.time_s == pytest.approx(push.time_s)


class TestGuidedChunks:
    def test_guided_not_slower_for_memory_bound(self, profile):
        fixed = simulate_execution(
            profile, KAVERI, DopSetting(4, 1.0),
            scheduler="dynamic", chunk_policy="fixed", sigma=0.0,
        ).time_s
        guided = simulate_execution(
            profile, KAVERI, DopSetting(4, 1.0),
            scheduler="dynamic", chunk_policy="guided", sigma=0.0,
        ).time_s
        assert guided <= fixed * 1.01

    def test_guided_accounts_for_all_items(self, profile):
        result = simulate_execution(
            profile, KAVERI, DopSetting(4, 0.5),
            scheduler="dynamic", chunk_policy="guided",
        )
        assert result.cpu_items + result.gpu_items == pytest.approx(16384)

    def test_unknown_policy_rejected(self, profile):
        with pytest.raises(SimulationError):
            simulate_execution(
                profile, KAVERI, DopSetting(4, 0.5),
                scheduler="dynamic", chunk_policy="banana",
            )
