"""Unit tests for the co-execution engine and contention model."""

import pytest

from repro.analysis import profile_kernel
from repro.frontend import analyze_kernel, parse_kernel
from repro.sim import (
    KAVERI,
    SKYLAKE,
    DopSetting,
    SimulationError,
    allocate_bandwidth,
    cpu_rate,
    gpu_rate,
    simulate_execution,
)
from repro.workloads.polybench import GESUMMV_SRC


def gesummv_profile(n=16384):
    info = analyze_kernel(parse_kernel(GESUMMV_SRC))
    return profile_kernel(info, {"n": n, "alpha": 1.0, "beta": 1.0}, n, 256)


class TestBandwidthArbitration:
    def test_under_capacity_everyone_satisfied(self):
        assert allocate_bandwidth([3.0, 4.0], 10.0) == [3.0, 4.0]

    def test_fair_split_at_saturation(self):
        allocation = allocate_bandwidth([10.0, 10.0], 10.0, fairness=1.0)
        assert allocation == [5.0, 5.0]

    def test_maxmin_redistribution(self):
        allocation = allocate_bandwidth([2.0, 100.0], 10.0, fairness=1.0)
        assert allocation[0] == pytest.approx(2.0)
        assert allocation[1] == pytest.approx(8.0)

    def test_proportional_starves_the_small_agent(self):
        from repro.sim.contention import PRESSURE_CAP

        allocation = allocate_bandwidth([1.0, 99.0], 10.0, fairness=0.0)
        # the big agent's pressure is capped at PRESSURE_CAP x capacity, so
        # the small agent keeps a bounded (but much reduced) share
        expected_small = 1.0 / (1.0 + PRESSURE_CAP * 10.0) * 10.0
        assert allocation[0] == pytest.approx(expected_small)
        assert allocation[0] < 1.0  # well below its solo demand
        assert allocation[1] > 8.0  # the flooding agent dominates

    def test_blend_between_regimes(self):
        fair = allocate_bandwidth([1.0, 99.0], 10.0, fairness=1.0)
        proportional = allocate_bandwidth([1.0, 99.0], 10.0, fairness=0.0)
        blended = allocate_bandwidth([1.0, 99.0], 10.0, fairness=0.5)
        assert proportional[0] < blended[0] < fair[0]

    def test_total_never_exceeds_capacity(self):
        for fairness in (0.0, 0.3, 1.0):
            allocation = allocate_bandwidth([7.0, 9.0, 30.0], 12.0, fairness)
            assert sum(allocation) <= 12.0 + 1e-9

    def test_zero_demand_gets_zero(self):
        assert allocate_bandwidth([0.0, 5.0], 10.0)[0] == 0.0


class TestDeviceRates:
    def test_gpu_rate_scales_with_fraction(self):
        profile = gesummv_profile()
        full = gpu_rate(profile, KAVERI, 1.0)
        half = gpu_rate(profile, KAVERI, 0.5)
        assert full.items_per_second == pytest.approx(2 * half.items_per_second, rel=1e-6)

    def test_zero_fraction_is_inert(self):
        rate = gpu_rate(gesummv_profile(), KAVERI, 0.0)
        assert rate.items_per_second == 0.0

    def test_cpu_rate_increases_with_threads(self):
        profile = gesummv_profile()
        rates = [cpu_rate(profile, KAVERI, t).items_per_second for t in (1, 2, 4)]
        assert rates[0] < rates[1] < rates[2]

    def test_smt_threads_yield_less_than_cores(self):
        profile = gesummv_profile()
        four = cpu_rate(profile, SKYLAKE, 4).items_per_second
        eight = cpu_rate(profile, SKYLAKE, 8).items_per_second
        assert four < eight < 2 * four


class TestSettingValidation:
    def test_all_zero_rejected(self):
        with pytest.raises(ValueError):
            DopSetting(0, 0.0)

    def test_negative_cpu_rejected(self):
        with pytest.raises(ValueError):
            DopSetting(-1, 0.5)

    def test_fraction_range_enforced(self):
        with pytest.raises(ValueError):
            DopSetting(1, 1.5)


class TestDynamicSimulation:
    def test_result_accounts_for_every_item(self):
        profile = gesummv_profile()
        result = simulate_execution(profile, KAVERI, DopSetting(4, 0.5))
        assert result.cpu_items + result.gpu_items == pytest.approx(16384)

    def test_cpu_only_runs_everything_on_cpu(self):
        result = simulate_execution(gesummv_profile(), KAVERI, DopSetting(4, 0.0))
        assert result.gpu_items == 0.0

    def test_gpu_only_runs_everything_on_gpu(self):
        result = simulate_execution(gesummv_profile(), KAVERI, DopSetting(0, 1.0))
        assert result.cpu_items == 0.0

    def test_noise_is_reproducible(self):
        profile = gesummv_profile()
        a = simulate_execution(profile, KAVERI, DopSetting(4, 0.5), run_key=("x",))
        b = simulate_execution(profile, KAVERI, DopSetting(4, 0.5), run_key=("x",))
        assert a.time_s == b.time_s

    def test_noise_differs_across_keys(self):
        profile = gesummv_profile()
        a = simulate_execution(profile, KAVERI, DopSetting(4, 0.5), run_key=("x",))
        b = simulate_execution(profile, KAVERI, DopSetting(4, 0.5), run_key=("y",))
        assert a.time_s != b.time_s

    def test_gesummv_best_at_intermediate_gpu_util(self):
        """The Figure-1 phenomenon, end to end."""
        profile = gesummv_profile()
        times = {}
        for threads in (0, 2, 4):
            for eighth in range(9):
                if threads == 0 and eighth == 0:
                    continue
                setting = DopSetting(threads, eighth / 8)
                times[(threads, eighth)] = simulate_execution(
                    profile, KAVERI, setting, run_key=("fig1",)
                ).time_s
        best = min(times, key=times.get)
        assert 1 <= best[1] <= 4          # moderate GPU utilisation wins
        assert times[best] < times[(0, 8)] * 0.5   # much better than GPU-only
        assert times[best] < times[(4, 8)] * 0.9   # better than ALL

    def test_memory_requests_grow_with_gpu_util(self):
        profile = gesummv_profile()
        lo = simulate_execution(profile, KAVERI, DopSetting(4, 2 / 8), run_key=("m",))
        hi = simulate_execution(profile, KAVERI, DopSetting(4, 1.0), run_key=("m",))
        assert hi.mem_requests > lo.mem_requests

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(SimulationError):
            simulate_execution(
                gesummv_profile(), KAVERI, DopSetting(4, 0.5), scheduler="magic"
            )


class TestStaticSimulation:
    def test_static_requires_share(self):
        with pytest.raises(SimulationError):
            simulate_execution(
                gesummv_profile(), KAVERI, DopSetting(4, 0.5), scheduler="static"
            )

    def test_static_share_splits_items(self):
        result = simulate_execution(
            gesummv_profile(), KAVERI, DopSetting(4, 1.0),
            scheduler="static", static_cpu_share=0.25,
        )
        assert result.cpu_items == pytest.approx(0.25 * 16384)

    def test_extreme_shares(self):
        profile = gesummv_profile()
        all_cpu = simulate_execution(
            profile, KAVERI, DopSetting(4, 1.0), scheduler="static", static_cpu_share=1.0
        )
        assert all_cpu.gpu_items == 0.0
        all_gpu = simulate_execution(
            profile, KAVERI, DopSetting(4, 1.0), scheduler="static", static_cpu_share=0.0
        )
        assert all_gpu.cpu_items == 0.0

    def test_dynamic_competitive_with_best_static(self):
        """Figure 9: dynamic is within the paper's observed band of the
        best of 19 static splits (their DYNAMIC whiskers reach ~4x; the
        extremely memory-bound Gesummv is near the tail)."""
        profile = gesummv_profile()
        setting = DopSetting(4, 1.0)
        dynamic = simulate_execution(
            profile, KAVERI, setting, scheduler="dynamic", run_key=("f9",)
        ).time_s
        statics = [
            simulate_execution(
                profile, KAVERI, setting, scheduler="static",
                static_cpu_share=s / 100, run_key=("f9",),
            ).time_s
            for s in range(5, 100, 5)
        ]
        assert dynamic <= min(statics) * 2.5
        # and dynamic beats the *median* static split comfortably
        assert dynamic < sorted(statics)[len(statics) // 2]
