"""Unit tests for the recursive-descent parser."""

import pytest

from repro.frontend import (
    Assignment,
    BinaryOp,
    Block,
    Call,
    Cast,
    Conditional,
    DeclStmt,
    For,
    Identifier,
    If,
    Index,
    IntLiteral,
    ParserError,
    PostfixOp,
    Return,
    UnaryOp,
    While,
    parse,
    parse_kernel,
)


def parse_stmt(body: str):
    kernel = parse_kernel(f"__kernel void k(__global float* A, int n) {{ {body} }}")
    return kernel.body.body


def parse_expr(text: str):
    (stmt,) = parse_stmt(f"{text};")
    return stmt.expr


class TestTopLevel:
    def test_kernel_qualifier_detected(self):
        unit = parse("__kernel void f(int n) { }")
        assert unit.functions[0].is_kernel

    def test_plain_function_not_kernel(self):
        unit = parse("void helper(int n) { }")
        assert not unit.functions[0].is_kernel

    def test_multiple_kernels(self):
        unit = parse("__kernel void a() { } __kernel void b() { }")
        assert [k.name for k in unit.kernels()] == ["a", "b"]

    def test_kernel_lookup_by_name(self):
        unit = parse("__kernel void a() { } __kernel void b() { }")
        assert unit.kernel("b").name == "b"
        with pytest.raises(KeyError):
            unit.kernel("missing")

    def test_parse_kernel_requires_unique_kernel(self):
        with pytest.raises(ParserError):
            parse_kernel("__kernel void a() { } __kernel void b() { }")

    def test_digit_leading_kernel_name(self):
        kernel = parse_kernel("__kernel void 2mat3d(__global float* A) { }")
        assert kernel.name == "2mat3d"

    def test_param_qualifiers(self):
        kernel = parse_kernel(
            "__kernel void f(__global const float* A, __local int* s, uint n) { }"
        )
        a, s, n = kernel.params
        assert a.type.pointer and a.type.address_space == "global" and a.type.const
        assert s.type.address_space == "local"
        assert n.type.name == "uint" and not n.type.pointer

    def test_unsigned_int_spelling(self):
        kernel = parse_kernel("__kernel void f(unsigned int n) { }")
        assert kernel.params[0].type.name == "uint"


class TestStatements:
    def test_declaration_with_init(self):
        (stmt,) = parse_stmt("int i = 3;")
        assert isinstance(stmt, DeclStmt)
        assert stmt.decls[0].name == "i"
        assert isinstance(stmt.decls[0].init, IntLiteral)

    def test_multi_declarator(self):
        (stmt,) = parse_stmt("int i = 1, j = 2;")
        assert [d.name for d in stmt.decls] == ["i", "j"]

    def test_local_array_declaration(self):
        (stmt,) = parse_stmt("__local int wl[1];")
        assert stmt.decls[0].array_dims[0].value == 1
        assert stmt.decls[0].type.address_space == "local"

    def test_if_else(self):
        (stmt,) = parse_stmt("if (n) return; else n = 1;")
        assert isinstance(stmt, If)
        assert isinstance(stmt.then, Return)
        assert stmt.otherwise is not None

    def test_dangling_else_binds_inner(self):
        (stmt,) = parse_stmt("if (n) if (n) n = 1; else n = 2;")
        assert stmt.otherwise is None
        assert stmt.then.otherwise is not None

    def test_for_loop_parts(self):
        (stmt,) = parse_stmt("for (int i = 0; i < n; i++) n = n;")
        assert isinstance(stmt, For)
        assert isinstance(stmt.init, DeclStmt)
        assert isinstance(stmt.cond, BinaryOp)
        assert isinstance(stmt.step, PostfixOp)

    def test_for_with_empty_clauses(self):
        (stmt,) = parse_stmt("for (;;) break;")
        assert stmt.init is None and stmt.cond is None and stmt.step is None

    def test_while(self):
        (stmt,) = parse_stmt("while (n) n = n - 1;")
        assert isinstance(stmt, While)

    def test_empty_statement_is_empty_block(self):
        (stmt,) = parse_stmt(";")
        assert isinstance(stmt, Block) and not stmt.body

    def test_missing_semicolon_is_error(self):
        with pytest.raises(ParserError):
            parse_stmt("n = 1")

    def test_unterminated_block_is_error(self):
        with pytest.raises(ParserError):
            parse("__kernel void f() { int i = 0;")


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = parse_expr("n + n * n")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_parentheses_override(self):
        expr = parse_expr("(n + n) * n")
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_comparison_chain_precedence(self):
        expr = parse_expr("n < 3 && n > 1")
        assert expr.op == "&&"

    def test_assignment_right_associative(self):
        expr = parse_expr("n = n = 1")
        assert isinstance(expr, Assignment)
        assert isinstance(expr.value, Assignment)

    def test_compound_assignment(self):
        expr = parse_expr("n += 2")
        assert expr.op == "+="

    def test_ternary(self):
        expr = parse_expr("n ? 1 : 2")
        assert isinstance(expr, Conditional)

    def test_unary_minus_binds_tight(self):
        expr = parse_expr("-n * 3")
        assert expr.op == "*"
        assert isinstance(expr.left, UnaryOp)

    def test_index_chain(self):
        expr = parse_expr("A[n][n]")
        assert isinstance(expr, Index)
        assert isinstance(expr.base, Index)

    def test_call_with_args(self):
        expr = parse_expr("get_global_id(0)")
        assert isinstance(expr, Call)
        assert expr.args[0].value == 0

    def test_cast(self):
        expr = parse_expr("(float)n")
        assert isinstance(expr, Cast)
        assert expr.type.name == "float"

    def test_cast_vs_parenthesised_expr(self):
        expr = parse_expr("(n) + 1")
        assert expr.op == "+"
        assert isinstance(expr.left, Identifier)

    def test_postfix_increment(self):
        expr = parse_expr("n++")
        assert isinstance(expr, PostfixOp)

    def test_address_of(self):
        expr = parse_expr("&A[0]")
        assert isinstance(expr, UnaryOp) and expr.op == "&"

    def test_shift_expression(self):
        expr = parse_expr("n << 2")
        assert expr.op == "<<"

    def test_unexpected_token_is_error(self):
        with pytest.raises(ParserError):
            parse_expr("n + ;")
