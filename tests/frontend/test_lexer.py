"""Unit tests for the OpenCL-C tokenizer."""

import pytest

from repro.frontend import LexerError, TokenKind, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)[:-1]]


def values(source):
    return [t.value for t in tokenize(source)[:-1]]


class TestBasicTokens:
    def test_empty_input_yields_only_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOF

    def test_identifier(self):
        (token,) = tokenize("my_var2")[:-1]
        assert token.kind is TokenKind.IDENT
        assert token.value == "my_var2"

    def test_keywords_are_not_identifiers(self):
        assert kinds("int float __kernel __global for") == [TokenKind.KEYWORD] * 5

    def test_underscore_starts_identifier(self):
        (token,) = tokenize("_tmp")[:-1]
        assert token.kind is TokenKind.IDENT

    def test_punctuation_sequence(self):
        assert values("a+=b*c;") == ["a", "+=", "b", "*", "c", ";"]

    def test_maximal_munch_on_shifts(self):
        assert values("a<<=b >>c") == ["a", "<<=", "b", ">>", "c"]

    def test_increment_vs_plus(self):
        assert values("i++ + ++j") == ["i", "++", "+", "++", "j"]


class TestNumericLiterals:
    def test_decimal_int(self):
        (token,) = tokenize("42")[:-1]
        assert token.kind is TokenKind.INT_LITERAL
        assert token.value == "42"

    def test_hex_int(self):
        (token,) = tokenize("0xFF")[:-1]
        assert token.kind is TokenKind.INT_LITERAL
        assert token.value == "0xFF"

    def test_unsigned_suffix(self):
        (token,) = tokenize("7u")[:-1]
        assert token.kind is TokenKind.INT_LITERAL

    def test_simple_float(self):
        (token,) = tokenize("3.25")[:-1]
        assert token.kind is TokenKind.FLOAT_LITERAL

    def test_float_f_suffix(self):
        (token,) = tokenize("0.5f")[:-1]
        assert token.kind is TokenKind.FLOAT_LITERAL
        assert token.value == "0.5f"

    def test_float_exponent(self):
        (token,) = tokenize("1e-3")[:-1]
        assert token.kind is TokenKind.FLOAT_LITERAL

    def test_int_then_member_like_dot_is_float(self):
        (token,) = tokenize("2.")[:-1]
        assert token.kind is TokenKind.FLOAT_LITERAL

    def test_integer_suffixed_float(self):
        (token,) = tokenize("2f")[:-1]
        assert token.kind is TokenKind.FLOAT_LITERAL


class TestTrivia:
    def test_line_comment_skipped(self):
        assert values("a // comment\n b") == ["a", "b"]

    def test_block_comment_skipped(self):
        assert values("a /* x\n y */ b") == ["a", "b"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexerError):
            tokenize("a /* never closed")

    def test_preprocessor_line_skipped(self):
        assert values("#define N 10\nint x;") == ["int", "x", ";"]

    def test_preprocessor_continuation_skipped(self):
        assert values("#define N \\\n 10\nx") == ["x"]

    def test_locations_track_lines_and_columns(self):
        tokens = tokenize("a\n  b")
        assert tokens[0].location.line == 1
        assert tokens[0].location.column == 1
        assert tokens[1].location.line == 2
        assert tokens[1].location.column == 3

    def test_unexpected_character_raises_with_location(self):
        with pytest.raises(LexerError) as exc:
            tokenize("a\n  $")
        assert exc.value.location.line == 2


class TestKernelSources:
    def test_full_kernel_tokenizes(self):
        source = """
        __kernel void f(__global float* A, int n) {
            int i = get_global_id(0);
            if (i < n) A[i] = A[i] * 2.0f;
        }
        """
        tokens = tokenize(source)
        assert tokens[-1].kind is TokenKind.EOF
        assert "get_global_id" in [t.value for t in tokens]
