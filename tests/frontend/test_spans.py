"""Every AST node must carry a real source span.

The verifier's diagnostics are only as good as the spans on the nodes they
anchor to, so this locks in full coverage: every node reachable from every
registry kernel — original, malleable GPU variant, and generated CPU
variant — plus a synthetic Table-2 kernel, has ``location.line >= 1``.
"""

from repro.frontend import ast
from repro.transform.cpu_codegen import CpuTransformError, make_cpu_kernel
from repro.transform.gpu_malleable import TransformError, make_malleable
from repro.workloads import scaled_real_workloads
from repro.workloads.synthetic import SyntheticSpec, make_synthetic


def iter_nodes(node):
    if not isinstance(node, ast.Node):
        return
    yield node
    for name, value in vars(node).items():
        if name == "location":
            continue
        if isinstance(value, ast.Node):
            yield from iter_nodes(value)
        elif isinstance(value, (list, tuple)):
            for item in value:
                yield from iter_nodes(item)


def assert_spans(kernel, label):
    count = 0
    for node in iter_nodes(kernel):
        count += 1
        location = node.location
        assert location is not None, f"{label}: {type(node).__name__} has no span"
        assert location.line >= 1, (
            f"{label}: {type(node).__name__} has line {location.line}")
    assert count > 0, f"{label}: walker visited nothing"


def test_registry_kernels_and_transforms_have_full_span_coverage():
    for workload in scaled_real_workloads():
        info = workload.kernel_info()
        work_dim = workload.ndrange().work_dim
        assert_spans(info.kernel, workload.key)
        try:
            assert_spans(make_malleable(info, work_dim=work_dim).info.kernel,
                         f"{workload.key}@malleable")
        except TransformError:
            pass
        try:
            assert_spans(make_cpu_kernel(info, work_dim=work_dim).info.kernel,
                         f"{workload.key}@cpu")
        except CpuTransformError:
            pass


def test_synthetic_kernel_has_full_span_coverage():
    spec = SyntheticSpec(alpha=2, beta=3, gamma=1, delta=0, epsilon=0,
                         theta=0, dim=1, dtype="float")
    workload = make_synthetic(spec, size=16, wg_items=8, extent=4)
    assert_spans(workload.kernel_info().kernel, workload.key)
