"""Unit tests for the semantic analysis pass."""

import pytest

from repro.frontend import SemanticError, analyze_kernel, parse_kernel


def analyze(source):
    return analyze_kernel(parse_kernel(source))


class TestSymbolTable:
    def test_params_partitioned_into_buffers_and_scalars(self):
        info = analyze(
            "__kernel void f(__global float* A, int n, __global int* B, float a) { }"
        )
        assert info.buffer_params == ["A", "B"]
        assert info.scalar_params == ["n", "a"]

    def test_locals_enter_symbol_table(self):
        info = analyze("__kernel void f(int n) { int i = 0; float x = 1.0f; }")
        assert "i" in info.symbols
        assert info.symbols.lookup("x").type.is_float

    def test_local_array_symbol(self):
        info = analyze("__kernel void f() { __local int wl[4]; }")
        symbol = info.symbols.lookup("wl")
        assert symbol.is_array and symbol.array_dims == (4,)

    def test_undeclared_identifier_rejected(self):
        with pytest.raises(SemanticError):
            analyze("__kernel void f(int n) { n = missing; }")

    def test_non_constant_local_array_dim_rejected(self):
        with pytest.raises(SemanticError):
            analyze("__kernel void f(int n) { __local int wl[n]; }")


class TestTypeInference:
    def test_float_wins_arithmetic(self):
        info = analyze(
            "__kernel void f(__global float* A, int n) { float x = A[0] + n; }"
        )
        decl = info.kernel.body.body[0].decls[0]
        assert info.type_of(decl.init).is_float

    def test_comparison_is_bool(self):
        info = analyze("__kernel void f(int n) { int b = n < 3; }")
        decl = info.kernel.body.body[0].decls[0]
        assert info.type_of(decl.init).name == "bool"

    def test_index_yields_element_type(self):
        info = analyze("__kernel void f(__global float* A) { float x = A[0]; }")
        decl = info.kernel.body.body[0].decls[0]
        assert info.type_of(decl.init).name == "float"

    def test_subscript_of_scalar_rejected(self):
        with pytest.raises(SemanticError):
            analyze("__kernel void f(int n) { int x = n[0]; }")

    def test_dereference_of_scalar_rejected(self):
        with pytest.raises(SemanticError):
            analyze("__kernel void f(int n) { int x = *n; }")


class TestBuiltins:
    def test_work_item_builtin_arity_checked(self):
        with pytest.raises(SemanticError):
            analyze("__kernel void f() { int i = get_global_id(0, 1); }")

    def test_unknown_function_rejected(self):
        with pytest.raises(SemanticError):
            analyze("__kernel void f() { frobnicate(); }")

    def test_barrier_flag_sets_uses_barrier(self):
        info = analyze("__kernel void f() { barrier(1); }")
        assert info.uses_barrier
        assert not info.uses_atomics

    def test_atomic_sets_uses_atomics(self):
        info = analyze("__kernel void f(__global int* c) { atomic_inc(c); }")
        assert info.uses_atomics
        assert not info.uses_barrier

    def test_math_builtin_returns_float(self):
        info = analyze("__kernel void f(float x) { float y = sqrt(x); }")
        decl = info.kernel.body.body[0].decls[0]
        assert info.type_of(decl.init).is_float
