"""Tests for user-defined helper functions (non-kernel functions)."""

import numpy as np
import pytest

from repro.analysis import extract_static_features
from repro.frontend import SemanticError, analyze_kernel, parse
from repro.interp import KernelExecutor, KernelRuntimeError, NDRange
from repro.transform import make_cpu_kernel, make_malleable

HELPER_SRC = """
float axpb(float a, float x, float b) { return a * x + b; }

int clampi(int v, int lo, int hi) {
    if (v < lo) return lo;
    if (v > hi) return hi;
    return v;
}

__kernel void k(__global float* A, int n)
{
    int i = get_global_id(0);
    if (i < n) A[i] = axpb(2.0f, A[i], 1.0f) + clampi(i, 2, 5);
}
"""


def analyzed(source=HELPER_SRC, name="k"):
    unit = parse(source)
    return analyze_kernel(unit.kernel(name), unit)


class TestSemantics:
    def test_helpers_registered(self):
        info = analyzed()
        assert set(info.user_functions) == {"axpb", "clampi"}

    def test_helper_return_type_inferred(self):
        info = analyzed()
        assert info.user_functions["axpb"].kernel.return_type.name == "float"

    def test_wrong_arity_rejected(self):
        with pytest.raises(SemanticError):
            analyzed(
                "float f(float x) { return x; }"
                "__kernel void k(__global float* A) { A[0] = f(1.0f, 2.0f); }"
            )

    def test_unknown_function_still_rejected(self):
        with pytest.raises(SemanticError):
            analyzed("__kernel void k(__global float* A) { A[0] = mystery(); }")

    def test_helpers_can_call_earlier_helpers(self):
        info = analyzed(
            "float one() { return 1.0f; }"
            "float two() { return one() + one(); }"
            "__kernel void k(__global float* A) { A[0] = two(); }"
        )
        assert "two" in info.user_functions

    def test_atomic_in_helper_propagates_flag(self):
        info = analyzed(
            "int bump(__global int* c) { return atomic_inc(c); }"
            "__kernel void k(__global int* c) { bump(c); }"
        )
        assert info.uses_atomics


class TestInterpreter:
    def test_execution_matches_reference(self):
        info = analyzed()
        A = np.arange(8, dtype=float)
        KernelExecutor(info, {"A": A, "n": 8}, NDRange(8, 4)).run()
        expected = 2 * np.arange(8) + 1 + np.clip(np.arange(8), 2, 5)
        assert np.allclose(A, expected)

    def test_helper_scope_is_isolated(self):
        info = analyzed(
            "float shadow(float i) { i = i + 100.0f; return i; }"
            "__kernel void k(__global float* A, int n)"
            "{ int i = get_global_id(0); if (i < n) A[i] = shadow(1.0f) + i; }"
        )
        A = np.zeros(4)
        KernelExecutor(info, {"A": A, "n": 4}, NDRange(4, 4)).run()
        assert np.allclose(A, 101.0 + np.arange(4))

    def test_helper_taking_buffer_pointer(self):
        info = analyzed(
            "float first(__global float* p) { return p[0]; }"
            "__kernel void k(__global float* A, __global float* B)"
            "{ B[get_global_id(0)] = first(A); }"
        )
        A = np.array([7.5, 1.0])
        B = np.zeros(2)
        KernelExecutor(info, {"A": A, "B": B}, NDRange(2, 2)).run()
        assert np.all(B == 7.5)

    def test_nonvoid_helper_without_return_rejected(self):
        info = analyzed(
            "float bad(float x) { x = x + 1.0f; }"
            "__kernel void k(__global float* A) { A[0] = bad(1.0f); }"
        )
        with pytest.raises(KernelRuntimeError):
            KernelExecutor(info, {"A": np.zeros(1)}, NDRange(1, 1)).run()


class TestAnalysisInlining:
    def test_helper_memory_ops_counted(self):
        info = analyzed(
            "float dot3(__global float* A, __global float* B, int base) {"
            "  return A[base] * B[base] + A[base + 1] * B[base + 1]"
            "       + A[base + 2] * B[base + 2]; }"
            "__kernel void k(__global float* A, __global float* B,"
            "                __global float* C, int n)"
            "{ int i = get_global_id(0); if (i < n) C[i] = dot3(A, B, i * 3); }"
        )
        features = extract_static_features(info)
        # the six loads inside dot3 are visible to the feature extractor
        assert features.mem_continuous + features.mem_stride >= 6

    def test_argument_pattern_flows_into_helper(self):
        stride_info = analyzed(
            "float get(__global float* A, int at) { return A[at]; }"
            "__kernel void k(__global float* A, __global float* B, int n)"
            "{ int i = get_global_id(0); B[i] = get(A, i * 64); }"
        )
        features = extract_static_features(stride_info)
        assert features.mem_stride >= 1


class TestTransforms:
    def test_malleable_carries_helpers_and_is_equivalent(self):
        expected = np.arange(16, dtype=float)
        KernelExecutor(analyzed(), {"A": expected, "n": 16}, NDRange(16, 8)).run()

        malleable = make_malleable(HELPER_SRC, work_dim=1)
        assert "float axpb" in malleable.source
        actual = np.arange(16, dtype=float)
        KernelExecutor(
            malleable.info,
            {"A": actual, "n": 16, "dop_gpu_mod": 4, "dop_gpu_alloc": 1},
            NDRange(16, 8),
        ).run()
        assert np.array_equal(actual, expected)

    def test_cpu_variant_carries_helpers(self):
        cpu = make_cpu_kernel(HELPER_SRC, work_dim=1)
        assert "float axpb" in cpu.source
        assert cpu.name == "k_cpu"
