"""Shared fixtures for core tests: a small trained runtime per platform.

Training on the full 1,224-workload set takes ~10 s per platform; unit
tests use a reduced but representative synthetic slice (one size, one
work-group width) which trains in well under a second.
"""

import pytest

from repro.core import DopiaRuntime, collect_dataset
from repro.ml import make_model
from repro.sim import KAVERI
from repro.workloads.synthetic import training_workloads


@pytest.fixture(scope="session")
def small_workload_set():
    return training_workloads(sizes=(16384,), wg_sizes=(256,))


@pytest.fixture(scope="session")
def small_dataset(small_workload_set):
    return collect_dataset(small_workload_set, KAVERI, cache=False)


@pytest.fixture(scope="session")
def trained_runtime(small_dataset):
    model = make_model("dt")
    model.fit(small_dataset.feature_matrix(), small_dataset.targets())
    return DopiaRuntime(KAVERI, model)
