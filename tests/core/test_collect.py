"""Tests for the parallel, fault-tolerant collection pipeline.

Covers the sharded cache store (atomic writes, corruption recovery,
manifest rebuilds, legacy-format fallback), parallel/serial determinism,
and the collection statistics instrumentation.
"""

import json
import pickle

import numpy as np
import pytest

from repro.core import collect_dataset
from repro.core.collect import (
    CollectionStats,
    DatasetCacheError,
    WorkloadSpec,
    _atomic_write_npz,
    _collect_worker,
    cache_contents,
    clear_cache,
    collect_dataset_with_stats,
    legacy_dataset_path,
    manifest_path,
    read_manifest,
    shard_fingerprint,
    shard_store_dir,
)
from repro.core.training import DopDataset, _workloads_fingerprint
from repro.sim import KAVERI
from repro.workloads import make_gesummv
from repro.workloads.synthetic import SyntheticSpec, make_synthetic


def small_set(size=1024):
    spec = SyntheticSpec(alpha=2, beta=3)
    return [
        make_synthetic(spec, size=size, wg_items=64),
        make_synthetic(spec, size=size, wg_items=128),
        make_gesummv(n=size, wg=64),
    ]


def shard_files(cache_dir):
    return sorted(shard_store_dir(cache_dir, "kaveri").glob("*.npz"))


class TestWorkloadSpec:
    def test_pickle_roundtrip(self):
        spec = WorkloadSpec.from_workload(small_set()[0])
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_to_workload_measures_identically(self):
        workload = small_set()[2]
        rebuilt = WorkloadSpec.from_workload(workload).to_workload()
        from repro.core import measure_workload

        assert np.array_equal(
            measure_workload(workload, KAVERI), measure_workload(rebuilt, KAVERI)
        )

    def test_fingerprint_sensitive_to_geometry(self):
        a = WorkloadSpec.from_workload(small_set()[0])
        b = WorkloadSpec.from_workload(small_set()[1])
        assert shard_fingerprint(a, KAVERI) != shard_fingerprint(b, KAVERI)
        assert shard_fingerprint(a, KAVERI) == shard_fingerprint(a, KAVERI)


class TestParallelCollection:
    def test_parallel_matches_serial_bitwise(self):
        workloads = small_set()
        serial, s1 = collect_dataset_with_stats(workloads, KAVERI, cache=False, jobs=1)
        parallel, s2 = collect_dataset_with_stats(workloads, KAVERI, cache=False, jobs=2)
        assert np.array_equal(serial.times, parallel.times)
        assert np.array_equal(serial.static_features, parallel.static_features)
        assert np.array_equal(serial.runtime_features, parallel.runtime_features)
        assert serial.workload_keys == parallel.workload_keys
        assert (s1.jobs, s2.jobs) == (1, 2)

    def test_parallel_cold_cache_matches_serial_warm_read(self, tmp_path):
        workloads = small_set()
        cold, _ = collect_dataset_with_stats(
            workloads, KAVERI, cache=True, cache_dir=tmp_path, jobs=2
        )
        warm, stats = collect_dataset_with_stats(
            workloads, KAVERI, cache=True, cache_dir=tmp_path, jobs=1
        )
        assert np.array_equal(cold.times, warm.times)
        assert stats.shard_hits == len(workloads) and stats.shard_misses == 0

    def test_progress_callback_fires_per_miss(self, tmp_path):
        seen = []
        collect_dataset_with_stats(
            small_set(), KAVERI, cache=True, cache_dir=tmp_path, jobs=1,
            progress=lambda done, total, key: seen.append((done, total, key)),
        )
        assert [done for done, _, _ in seen] == [1, 2, 3]
        assert all(total == 3 for _, total, _ in seen)


class TestCorruptionRecovery:
    def test_truncated_shard_regenerated_transparently(self, tmp_path):
        workloads = small_set()
        clean, _ = collect_dataset_with_stats(
            workloads, KAVERI, cache=True, cache_dir=tmp_path
        )
        victim = shard_files(tmp_path)[0]
        victim.write_bytes(victim.read_bytes()[:64])
        recovered, stats = collect_dataset_with_stats(
            workloads, KAVERI, cache=True, cache_dir=tmp_path
        )
        assert stats.shards_corrupt == 1
        assert stats.shard_misses == 1 and stats.shard_hits == len(workloads) - 1
        assert np.array_equal(clean.times, recovered.times)
        # the shard was rewritten: a third run is all hits
        _, stats = collect_dataset_with_stats(
            workloads, KAVERI, cache=True, cache_dir=tmp_path
        )
        assert stats.shard_hits == len(workloads) and stats.shards_corrupt == 0

    def test_garbage_shard_regenerated(self, tmp_path):
        workloads = small_set()
        collect_dataset_with_stats(workloads, KAVERI, cache=True, cache_dir=tmp_path)
        shard_files(tmp_path)[1].write_bytes(b"this is not a zip file")
        _, stats = collect_dataset_with_stats(
            workloads, KAVERI, cache=True, cache_dir=tmp_path
        )
        assert stats.shards_corrupt == 1

    def test_corrupt_manifest_discarded_and_rewritten(self, tmp_path):
        workloads = small_set()
        collect_dataset_with_stats(workloads, KAVERI, cache=True, cache_dir=tmp_path)
        fingerprint = _workloads_fingerprint(workloads, KAVERI)
        path = manifest_path(tmp_path, "kaveri", fingerprint)
        path.write_text("{ not json")
        assert read_manifest(path) is None       # discarded ...
        assert not path.exists()
        dataset, stats = collect_dataset_with_stats(
            workloads, KAVERI, cache=True, cache_dir=tmp_path
        )
        assert stats.shard_hits == len(workloads)
        manifest = read_manifest(path)           # ... and rewritten
        assert manifest is not None
        assert [e["key"] for e in manifest.entries] == dataset.workload_keys

    def test_corrupt_legacy_monolithic_is_a_cache_miss(self, tmp_path):
        """Regression: the seed shipped a truncated monolithic .npz that made
        collect_dataset raise zipfile.BadZipFile instead of re-collecting."""
        workloads = small_set()
        fingerprint = _workloads_fingerprint(workloads, KAVERI)
        legacy = legacy_dataset_path(tmp_path, "kaveri", fingerprint)
        legacy.parent.mkdir(parents=True, exist_ok=True)
        legacy.write_bytes(b"PK\x03\x04 truncated garbage")
        dataset, stats = collect_dataset_with_stats(
            workloads, KAVERI, cache=True, cache_dir=tmp_path
        )
        assert not legacy.exists()               # discarded
        assert not stats.legacy_hit
        assert dataset.n_workloads == len(workloads)

    def test_valid_legacy_monolithic_still_served(self, tmp_path):
        workloads = small_set()
        dataset, _ = collect_dataset_with_stats(workloads, KAVERI, cache=False)
        fingerprint = _workloads_fingerprint(workloads, KAVERI)
        dataset.save(legacy_dataset_path(tmp_path, "kaveri", fingerprint))
        loaded, stats = collect_dataset_with_stats(
            workloads, KAVERI, cache=True, cache_dir=tmp_path
        )
        assert stats.legacy_hit
        assert np.array_equal(dataset.times, loaded.times)


class TestAtomicWrites:
    def test_failed_write_leaves_no_partial_file(self, tmp_path, monkeypatch):
        def explode(fh, **arrays):
            fh.write(b"partial bytes")
            raise OSError("disk full")

        monkeypatch.setattr(np, "savez_compressed", explode)
        with pytest.raises(OSError):
            _atomic_write_npz(tmp_path / "shard.npz", {"x": np.zeros(3)})
        assert not list(tmp_path.iterdir())      # no target, no temp litter

    def test_interrupted_run_is_resumable(self, tmp_path, monkeypatch):
        """A worker crash mid-collection keeps completed shards; the retry
        collects only the remainder."""
        workloads = small_set()
        calls = []
        real_worker = _collect_worker

        def poisoned(task):
            calls.append(task[0])
            if len(calls) == 3:
                raise RuntimeError("simulated worker crash")
            return real_worker(task)

        import repro.core.collect as collect_mod

        monkeypatch.setattr(collect_mod, "_collect_worker", poisoned)
        with pytest.raises(RuntimeError):
            collect_dataset_with_stats(
                workloads, KAVERI, cache=True, cache_dir=tmp_path, jobs=1
            )
        assert len(shard_files(tmp_path)) == 2   # completed shards survive
        assert not list(shard_store_dir(tmp_path, "kaveri").glob(".tmp-*"))
        monkeypatch.undo()
        _, stats = collect_dataset_with_stats(
            workloads, KAVERI, cache=True, cache_dir=tmp_path, jobs=1
        )
        assert stats.shard_hits == 2 and stats.shard_misses == 1


class TestStatsAndTools:
    def test_stats_summary_mentions_key_numbers(self, tmp_path):
        _, stats = collect_dataset_with_stats(
            small_set(), KAVERI, cache=True, cache_dir=tmp_path, jobs=1
        )
        assert isinstance(stats, CollectionStats)
        text = stats.summary()
        assert "kaveri" in text and "3 workloads" in text and "jobs=1" in text
        assert stats.total_seconds > 0

    def test_manifest_records_stats(self, tmp_path):
        workloads = small_set()
        collect_dataset_with_stats(workloads, KAVERI, cache=True, cache_dir=tmp_path)
        fingerprint = _workloads_fingerprint(workloads, KAVERI)
        raw = json.loads(manifest_path(tmp_path, "kaveri", fingerprint).read_text())
        assert raw["stats"]["shard_misses"] == len(workloads)

    def test_cache_contents_and_clear(self, tmp_path):
        collect_dataset_with_stats(small_set(), KAVERI, cache=True, cache_dir=tmp_path)
        contents = cache_contents(tmp_path)
        assert len(contents["shards"]) == 3 and len(contents["manifests"]) == 1
        assert contents["bytes"] > 0
        removed = clear_cache(tmp_path)
        assert removed == 4
        assert not shard_store_dir(tmp_path, "kaveri").exists()
        assert cache_contents(tmp_path)["shards"] == []


class TestDopDatasetLoad:
    def test_load_corrupt_raises_dataset_cache_error(self, tmp_path):
        path = tmp_path / "bad.npz"
        path.write_bytes(b"not a zip at all")
        with pytest.raises(DatasetCacheError):
            DopDataset.load(path)

    def test_load_missing_raises_dataset_cache_error(self, tmp_path):
        with pytest.raises(DatasetCacheError):
            DopDataset.load(tmp_path / "absent.npz")

    def test_try_load_returns_none_on_corruption(self, tmp_path):
        path = tmp_path / "bad.npz"
        path.write_bytes(b"\x00" * 128)
        assert DopDataset.try_load(path) is None

    def test_explicit_save_load_roundtrip_still_works(self, tmp_path):
        dataset = collect_dataset(small_set(), KAVERI, cache=False)
        path = tmp_path / "explicit.npz"
        dataset.save(path)
        loaded = DopDataset.load(path)
        assert np.array_equal(dataset.times, loaded.times)
        assert loaded.workload_keys == dataset.workload_keys
