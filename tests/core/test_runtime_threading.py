"""Regression: launch accounting survives concurrent enqueues.

``DopiaRuntime.launches`` was a bare ``deque.append`` with no paired
total counter; concurrent interposed enqueues could tear the record
log. ``record_launch`` must keep the bounded log and the monotonic
``total_launches`` counter atomic with respect to each other.
"""

import threading

import numpy as np

from repro import cl
from repro.core.runtime import LaunchRecord

SAXPY = (
    "__kernel void saxpy(__global float* x, __global float* y, float a, int n)"
    "{ int i = get_global_id(0); y[i] = a * x[i] + y[i]; }"
)


def synthetic_record(index):
    return LaunchRecord(kernel=f"k{index}", prediction=None, result=None,
                        time_s=float(index))


def test_record_launch_is_atomic_under_races(trained_runtime):
    trained_runtime.clear()
    threads_n, per_thread = 8, 500
    barrier = threading.Barrier(threads_n)

    def hammer(index):
        barrier.wait()
        for j in range(per_thread):
            trained_runtime.record_launch(synthetic_record(index * per_thread + j))

    workers = [threading.Thread(target=hammer, args=(i,))
               for i in range(threads_n)]
    for thread in workers:
        thread.start()
    for thread in workers:
        thread.join()

    expected = threads_n * per_thread
    assert trained_runtime.total_launches == expected
    # the log is bounded; it holds min(total, maxlen) records, none torn
    assert len(trained_runtime.launches) == min(expected,
                                                trained_runtime.launches.maxlen)
    assert all(isinstance(r, LaunchRecord) for r in trained_runtime.launches)
    trained_runtime.clear()
    assert trained_runtime.total_launches == 0
    assert len(trained_runtime.launches) == 0


def test_concurrent_interposed_enqueues_all_recorded(trained_runtime):
    """Real launches from N threads: every one recorded, buffers correct."""
    trained_runtime.clear()
    threads_n, n = 6, 256
    barrier = threading.Barrier(threads_n)
    errors = []
    lock = threading.Lock()
    outputs = [None] * threads_n

    def client(index):
        try:
            ctx = cl.create_context("kaveri")
            program = ctx.create_program_with_source(SAXPY).build()
            kernel = program.create_kernel("saxpy")
            x = np.arange(n, dtype=float)
            y = np.ones(n)
            kernel.set_args(ctx.create_buffer(x), ctx.create_buffer(y),
                            float(index), n)
            queue = cl.create_command_queue(ctx)
            barrier.wait()
            queue.enqueue_nd_range_kernel(kernel, (n,), (64,))
            outputs[index] = y
        except BaseException as error:  # noqa: BLE001
            with lock:
                errors.append(error)
            barrier.abort()

    with cl.interposed(trained_runtime):
        workers = [threading.Thread(target=client, args=(i,))
                   for i in range(threads_n)]
        for thread in workers:
            thread.start()
        for thread in workers:
            thread.join()

    if errors:
        raise errors[0]
    assert trained_runtime.total_launches == threads_n
    assert len(trained_runtime.launches) == threads_n
    for index, y in enumerate(outputs):
        assert np.array_equal(y, index * np.arange(n, dtype=float) + 1.0)
