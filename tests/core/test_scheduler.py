"""Tests for the functional Algorithm-1 scheduler."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import run_dynamic, run_static
from repro.frontend import analyze_kernel, parse_kernel
from repro.interp import NDRange
from repro.sim import DopSetting
from repro.transform import make_malleable

SAXPY = """
__kernel void saxpy(__global float* X, __global float* Y, float a, int n)
{
    int i = get_global_id(0);
    if (i < n) Y[i] = a * X[i] + Y[i];
}
"""


def prepared(source=SAXPY, work_dim=1):
    info = analyze_kernel(parse_kernel(source))
    return info, make_malleable(source, work_dim=work_dim)


class TestDynamicScheduler:
    def test_result_matches_plain_execution(self):
        info, malleable = prepared()
        n = 128
        x = np.arange(n, dtype=float)
        nd = NDRange(n, 16)

        expected = np.ones(n)
        from repro.interp import KernelExecutor

        KernelExecutor(info, {"X": x, "Y": expected, "a": 2.0, "n": n}, nd).run()

        actual = np.ones(n)
        trace = run_dynamic(
            info, malleable, {"X": x, "Y": actual, "a": 2.0, "n": n},
            nd, DopSetting(2, 0.5), dop_gpu_mod=2, dop_gpu_alloc=1,
        )
        assert np.array_equal(actual, expected)
        assert trace.total == nd.total_groups

    def test_every_group_executed_exactly_once(self):
        info, malleable = prepared(
            "__kernel void count(__global float* C, int n)"
            "{ C[get_global_id(0)] += 1.0f; }"
        )
        n = 96
        counts = np.zeros(n)
        trace = run_dynamic(
            info, malleable, {"C": counts, "n": n}, NDRange(n, 8),
            DopSetting(3, 1.0),
        )
        assert np.all(counts == 1.0)
        claimed = sorted(trace.cpu_groups + trace.gpu_groups)
        assert claimed == list(range(NDRange(n, 8).total_groups))

    def test_both_devices_participate(self):
        info, malleable = prepared()
        n = 640
        trace = run_dynamic(
            info, malleable,
            {"X": np.zeros(n), "Y": np.zeros(n), "a": 1.0, "n": n},
            NDRange(n, 16), DopSetting(2, 0.5),
        )
        assert trace.cpu_groups and trace.gpu_groups

    def test_cpu_only_setting(self):
        info, malleable = prepared()
        n = 64
        trace = run_dynamic(
            info, malleable,
            {"X": np.zeros(n), "Y": np.zeros(n), "a": 1.0, "n": n},
            NDRange(n, 8), DopSetting(4, 0.0),
        )
        assert not trace.gpu_groups
        assert len(trace.cpu_groups) == 8

    def test_gpu_only_setting(self):
        info, malleable = prepared()
        n = 64
        trace = run_dynamic(
            info, malleable,
            {"X": np.zeros(n), "Y": np.zeros(n), "a": 1.0, "n": n},
            NDRange(n, 8), DopSetting(0, 1.0),
        )
        assert not trace.cpu_groups
        assert len(trace.gpu_groups) == 8

    def test_gpu_chunks_are_tenths(self):
        info, malleable = prepared()
        n = 100 * 8
        trace = run_dynamic(
            info, malleable,
            {"X": np.zeros(n), "Y": np.zeros(n), "a": 1.0, "n": n},
            NDRange(n, 8), DopSetting(0, 1.0),
        )
        assert trace.gpu_chunks == 10

    @settings(max_examples=15, deadline=None)
    @given(
        st.integers(min_value=1, max_value=12),   # groups
        st.integers(min_value=0, max_value=4),    # cpu threads
        st.sampled_from([0.0, 0.25, 0.5, 1.0]),   # gpu fraction
        st.integers(min_value=1, max_value=8),    # mod
    )
    def test_property_single_coverage(self, groups, threads, fraction, mod):
        if threads == 0 and fraction == 0.0:
            return
        info, malleable = prepared(
            "__kernel void count(__global float* C, int n)"
            "{ C[get_global_id(0)] += 1.0f; }"
        )
        wg = 8
        n = groups * wg
        counts = np.zeros(n)
        run_dynamic(
            info, malleable, {"C": counts, "n": n}, NDRange(n, wg),
            DopSetting(threads, fraction), dop_gpu_mod=mod, dop_gpu_alloc=1,
        )
        assert np.all(counts == 1.0)


class TestStaticScheduler:
    def test_split_respected(self):
        info, malleable = prepared()
        n = 160
        trace = run_static(
            info, malleable,
            {"X": np.zeros(n), "Y": np.zeros(n), "a": 1.0, "n": n},
            NDRange(n, 16), DopSetting(4, 1.0), cpu_share=0.3,
        )
        assert len(trace.cpu_groups) == 3
        assert len(trace.gpu_groups) == 7

    def test_results_identical_to_dynamic(self):
        info, malleable = prepared()
        n = 64
        x = np.arange(n, dtype=float)
        y1, y2 = np.ones(n), np.ones(n)
        run_static(
            info, malleable, {"X": x, "Y": y1, "a": 3.0, "n": n},
            NDRange(n, 8), DopSetting(2, 1.0), cpu_share=0.5,
        )
        run_dynamic(
            info, malleable, {"X": x, "Y": y2, "a": 3.0, "n": n},
            NDRange(n, 8), DopSetting(2, 1.0),
        )
        assert np.array_equal(y1, y2)

    def test_invalid_share_rejected(self):
        info, malleable = prepared()
        with pytest.raises(ValueError):
            run_static(
                info, malleable, {"X": np.zeros(8), "Y": np.zeros(8), "a": 1.0, "n": 8},
                NDRange(8, 8), DopSetting(1, 1.0), cpu_share=1.5,
            )
