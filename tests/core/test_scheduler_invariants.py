"""Property suite: the trace IS the schedule.

Two invariants over all three schedulers, a DoP grid, and random
ND-ranges:

1. **single coverage** — every work-group executes exactly once,
   whatever the device split;
2. **faithful tracing** — the ``schedule.*`` events emitted while the
   tracer is on reconstruct the *exact* :class:`ScheduleTrace` partition
   the scheduler returned: same CPU claims in the same order, same GPU
   claims in the same order, same chunk count.

Invariant 2 is what makes the observability layer trustworthy: the
exported trace is a faithful record of Algorithm 1's behaviour, not an
approximation of it.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import run_dynamic, run_dynamic_pull, run_static
from repro.frontend import analyze_kernel, parse_kernel
from repro.interp import NDRange
from repro.obs import reconstruct_schedule, tracer
from repro.sim import DopSetting
from repro.transform import make_malleable

COUNT_SRC = (
    "__kernel void count(__global float* C, int n)"
    "{ C[get_global_id(0)] += 1.0f; }"
)

COUNT_2D_SRC = """
__kernel void count2(__global float* C, int nx)
{
    int x = get_global_id(0);
    int y = get_global_id(1);
    C[y * nx + x] += 1.0f;
}
"""


@pytest.fixture(autouse=True)
def clean_tracer():
    tracer.clear()
    yield
    tracer.disable()
    tracer.clear()


def prepared(source=COUNT_SRC, work_dim=1):
    info = analyze_kernel(parse_kernel(source))
    return info, make_malleable(source, work_dim=work_dim)


def run_traced(scheduler, info, malleable, counts_n, ndrange, setting, **kwargs):
    """One traced scheduler run; returns (counts, ScheduleTrace, events)."""
    counts = np.zeros(counts_n)
    args = {"C": counts, "n": counts_n}
    if "nx" in info.scalar_params:
        args = {"C": counts, "nx": ndrange.global_size[0]}
    tracer.clear()
    tracer.enable()
    try:
        trace = scheduler(info, malleable, args, ndrange, setting, **kwargs)
        events = tracer.events()
    finally:
        tracer.disable()
    return counts, trace, events


def assert_faithful(trace, events, num_groups):
    recon = reconstruct_schedule(events)
    assert recon.cpu_groups == trace.cpu_groups
    assert recon.gpu_groups == trace.gpu_groups
    assert recon.gpu_chunks == trace.gpu_chunks
    assert recon.total == trace.total == num_groups


#: The DoP grid: CPU-only, GPU-only, and co-execution points.
DOP_GRID = [
    DopSetting(1, 0.0),
    DopSetting(4, 0.0),
    DopSetting(0, 0.25),
    DopSetting(0, 1.0),
    DopSetting(2, 0.5),
    DopSetting(4, 1.0),
]


class TestTraceReconstructionGrid:
    @pytest.mark.parametrize(
        "setting", DOP_GRID, ids=lambda s: f"c{s.cpu_threads}g{s.gpu_fraction}"
    )
    @pytest.mark.parametrize("groups", [1, 7, 40])
    def test_run_dynamic(self, setting, groups):
        info, malleable = prepared()
        wg = 8
        n = groups * wg
        counts, trace, events = run_traced(
            run_dynamic, info, malleable, n, NDRange(n, wg), setting,
            dop_gpu_mod=2, dop_gpu_alloc=1,
        )
        assert np.all(counts == 1.0)
        assert_faithful(trace, events, groups)

    @pytest.mark.parametrize(
        "setting", DOP_GRID, ids=lambda s: f"c{s.cpu_threads}g{s.gpu_fraction}"
    )
    @pytest.mark.parametrize("groups", [1, 7, 40])
    def test_run_dynamic_pull(self, setting, groups):
        info, malleable = prepared()
        wg = 8
        n = groups * wg
        counts, trace, events = run_traced(
            run_dynamic_pull, info, malleable, n, NDRange(n, wg), setting,
        )
        assert np.all(counts == 1.0)
        assert_faithful(trace, events, groups)

    @pytest.mark.parametrize(
        "setting", DOP_GRID, ids=lambda s: f"c{s.cpu_threads}g{s.gpu_fraction}"
    )
    @pytest.mark.parametrize("cpu_share", [0.0, 0.3, 1.0])
    def test_run_static(self, setting, cpu_share):
        info, malleable = prepared()
        wg = 8
        groups = 10
        n = groups * wg
        counts, trace, events = run_traced(
            run_static, info, malleable, n, NDRange(n, wg), setting,
            cpu_share=cpu_share,
        )
        assert np.all(counts == 1.0)
        assert_faithful(trace, events, groups)

    def test_2d_ndrange(self):
        info, malleable = prepared(COUNT_2D_SRC, work_dim=2)
        nx = ny = 12
        counts, trace, events = run_traced(
            run_dynamic, info, malleable, nx * ny,
            NDRange((nx, ny), (4, 4)), DopSetting(2, 0.5),
        )
        assert np.all(counts == 1.0)
        assert_faithful(trace, events, NDRange((nx, ny), (4, 4)).total_groups)


class TestTraceReconstructionRandom:
    @settings(max_examples=20, deadline=None)
    @given(
        groups=st.integers(min_value=1, max_value=24),
        wg=st.sampled_from([1, 4, 8]),
        threads=st.integers(min_value=0, max_value=4),
        fraction=st.sampled_from([0.0, 0.25, 0.5, 1.0]),
        chunk_divisor=st.integers(min_value=1, max_value=12),
    )
    def test_run_dynamic_random(self, groups, wg, threads, fraction, chunk_divisor):
        if threads == 0 and fraction == 0.0:
            return
        info, malleable = prepared()
        n = groups * wg
        counts, trace, events = run_traced(
            run_dynamic, info, malleable, n, NDRange(n, wg),
            DopSetting(threads, fraction), chunk_divisor=chunk_divisor,
        )
        assert np.all(counts == 1.0)
        assert_faithful(trace, events, groups)

    @settings(max_examples=20, deadline=None)
    @given(
        groups=st.integers(min_value=1, max_value=24),
        wg=st.sampled_from([1, 4, 8]),
        threads=st.integers(min_value=0, max_value=4),
        fraction=st.sampled_from([0.0, 0.5, 1.0]),
        claims=st.integers(min_value=1, max_value=5),
    )
    def test_run_dynamic_pull_random(self, groups, wg, threads, fraction, claims):
        if threads == 0 and fraction == 0.0:
            return
        info, malleable = prepared()
        n = groups * wg
        counts, trace, events = run_traced(
            run_dynamic_pull, info, malleable, n, NDRange(n, wg),
            DopSetting(threads, fraction), gpu_claims_per_round=claims,
        )
        assert np.all(counts == 1.0)
        assert_faithful(trace, events, groups)

    @settings(max_examples=15, deadline=None)
    @given(
        groups=st.integers(min_value=1, max_value=24),
        wg=st.sampled_from([1, 4, 8]),
        threads=st.integers(min_value=1, max_value=4),
        fraction=st.sampled_from([0.0, 0.5, 1.0]),
        share=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_run_static_random(self, groups, wg, threads, fraction, share):
        info, malleable = prepared()
        n = groups * wg
        counts, trace, events = run_traced(
            run_static, info, malleable, n, NDRange(n, wg),
            DopSetting(threads, fraction), cpu_share=share,
        )
        assert np.all(counts == 1.0)
        assert_faithful(trace, events, groups)


class TestUntracedBehaviourUnchanged:
    def test_untraced_run_emits_no_events(self):
        info, malleable = prepared()
        n = 64
        counts = np.zeros(n)
        assert not tracer.enabled
        trace = run_dynamic(
            info, malleable, {"C": counts, "n": n}, NDRange(n, 8),
            DopSetting(2, 0.5),
        )
        assert np.all(counts == 1.0)
        assert trace.total == 8
        assert tracer.events() == []

    def test_traced_and_untraced_schedules_identical(self):
        info, malleable = prepared()
        n = 160
        setting = DopSetting(2, 0.5)

        plain = run_dynamic(
            info, malleable, {"C": np.zeros(n), "n": n}, NDRange(n, 8), setting
        )
        _, traced, _ = run_traced(
            run_dynamic, info, malleable, n, NDRange(n, 8), setting
        )
        assert traced.cpu_groups == plain.cpu_groups
        assert traced.gpu_groups == plain.gpu_groups
        assert traced.gpu_chunks == plain.gpu_chunks
