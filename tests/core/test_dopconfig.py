"""Unit tests for the Table-3 configuration space and §9.3 metrics."""

import numpy as np
import pytest

from repro.core import (
    config_distance,
    config_space,
    config_utils_matrix,
    distribution_stats,
    evaluate_scheme,
    find_config,
)
from repro.sim import KAVERI, SKYLAKE


class TestConfigSpace:
    def test_exactly_44_configs(self):
        assert len(config_space(KAVERI)) == 44
        assert len(config_space(SKYLAKE)) == 44

    def test_zero_zero_excluded(self):
        for config in config_space(KAVERI):
            assert config.cpu_util > 0 or config.gpu_util > 0

    def test_kaveri_cpu_thread_mapping(self):
        threads = sorted({c.setting.cpu_threads for c in config_space(KAVERI)})
        assert threads == [0, 1, 2, 3, 4]

    def test_skylake_cpu_thread_mapping(self):
        threads = sorted({c.setting.cpu_threads for c in config_space(SKYLAKE)})
        assert threads == [0, 2, 4, 6, 8]

    def test_gpu_levels_are_eighths(self):
        fractions = sorted({c.gpu_util for c in config_space(KAVERI)})
        assert fractions == [i / 8 for i in range(9)]

    def test_find_config(self):
        configs = config_space(KAVERI)
        config = find_config(configs, 1.0, 0.375)
        assert config.setting.cpu_threads == 4
        with pytest.raises(KeyError):
            find_config(configs, 0.33, 0.1)

    def test_utils_matrix_shape(self):
        assert config_utils_matrix(config_space(KAVERI)).shape == (44, 2)

    def test_config_order_stable_across_platforms(self):
        """Datasets index configs by position; both platforms must agree."""
        ka = [(c.cpu_util, c.gpu_util) for c in config_space(KAVERI)]
        sk = [(c.cpu_util, c.gpu_util) for c in config_space(SKYLAKE)]
        assert ka == sk


class TestDistance:
    def test_identical_configs_distance_zero(self):
        configs = config_space(KAVERI)
        assert config_distance(configs[3], configs[3]) == 0.0

    def test_opposite_corners_distance_one(self):
        configs = config_space(KAVERI)
        a = find_config(configs, 0.0, 1.0)
        b = find_config(configs, 1.0, 0.0)
        assert config_distance(a, b) == pytest.approx(1.0)

    def test_symmetry(self):
        configs = config_space(KAVERI)
        assert config_distance(configs[1], configs[7]) == config_distance(
            configs[7], configs[1]
        )


class TestEvaluateScheme:
    def test_oracle_scores_perfectly(self):
        times = np.array([[2.0, 1.0, 3.0], [5.0, 9.0, 4.0]])
        utils = np.array([[0.0, 0.5], [0.5, 0.5], [1.0, 0.5]])
        oracle = times.argmin(axis=1)
        quality = evaluate_scheme(times, oracle, utils)
        assert quality.correct == 2
        assert quality.mean_distance == 0.0
        assert quality.mean_performance == 1.0

    def test_worst_choice_scores_low(self):
        times = np.array([[1.0, 10.0]])
        utils = np.array([[0.0, 0.0], [1.0, 1.0]])
        quality = evaluate_scheme(times, np.array([1]), utils)
        assert quality.correct == 0
        assert quality.mean_performance == pytest.approx(0.1)
        assert quality.mean_distance == pytest.approx(1.0)

    def test_distribution_stats_keys(self):
        stats = distribution_stats(np.linspace(0, 1, 101))
        assert stats["median"] == pytest.approx(0.5)
        assert stats["p5"] == pytest.approx(0.05)
        assert stats["p95"] == pytest.approx(0.95)
        assert stats["p25"] < stats["p75"]
