"""The admission legality gate: verification before building or running.

Under ``DOPIA_VERIFY=raise`` a launch whose kernel the verifier convicts
(RACE001 at this geometry) must be refused *before* any variant is built
or any work-group is claimed — at the runtime's functional-execution
entry, and independently inside ``run_dynamic`` so serving workers and
chains cannot bypass the gate through a different code path.  Clean
kernels pass through unchanged, and the default ``off`` policy keeps
everything as permissive as before.
"""

import numpy as np
import pytest

from repro import cl
from repro.analysis.verify import VerifyError
from repro.core import run_dynamic
from repro.frontend import analyze_kernel, parse_kernel
from repro.interp import NDRange
from repro.sim import DopSetting
from repro.transform import make_malleable

RACY = """
__kernel void racy(__global float* c, int n)
{
    int i = get_global_id(0);
    if (i < n) c[0] = (float)i;
}
"""

CLEAN = """
__kernel void ok(__global float* c, int n)
{
    int i = get_global_id(0);
    if (i < n) c[i] = (float)i;
}
"""


def launch_through_runtime(runtime, source, name):
    ctx = cl.create_context("kaveri")
    with cl.interposed(runtime):
        program = ctx.create_program_with_source(source).build()
        kernel = program.create_kernel(name)
        kernel.set_args(ctx.create_buffer(np.zeros(64)), 64)
        queue = cl.create_command_queue(ctx, functional=True)
        queue.enqueue_nd_range_kernel(kernel, (64,), (16,))


class TestRuntimeGate:
    def test_raise_refuses_racy_launch(self, trained_runtime, monkeypatch):
        monkeypatch.setenv("DOPIA_VERIFY", "raise")
        with pytest.raises(VerifyError) as excinfo:
            launch_through_runtime(trained_runtime, RACY, "racy")
        assert any(d.code == "RACE001"
                   for d in excinfo.value.report.diagnostics)

    def test_raise_passes_clean_launch(self, trained_runtime, monkeypatch):
        monkeypatch.setenv("DOPIA_VERIFY", "raise")
        launch_through_runtime(trained_runtime, CLEAN, "ok")

    def test_off_admits_racy_launch(self, trained_runtime, monkeypatch):
        monkeypatch.delenv("DOPIA_VERIFY", raising=False)
        launch_through_runtime(trained_runtime, RACY, "racy")

    def test_warn_admits_but_reports(self, trained_runtime, monkeypatch,
                                     capsys):
        monkeypatch.setenv("DOPIA_VERIFY", "warn")
        launch_through_runtime(trained_runtime, RACY, "racy")
        assert "RACE001" in capsys.readouterr().err


class TestSchedulerGate:
    """``run_dynamic`` re-checks legality itself: every execution path —
    runtime, serving workers, chains — funnels through it."""

    def _prepared(self, source):
        info = analyze_kernel(parse_kernel(source))
        return info, make_malleable(source, work_dim=1)

    def test_raise_refuses_inside_run_dynamic(self, monkeypatch):
        monkeypatch.setenv("DOPIA_VERIFY", "raise")
        info, malleable = self._prepared(RACY)
        with pytest.raises(VerifyError):
            run_dynamic(info, malleable, {"c": np.zeros(64), "n": 64},
                        NDRange(64, 16), DopSetting(2, 0.5),
                        dop_gpu_mod=2, dop_gpu_alloc=1)

    def test_raise_passes_clean_kernel(self, monkeypatch):
        monkeypatch.setenv("DOPIA_VERIFY", "raise")
        info, malleable = self._prepared(CLEAN)
        buffer = np.zeros(64)
        run_dynamic(info, malleable, {"c": buffer, "n": 64},
                    NDRange(64, 16), DopSetting(2, 0.5),
                    dop_gpu_mod=2, dop_gpu_alloc=1)
        assert buffer[5] == 5.0

    def test_off_is_the_permissive_default(self, monkeypatch):
        monkeypatch.delenv("DOPIA_VERIFY", raising=False)
        info, malleable = self._prepared(RACY)
        run_dynamic(info, malleable, {"c": np.zeros(64), "n": 64},
                    NDRange(64, 16), DopSetting(2, 0.5))
