"""Tests for dataset collection, prediction, baselines, and the runtime."""

import numpy as np
import pytest

from repro import cl
from repro.analysis import StaticFeatures
from repro.core import (
    baseline_configs,
    baseline_indices,
    best_constant_allocation,
    best_static_time,
    collect_dataset,
    evaluate_scheme,
)
from repro.sim import KAVERI
from repro.workloads import make_gesummv
from repro.workloads.synthetic import SyntheticSpec, make_synthetic

SAXPY = """
__kernel void saxpy(__global float* X, __global float* Y, float a, int n)
{
    int i = get_global_id(0);
    if (i < n) Y[i] = a * X[i] + Y[i];
}
"""


class TestDataset:
    def test_shapes(self, small_dataset):
        ds = small_dataset
        assert ds.times.shape == (ds.n_workloads, 44)
        assert ds.static_features.shape == (ds.n_workloads, 6)
        assert ds.feature_matrix().shape == (ds.n_workloads * 44, 11)
        assert ds.targets().shape == (ds.n_workloads * 44,)

    def test_normalized_performance_in_unit_interval(self, small_dataset):
        norm = small_dataset.normalized_performance()
        assert norm.max() == 1.0
        assert norm.min() > 0.0
        # each workload's best config has normalised performance exactly 1
        assert np.all(norm.max(axis=1) == 1.0)

    def test_groups_align_with_rows(self, small_dataset):
        groups = small_dataset.groups()
        assert groups.shape[0] == small_dataset.n_workloads * 44
        assert groups[0] == 0 and groups[44] == 1

    def test_cache_round_trip(self, small_workload_set, tmp_path):
        subset = small_workload_set[:3]
        first = collect_dataset(subset, KAVERI, cache=True, cache_dir=tmp_path)
        second = collect_dataset(subset, KAVERI, cache=True, cache_dir=tmp_path)
        assert np.array_equal(first.times, second.times)
        assert list(tmp_path.glob("dataset-kaveri-*.manifest.json"))
        assert len(list((tmp_path / "shards" / "kaveri").glob("*.npz"))) == len(subset)


class TestPredictor:
    def test_feature_rows_shape(self, trained_runtime):
        predictor = trained_runtime.predictor
        static = StaticFeatures(0, 4, 0, 0, 3, 4)
        rows = predictor.feature_rows(static, 1, 16384, 256)
        assert rows.shape == (44, 11)
        assert np.all(rows[:, 7] == 16384)

    def test_selection_returns_valid_config(self, trained_runtime):
        static = StaticFeatures(0, 4, 0, 0, 3, 4)
        prediction = trained_runtime.predictor.select(static, 1, 16384, 256)
        assert prediction.config in trained_runtime.predictor.configs
        assert prediction.scores.shape == (44,)
        assert prediction.inference_cost_s > 0

    def test_model_beats_baselines_on_training_set(self, small_dataset, trained_runtime):
        """In-sample sanity: Dopia's selection must beat CPU/GPU/ALL."""
        ds = small_dataset
        preds = trained_runtime.predictor.model.predict(ds.feature_matrix())
        selected = preds.reshape(ds.n_workloads, 44).argmax(axis=1)
        dopia = evaluate_scheme(ds.times, selected, ds.config_utils)
        for name, index in baseline_indices(KAVERI).items():
            fixed = evaluate_scheme(
                ds.times, np.full(ds.n_workloads, index), ds.config_utils
            )
            assert dopia.mean_performance > fixed.mean_performance, name


class TestBaselines:
    def test_baseline_configs_are_the_corners(self):
        configs = baseline_configs(KAVERI)
        assert configs["cpu"].setting.cpu_threads == 4
        assert configs["cpu"].setting.gpu_fraction == 0.0
        assert configs["gpu"].setting.cpu_threads == 0
        assert configs["gpu"].setting.gpu_fraction == 1.0
        assert configs["all"].setting.cpu_threads == 4
        assert configs["all"].setting.gpu_fraction == 1.0

    def test_best_constant_allocation(self, small_dataset):
        index, mean = best_constant_allocation(small_dataset)
        assert 0 <= index < 44
        norm = small_dataset.normalized_performance().mean(axis=0)
        assert mean == pytest.approx(norm.max())

    def test_best_static_beats_worst_static(self):
        workload = make_gesummv(n=4096, wg=256)
        best, share = best_static_time(workload, KAVERI)
        assert 0.05 <= share <= 0.95
        assert best > 0


class TestRuntimeIntegration:
    def test_compile_time_artifacts(self, trained_runtime):
        ctx = cl.create_context("kaveri")
        with cl.interposed(trained_runtime):
            program = ctx.create_program_with_source(SAXPY).build()
        artifacts = program.interposer_data["saxpy"]
        assert artifacts.static_features.mem_continuous > 0
        assert artifacts.transformable

    def test_enqueue_executes_and_times(self, trained_runtime):
        ctx = cl.create_context("kaveri")
        n = 256
        x = np.arange(n, dtype=float)
        y = np.ones(n)
        with cl.interposed(trained_runtime):
            program = ctx.create_program_with_source(SAXPY).build()
            kernel = program.create_kernel("saxpy")
            kernel.set_args(ctx.create_buffer(x), ctx.create_buffer(y), 2.0, n)
            queue = cl.create_command_queue(ctx)
            event = queue.enqueue_nd_range_kernel(kernel, (n,), (64,))
        assert np.allclose(y, 2 * x + 1)
        assert event.simulated_time_s > 0
        assert "prediction" in event.details

    def test_inference_overhead_included(self, trained_runtime):
        record_time = trained_runtime.include_inference_overhead
        assert record_time is True
        ctx = cl.create_context("kaveri")
        with cl.interposed(trained_runtime):
            program = ctx.create_program_with_source(SAXPY).build()
            kernel = program.create_kernel("saxpy")
            kernel.set_args(
                ctx.create_buffer(np.zeros(64)), ctx.create_buffer(np.zeros(64)), 1.0, 64
            )
            queue = cl.create_command_queue(ctx, functional=False)
            event = queue.enqueue_nd_range_kernel(kernel, (64,), (64,))
        prediction = event.details["prediction"]
        result = event.details["result"]
        assert event.simulated_time_s == pytest.approx(
            result.time_s + prediction.inference_cost_s
        )

    def test_barriered_kernel_falls_through(self, trained_runtime):
        source = (
            "__kernel void b(__global float* A)"
            "{ __local int s[1];"
            "  if (get_local_id(0) == 0) s[0] = 1;"
            "  barrier(1);"
            "  A[get_global_id(0)] = s[0]; }"
        )
        ctx = cl.create_context("kaveri")
        a = np.zeros(16)
        with cl.interposed(trained_runtime):
            program = ctx.create_program_with_source(source).build()
            kernel = program.create_kernel("b")
            kernel.set_args(ctx.create_buffer(a))
            queue = cl.create_command_queue(ctx)
            event = queue.enqueue_nd_range_kernel(kernel, (16,), (8,))
        assert np.all(a == 1.0)             # executed by the vanilla path
        assert "prediction" not in event.details

    def test_launch_log_accumulates(self, trained_runtime):
        before = len(trained_runtime.launches)
        ctx = cl.create_context("kaveri")
        with cl.interposed(trained_runtime):
            program = ctx.create_program_with_source(SAXPY).build()
            kernel = program.create_kernel("saxpy")
            kernel.set_args(
                ctx.create_buffer(np.zeros(64)), ctx.create_buffer(np.zeros(64)), 1.0, 64
            )
            queue = cl.create_command_queue(ctx, functional=False)
            queue.enqueue_nd_range_kernel(kernel, (64,), (64,))
            queue.enqueue_nd_range_kernel(kernel, (64,), (64,))
        assert len(trained_runtime.launches) == before + 2
        record = trained_runtime.launches[-1]
        assert record.kernel == "saxpy"
        assert record.as_details()["time_s"] == record.time_s

    def test_launch_log_is_bounded(self, trained_runtime):
        from repro.core.runtime import DEFAULT_MAX_LAUNCH_RECORDS, DopiaRuntime

        assert trained_runtime.max_launch_records == DEFAULT_MAX_LAUNCH_RECORDS

        runtime = DopiaRuntime(
            trained_runtime.platform, trained_runtime.predictor.model,
            max_launch_records=3,
        )
        assert runtime.max_launch_records == 3
        ctx = cl.create_context("kaveri")
        with cl.interposed(runtime):
            program = ctx.create_program_with_source(SAXPY).build()
            kernel = program.create_kernel("saxpy")
            kernel.set_args(
                ctx.create_buffer(np.zeros(64)), ctx.create_buffer(np.zeros(64)), 1.0, 64
            )
            queue = cl.create_command_queue(ctx, functional=False)
            for _ in range(5):
                queue.enqueue_nd_range_kernel(kernel, (64,), (64,))
        # a long-lived runtime keeps only the newest records
        assert len(runtime.launches) == 3
        runtime.clear()
        assert len(runtime.launches) == 0
        assert runtime.max_launch_records == 3  # clear keeps the bound

    def test_cpu_variant_generation(self, trained_runtime):
        ctx = cl.create_context("kaveri")
        with cl.interposed(trained_runtime):
            program = ctx.create_program_with_source(SAXPY).build()
            kernel = program.create_kernel("saxpy")
        cpu = trained_runtime.cpu_variant(kernel, 1)
        assert cpu.name == "saxpy_cpu"
        assert "atomic_inc" in cpu.source

    def test_cpu_variant_relaxes_claims_on_race_clean_verdict(
            self, trained_runtime):
        from repro.interp import NDRange

        ctx = cl.create_context("kaveri")
        with cl.interposed(trained_runtime):
            program = ctx.create_program_with_source(SAXPY).build()
            kernel = program.create_kernel("saxpy")
            kernel.set_args(
                ctx.create_buffer(np.zeros(64)),
                ctx.create_buffer(np.zeros(64)), 1.0, 64,
            )
        # saxpy stores only Y[i] at the lane's own id: the specialized
        # race pass proves this launch clean, so auto claims relax
        relaxed = trained_runtime.cpu_variant(kernel, 1,
                                              ndrange=NDRange(64, 16))
        assert relaxed.claims == "relaxed"
        assert "atomic_inc" not in relaxed.source
        # without a launch there is no verdict: stay on the safe default
        atomic = trained_runtime.cpu_variant(kernel, 1)
        assert atomic.claims == "atomic"
        assert "atomic_inc" in atomic.source
        # both variants are cached independently
        assert relaxed is trained_runtime.cpu_variant(
            kernel, 1, ndrange=NDRange(64, 16))
        assert atomic is trained_runtime.cpu_variant(kernel, 1)

    def test_cpu_variant_keeps_atomic_claims_on_racy_kernel(
            self, trained_runtime):
        racy = """
        __kernel void racy(__global float* Y, int n)
        {
            int i = get_global_id(0);
            if (i < n) Y[0] = Y[0] + 1.0f;
        }
        """
        from repro.interp import NDRange

        ctx = cl.create_context("kaveri")
        with cl.interposed(trained_runtime):
            program = ctx.create_program_with_source(racy).build()
            kernel = program.create_kernel("racy")
            kernel.set_args(ctx.create_buffer(np.zeros(64)), 64)
        cpu = trained_runtime.cpu_variant(kernel, 1, ndrange=NDRange(64, 16))
        assert cpu.claims == "atomic"
        assert "atomic_inc" in cpu.source

    def test_synthetic_workload_through_runtime(self, trained_runtime):
        """Full path on a generated Table-2 kernel with buffers."""
        spec = SyntheticSpec(alpha=2, beta=3, gamma=2)
        workload = make_synthetic(spec, size=32, wg_items=8, extent=4)
        from repro.workloads.synthetic import reference_result

        args = workload.full_args(rng=9)
        expected = reference_result(workload, spec, args)
        ctx = cl.create_context("kaveri")
        with cl.interposed(trained_runtime):
            program = ctx.create_program_with_source(workload.source).build()
            kernel = program.create_kernel(workload.kernel_name)
            for name, value in args.items():
                if isinstance(value, np.ndarray):
                    kernel.set_arg(name, ctx.create_buffer(value))
                else:
                    kernel.set_arg(name, value)
            queue = cl.create_command_queue(ctx)
            queue.enqueue_nd_range_kernel(
                kernel, workload.global_size, workload.local_size
            )
        assert np.allclose(args["C"], expected)
