"""Tests for training-dataset caching and fingerprinting."""

import numpy as np

from repro.core import collect_dataset
from repro.core.training import _workloads_fingerprint, default_cache_dir
from repro.sim import KAVERI, SKYLAKE
from repro.workloads import make_gesummv
from repro.workloads.synthetic import SyntheticSpec, make_synthetic


def small_set(size=1024):
    spec = SyntheticSpec(alpha=2, beta=3)
    return [
        make_synthetic(spec, size=size, wg_items=64),
        make_gesummv(n=size, wg=64),
    ]


class TestFingerprint:
    def test_stable_for_same_inputs(self):
        assert _workloads_fingerprint(small_set(), KAVERI) == _workloads_fingerprint(
            small_set(), KAVERI
        )

    def test_sensitive_to_platform(self):
        assert _workloads_fingerprint(small_set(), KAVERI) != _workloads_fingerprint(
            small_set(), SKYLAKE
        )

    def test_sensitive_to_problem_size(self):
        assert _workloads_fingerprint(small_set(1024), KAVERI) != _workloads_fingerprint(
            small_set(2048), KAVERI
        )

    def test_sensitive_to_kernel_source(self):
        workloads = small_set()
        patched = [
            workloads[0].scaled(source=workloads[0].source + "\n// changed\n"),
            workloads[1],
        ]
        assert _workloads_fingerprint(workloads, KAVERI) != _workloads_fingerprint(
            patched, KAVERI
        )


class TestCacheBehaviour:
    def test_shards_and_manifest_created_and_reused(self, tmp_path):
        workloads = small_set()
        first = collect_dataset(workloads, KAVERI, cache=True, cache_dir=tmp_path)
        shards = list((tmp_path / "shards" / "kaveri").glob("*.npz"))
        assert len(shards) == len(workloads)
        assert len(list(tmp_path.glob("dataset-kaveri-*.manifest.json"))) == 1
        # a second call must read the same times back from the shard store
        second = collect_dataset(workloads, KAVERI, cache=True, cache_dir=tmp_path)
        assert np.array_equal(first.times, second.times)
        assert first.workload_keys == second.workload_keys

    def test_cache_disabled_writes_nothing(self, tmp_path):
        collect_dataset(small_set(), KAVERI, cache=False, cache_dir=tmp_path)
        assert not list(tmp_path.iterdir())

    def test_different_platforms_different_stores(self, tmp_path):
        collect_dataset(small_set(), KAVERI, cache=True, cache_dir=tmp_path)
        collect_dataset(small_set(), SKYLAKE, cache=True, cache_dir=tmp_path)
        assert len(list(tmp_path.glob("dataset-*.manifest.json"))) == 2
        assert (tmp_path / "shards" / "kaveri").is_dir()
        assert (tmp_path / "shards" / "skylake").is_dir()

    def test_default_cache_dir_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("DOPIA_CACHE_DIR", str(tmp_path / "custom"))
        assert default_cache_dir() == tmp_path / "custom"

    def test_roundtrip_preserves_features(self, tmp_path):
        workloads = small_set()
        original = collect_dataset(workloads, KAVERI, cache=False)
        path = tmp_path / "ds.npz"
        original.save(path)
        from repro.core.training import DopDataset

        loaded = DopDataset.load(path)
        assert np.array_equal(original.static_features, loaded.static_features)
        assert np.array_equal(original.config_utils, loaded.config_utils)
        assert loaded.platform_name == "kaveri"
