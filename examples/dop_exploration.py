#!/usr/bin/env python
"""Explore the degree-of-parallelism landscape of a kernel (paper Figure 1).

Sweeps Gesummv over all 44 (CPU threads x GPU fraction) configurations on
the simulated AMD Kaveri, prints the throughput heat map as ASCII, and
marks the configuration Dopia's model picks next to the true optimum —
a direct, runnable miniature of the paper's Figure 1.

Run:  python examples/dop_exploration.py
"""

import numpy as np

from repro.core import DopiaRuntime, config_space, measure_workload
from repro.sim import KAVERI
from repro.workloads import make_gesummv

SHADES = " .:-=+*#%@"


def shade(value: float) -> str:
    return SHADES[min(int(value * (len(SHADES) - 1)), len(SHADES) - 1)]


def main() -> None:
    workload = make_gesummv(n=16384, wg=256)
    configs = config_space(KAVERI)

    print(f"measuring {workload.key} at all {len(configs)} configurations ...")
    times = measure_workload(workload, KAVERI, configs)
    performance = times.min() / times  # normalised throughput, 1 = best

    print("training Dopia (cached after first run) ...")
    runtime = DopiaRuntime.from_pretrained(KAVERI, model_name="dt")
    from repro.analysis import extract_static_features

    static = extract_static_features(workload.kernel_info())
    prediction = runtime.predictor.select(
        static, workload.work_dim, workload.total_work_items, workload.work_group_items
    )

    best = configs[int(np.argmin(times))]
    chosen = prediction.config

    cpu_levels = sorted({c.cpu_util for c in configs})
    gpu_levels = sorted({c.gpu_util for c in configs}, reverse=True)
    lookup = {(c.cpu_util, c.gpu_util): i for i, c in enumerate(configs)}

    print()
    print("normalized throughput (rows: GPU fraction, cols: CPU threads)")
    header = "        " + "".join(
        f"{round(u * KAVERI.cpu.threads):>5d}" for u in cpu_levels
    )
    print(header)
    for gpu in gpu_levels:
        row = [f"gpu {gpu:5.3f}"]
        for cpu in cpu_levels:
            index = lookup.get((cpu, gpu))
            if index is None:
                row.append("    -")
                continue
            value = performance[index]
            marker = " "
            if (cpu, gpu) == (best.cpu_util, best.gpu_util):
                marker = "O"       # oracle optimum
            elif (cpu, gpu) == (chosen.cpu_util, chosen.gpu_util):
                marker = "D"       # Dopia's pick
            row.append(f" {shade(value)}{value:.1f}{marker}")
        print(" ".join(row))
    print()
    print("O = exhaustive-search optimum, D = Dopia's model selection")
    print(
        f"optimum : {round(best.cpu_util * KAVERI.cpu.threads)} CPU threads, "
        f"{best.gpu_util:.0%} GPU -> {times.min() * 1e3:.1f} ms"
    )
    dopia_time = times[configs.index(chosen)]
    print(
        f"Dopia   : {chosen.setting.cpu_threads} CPU threads, "
        f"{chosen.gpu_util:.0%} GPU -> {dopia_time * 1e3:.1f} ms "
        f"({times.min() / dopia_time:.0%} of optimum)"
    )
    gpu_only = times[lookup[(0.0, 1.0)]]
    cpu_only = times[lookup[(1.0, 0.0)]]
    both = times[lookup[(1.0, 1.0)]]
    print(
        f"fixed   : CPU-only {times.min() / cpu_only:.0%}, "
        f"GPU-only {times.min() / gpu_only:.0%}, ALL {times.min() / both:.0%} "
        "of optimum (cf. Figure 1: 78% / 13% / 61%)"
    )


if __name__ == "__main__":
    main()
