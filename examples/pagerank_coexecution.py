#!/usr/bin/env python
"""PageRank under Dopia: an iterative, irregular workload (paper Table 4).

PageRank's inner loop length is data-dependent (the in-degree of each
vertex), which makes the kernel irregular — the class of workload the
paper's introduction motivates as CPU-affine.  This example iterates the
power method to convergence through the Dopia runtime, printing the
configuration the model picks and the simulated time per iteration, then
verifies the fixed point against a NumPy reference.

Run:  python examples/pagerank_coexecution.py
"""

import numpy as np

from repro import cl
from repro.core import DopiaRuntime
from repro.sim import KAVERI
from repro.workloads import make_pagerank, pagerank_reference


def main() -> None:
    print("training Dopia (cached after first run) ...")
    runtime = DopiaRuntime.from_pretrained(KAVERI, model_name="dt")

    # A small graph so the functional interpreter stays fast; the *paper*
    # configuration (n = 16384, dense rows) is exercised by the benchmarks.
    workload = make_pagerank(n=128, wg=32, avg_in_degree=8)
    args = workload.full_args(rng=0)

    ctx = cl.create_context("kaveri")
    buffers = {
        name: ctx.create_buffer(value)
        for name, value in args.items()
        if isinstance(value, np.ndarray)
    }

    with cl.interposed(runtime):
        program = ctx.create_program_with_source(workload.source).build()
        kernel = program.create_kernel(workload.kernel_name)
        queue = cl.create_command_queue(ctx)

        total_time = 0.0
        for iteration in range(60):
            for name, buffer in buffers.items():
                kernel.set_arg(name, buffer)
            kernel.set_arg("damping", args["damping"])
            kernel.set_arg("n", int(args["n"]))
            event = queue.enqueue_nd_range_kernel(
                kernel,
                workload.global_size,
                workload.local_size,
                irregular_trip_hint=workload.irregular_trip_hint,
            )
            total_time += event.simulated_time_s
            delta = float(
                np.abs(buffers["new_rank"].array - buffers["rank"].array).max()
            )
            # swap rank buffers for the next iteration
            buffers["rank"], buffers["new_rank"] = (
                buffers["new_rank"], buffers["rank"],
            )
            if iteration == 0:
                config = event.details["prediction"].config
                print(
                    f"selected DoP: {config.setting.cpu_threads} CPU threads, "
                    f"{config.setting.gpu_fraction:.0%} GPU"
                )
            if delta < 1e-8:
                print(f"converged after {iteration + 1} iterations")
                break

    ranks = buffers["rank"].array
    print(f"sum of ranks            : {ranks[:128].sum():.6f}")
    print(f"total simulated time    : {total_time * 1e3:.3f} ms")

    # one reference step from the converged state must be a fixed point
    check = dict(args)
    check["rank"] = ranks
    expected = pagerank_reference(check)
    assert np.allclose(expected, ranks[:128], atol=1e-6), "not a fixed point!"
    print("fixed point verified against the NumPy reference")


if __name__ == "__main__":
    main()
