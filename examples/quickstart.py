#!/usr/bin/env python
"""Quickstart: run an OpenCL kernel through Dopia.

The flow mirrors a real OpenCL application: create a context, build a
program from source, bind arguments, enqueue.  With a
:class:`repro.core.DopiaRuntime` interposed, the build triggers static
analysis + malleable code generation, and the enqueue triggers ML-guided
degree-of-parallelism selection and dynamic CPU/GPU co-execution — all
transparently, exactly as the paper's library interpositioning does.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import cl
from repro.core import DopiaRuntime
from repro.sim import KAVERI

KERNEL_SOURCE = """
__kernel void saxpy(__global float* X, __global float* Y, float a, int n)
{
    int i = get_global_id(0);
    if (i < n) Y[i] = a * X[i] + Y[i];
}
"""


def main() -> None:
    # Offline phase: train the performance model on the Table-4 synthetic
    # workload family (cached after the first run).
    print("training Dopia's DecisionTree model on the synthetic workloads ...")
    runtime = DopiaRuntime.from_pretrained(KAVERI, model_name="dt")

    # Online phase: an ordinary OpenCL program, with Dopia interposed.
    n = 4096
    x = np.arange(n, dtype=np.float64)
    y = np.ones(n)

    ctx = cl.create_context("kaveri")
    with cl.interposed(runtime):
        program = ctx.create_program_with_source(KERNEL_SOURCE).build()
        kernel = program.create_kernel("saxpy")
        kernel.set_args(ctx.create_buffer(x), ctx.create_buffer(y), 2.0, n)
        queue = cl.create_command_queue(ctx)
        event = queue.enqueue_nd_range_kernel(kernel, (n,), (256,))

    assert np.allclose(y, 2.0 * x + 1.0), "co-executed result is wrong!"

    prediction = event.details["prediction"]
    result = event.details["result"]
    artifacts = program.interposer_data["saxpy"]
    print(f"kernel                : saxpy ({n} work-items, work-group 256)")
    print(f"static features       : {artifacts.static_features}")
    print(
        "selected DoP          : "
        f"{prediction.config.setting.cpu_threads} CPU threads, "
        f"{prediction.config.setting.gpu_fraction:.0%} of GPU PEs"
    )
    print(
        f"work split            : {result.cpu_items:.0f} items on CPU, "
        f"{result.gpu_items:.0f} on GPU"
    )
    print(f"simulated time        : {event.simulated_time_s * 1e6:.1f} us")
    print(f"model inference cost  : {prediction.inference_cost_s * 1e6:.2f} us")
    print("result verified: y == 2*x + 1")


if __name__ == "__main__":
    main()
