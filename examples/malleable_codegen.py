#!/usr/bin/env python
"""Inspect Dopia's code transformations (paper §6, Figures 5–7).

Takes the paper's running example — the ``2mat3d`` kernel that adds two
three-dimensional matrices — and prints the three artefacts Dopia
generates from it: the malleable GPU kernel for the 1-D and 2-D
workspaces, and the Figure-7 CPU variant.  Finally it proves on real
buffers that a heavily throttled malleable kernel (1 of every 8 PEs
active) computes exactly the same result as the original.

Run:  python examples/malleable_codegen.py
"""

import numpy as np

from repro.frontend import analyze_kernel, parse_kernel
from repro.interp import KernelExecutor, NDRange
from repro.transform import make_cpu_kernel, make_malleable

# the paper's Figure 5/6 example kernel (1-D workspace form)
KERNEL_2MAT3D = """
__kernel void 2mat3d(__global float* A, __global float* B, __global float* C,
                     int NZ, int NY, int NX)
{
    int z = get_global_id(0);
    if (z < NZ) {
        for (int y = 0; y < NY; y++) {
            for (int x = 0; x < NX; x++) {
                int idx = z * (NY * NX) + y * NX + x;
                C[idx] = A[idx] + B[idx];
            }
        }
    }
}
"""


def banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def main() -> None:
    banner("original kernel (paper Figure 5, top)")
    print(KERNEL_2MAT3D.strip())

    malleable_1d = make_malleable(KERNEL_2MAT3D, work_dim=1)
    banner("malleable GPU kernel, 1-D workspace (paper Figure 5, bottom)")
    print(malleable_1d.source.strip())

    malleable_2d = make_malleable(KERNEL_2MAT3D, work_dim=2)
    banner("malleable GPU kernel, 2-D workspace (paper Figure 6, bottom)")
    print(malleable_2d.source.strip())

    cpu = make_cpu_kernel(KERNEL_2MAT3D, work_dim=1)
    banner("generated CPU variant (paper Figure 7)")
    print(cpu.source.strip())

    banner("semantic equivalence under throttling")
    nz, ny, nx = 64, 4, 4
    total = nz * ny * nx
    rng = np.random.default_rng(0)
    a = rng.uniform(-1, 1, total)
    b = rng.uniform(-1, 1, total)

    expected = np.zeros(total)
    info = analyze_kernel(parse_kernel(KERNEL_2MAT3D))
    KernelExecutor(
        info, {"A": a, "B": b, "C": expected, "NZ": nz, "NY": ny, "NX": nx},
        NDRange(nz, 16),
    ).run()

    for mod, alloc in [(1, 1), (8, 3), (8, 1)]:
        actual = np.zeros(total)
        KernelExecutor(
            malleable_1d.info,
            {
                "A": a, "B": b, "C": actual, "NZ": nz, "NY": ny, "NX": nx,
                "dop_gpu_mod": mod, "dop_gpu_alloc": alloc,
            },
            NDRange(nz, 16),
        ).run()
        status = "OK" if np.array_equal(actual, expected) else "MISMATCH"
        active = sum(1 for lane in range(16) if lane % mod < alloc)
        print(
            f"dop_gpu_mod={mod} dop_gpu_alloc={alloc} "
            f"({active}/16 PEs active per work-group): {status}"
        )
        assert status == "OK"

    print()
    print("all throttle settings produced bit-identical results")


if __name__ == "__main__":
    main()
