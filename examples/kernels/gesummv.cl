/* Gesummv from Polybench [15]: y = alpha*A*x + beta*B*x (paper Table 4). */
__kernel void gesummv(__global float* A, __global float* B,
                      __global float* x, __global float* y,
                      __global float* tmp, int n, float alpha, float beta)
{
    int i = get_global_id(0);
    if (i < n) {
        tmp[i] = 0.0f;
        y[i] = 0.0f;
        for (int j = 0; j < n; j++) {
            tmp[i] = A[i * n + j] * x[j] + tmp[i];
            y[i] = B[i * n + j] * x[j] + y[i];
        }
        y[i] = alpha * tmp[i] + beta * y[i];
    }
}
