/* CSR sparse matrix-vector multiplication (paper Table 4). */
__kernel void spmv_csr(__global int* rowptr, __global int* colidx,
                       __global float* vals, __global float* x,
                       __global float* y, int n)
{
    int i = get_global_id(0);
    if (i < n) {
        float sum = 0.0f;
        for (int k = rowptr[i]; k < rowptr[i + 1]; k++)
            sum = sum + vals[k] * x[colidx[k]];
        y[i] = sum;
    }
}
