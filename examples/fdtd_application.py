#!/usr/bin/env python
"""A multi-kernel application under Dopia: FDTD-2D time stepping.

FDTD-2D is one of the paper's Table-4 workloads, but in its natural form it
is an *application*: three dependent field-update kernels launched once per
time step, sharing the ``ex``/``ey``/``hz`` buffers.  This example runs the
full time loop through the interposed runtime — Dopia analyses each kernel
once at program build and re-selects the degree of parallelism at every
launch — and verifies the final fields against a NumPy reference.

Run:  python examples/fdtd_application.py
"""

from collections import Counter

from repro import cl
from repro.core import DopiaRuntime
from repro.sim import KAVERI
from repro.workloads.applications import FdtdApplication


def main() -> None:
    print("training Dopia (cached after first run) ...")
    runtime = DopiaRuntime.from_pretrained(KAVERI, model_name="dt")

    with cl.interposed(runtime):
        app = FdtdApplication(wg=(4, 4))
        result = app.run(grid=24, steps=5)

    assert result.verified, "FDTD fields diverged from the NumPy reference!"
    print(f"application      : {result.name}")
    print(f"kernel launches  : {result.launches} (3 kernels x 5 time steps)")
    print(f"simulated time   : {result.simulated_time_s * 1e3:.3f} ms")

    decisions = Counter(result.selections)
    print("DoP selections across launches:")
    for (cpu_util, gpu_util), count in decisions.most_common():
        print(f"  CPU {cpu_util:4.0%} + GPU {gpu_util:5.1%}  x{count}")
    print("final fields verified against the NumPy reference")


if __name__ == "__main__":
    main()
